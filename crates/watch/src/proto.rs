//! The status protocol: typed, correlation-ID'd, line-delimited JSON.
//!
//! One request per line, one response per line, over any ordered byte
//! stream (TCP here; the future `pdpad` daemon speaks the same frames).
//! Every request carries a client-chosen `id`; the response echoes it, so
//! a client may pipeline requests and correlate out-of-order handling —
//! though the bundled server answers strictly in order.
//!
//! ```text
//! → {"id":1,"type":"status"}
//! ← {"id":1,"type":"status","state":"running","policy":"PDPA",...}
//! → {"id":2,"type":"tail","n":5}
//! ← {"id":2,"type":"tail","events":["0.50 submit job=3", ...],"dropped":0}
//! ```
//!
//! **Query vocabulary** (protocol v1, served by `pdpa replay --serve` and
//! `pdpad` alike): `status`, `progress`, `health`, `metrics`, `tail`.
//!
//! **Control vocabulary** (protocol v2): `hello`, `submit`, `cancel`,
//! `drain`, `snapshot`, `shutdown`, `jobs`, `job`. Every v2 server
//! answers `hello` (identifying itself as `pdpad` or `replay`); the
//! mutating requests are served by `pdpad` only — the read-only replay
//! server rejects them with the stable `not_a_daemon` code. Control
//! requests are answered with `ack` / `reject` (explicit backpressure: a
//! full admission queue rejects with `retry_after_secs`) or a job-record
//! payload. A v1 server answers control requests with a plain `error` —
//! see [`PROTO_VERSION`] and OBSERVABILITY.md for the compatibility
//! policy.
//!
//! Malformed requests get a `type":"error"` response with `id` 0 (the id
//! could not be read). Both sides of every message round-trip through
//! [`Request::parse_line`] / [`Response::parse_line`], which is pinned by
//! proptest across all message types.

use std::fmt::Write as _;

use crate::json::{fmt_f64, push_str_escaped, Json};

/// The protocol generation this build speaks.
///
/// Version history: **1** — the query vocabulary (status, progress,
/// health, metrics, tail); **2** — adds the `proto` field to `status` and
/// `hello` frames plus the daemon control vocabulary (hello, submit,
/// cancel, drain, snapshot, shutdown, jobs, job).
///
/// Compatibility policy: the protocol evolves by *adding* message types
/// and *adding* object fields, never by renaming or removing them within
/// a major tool version. Clients parse responses by field lookup and must
/// ignore unknown fields; a `status` frame without `proto` parses as
/// version 0 (a pre-v2 server), which clients must treat as v1.
pub const PROTO_VERSION: u64 = 2;

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What is being asked.
    pub kind: RequestKind,
}

/// The request vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestKind {
    /// Run identity, job totals, terminal state.
    Status,
    /// Counters for rendering a progress line: clock, events/sec, ETA.
    Progress,
    /// Latest heartbeat/watchdog state and per-shard balance.
    Health,
    /// The metrics registry in Prometheus text exposition format.
    Metrics,
    /// The most recent `n` observer events still in the ring.
    Tail {
        /// Maximum number of events to return.
        n: usize,
    },
    /// Identify the server: protocol version, server kind, policy, state.
    Hello,
    /// Submit one job for online admission (daemon only).
    Submit {
        /// Application class name (`swim`, `bt.A`, `hydro2d`, `apsi`).
        class: String,
        /// Processor request override; the class default when absent.
        request: Option<u64>,
        /// Total sequential work override in simulated seconds; the class
        /// default when absent.
        work_secs: Option<f64>,
    },
    /// Cancel a queued or running job (daemon only).
    Cancel {
        /// The job id returned by the submit `ack`.
        job: u64,
    },
    /// Stop pacing and run the workload to quiescence (daemon only).
    Drain,
    /// Write a snapshot of the scheduler state (daemon only).
    Snapshot {
        /// Target path; the daemon's configured default when absent.
        path: Option<String>,
    },
    /// Stop the daemon after the current slice (daemon only).
    Shutdown {
        /// Write a snapshot here before exiting, so a later
        /// `pdpa daemon --restore` continues the run deterministically.
        snapshot: Option<String>,
    },
    /// The most recent `n` job records from the run registry (daemon
    /// only).
    Jobs {
        /// Maximum number of records to return.
        n: usize,
    },
    /// One job record from the run registry (daemon only).
    Job {
        /// The job id to look up.
        job: u64,
    },
}

impl RequestKind {
    fn label(&self) -> &'static str {
        match self {
            RequestKind::Status => "status",
            RequestKind::Progress => "progress",
            RequestKind::Health => "health",
            RequestKind::Metrics => "metrics",
            RequestKind::Tail { .. } => "tail",
            RequestKind::Hello => "hello",
            RequestKind::Submit { .. } => "submit",
            RequestKind::Cancel { .. } => "cancel",
            RequestKind::Drain => "drain",
            RequestKind::Snapshot { .. } => "snapshot",
            RequestKind::Shutdown { .. } => "shutdown",
            RequestKind::Jobs { .. } => "jobs",
            RequestKind::Job { .. } => "job",
        }
    }

    /// True for the v2 control vocabulary only a daemon serves; false for
    /// the v1 query vocabulary every status server answers from its tap.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            RequestKind::Hello
                | RequestKind::Submit { .. }
                | RequestKind::Cancel { .. }
                | RequestKind::Drain
                | RequestKind::Snapshot { .. }
                | RequestKind::Shutdown { .. }
                | RequestKind::Jobs { .. }
                | RequestKind::Job { .. }
        )
    }
}

impl Request {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!("{{\"id\":{},\"type\":\"{}\"", self.id, self.kind.label());
        match &self.kind {
            RequestKind::Tail { n } | RequestKind::Jobs { n } => {
                let _ = write!(out, ",\"n\":{n}");
            }
            RequestKind::Submit {
                class,
                request,
                work_secs,
            } => {
                out.push_str(",\"class\":");
                push_str_escaped(&mut out, class);
                if let Some(r) = request {
                    let _ = write!(out, ",\"request\":{r}");
                }
                if let Some(w) = work_secs {
                    let _ = write!(out, ",\"work_secs\":{}", fmt_f64(*w));
                }
            }
            RequestKind::Cancel { job } | RequestKind::Job { job } => {
                let _ = write!(out, ",\"job\":{job}");
            }
            RequestKind::Snapshot { path } => {
                if let Some(p) = path {
                    out.push_str(",\"path\":");
                    push_str_escaped(&mut out, p);
                }
            }
            RequestKind::Shutdown { snapshot } => {
                if let Some(p) = snapshot {
                    out.push_str(",\"snapshot\":");
                    push_str_escaped(&mut out, p);
                }
            }
            RequestKind::Status
            | RequestKind::Progress
            | RequestKind::Health
            | RequestKind::Metrics
            | RequestKind::Hello
            | RequestKind::Drain => {}
        }
        out.push('}');
        out
    }

    /// Parses one protocol line.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line)?;
        let id = doc
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("request missing numeric 'id'")?;
        let need_n = |label: &str| -> Result<usize, String> {
            let n = doc
                .get("n")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{label} request missing numeric 'n'"))?;
            usize::try_from(n).map_err(|_| "'n' does not fit in usize".to_string())
        };
        let need_job = |label: &str| -> Result<u64, String> {
            doc.get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{label} request missing numeric 'job'"))
        };
        let opt_str = |key: &str| doc.get(key).and_then(Json::as_str).map(str::to_string);
        let kind = match doc.get("type").and_then(Json::as_str) {
            Some("status") => RequestKind::Status,
            Some("progress") => RequestKind::Progress,
            Some("health") => RequestKind::Health,
            Some("metrics") => RequestKind::Metrics,
            Some("tail") => RequestKind::Tail { n: need_n("tail")? },
            Some("hello") => RequestKind::Hello,
            Some("submit") => RequestKind::Submit {
                class: opt_str("class").ok_or("submit request missing string 'class'")?,
                request: doc.get("request").and_then(Json::as_u64),
                work_secs: doc.get("work_secs").and_then(Json::as_f64),
            },
            Some("cancel") => RequestKind::Cancel {
                job: need_job("cancel")?,
            },
            Some("drain") => RequestKind::Drain,
            Some("snapshot") => RequestKind::Snapshot {
                path: opt_str("path"),
            },
            Some("shutdown") => RequestKind::Shutdown {
                snapshot: opt_str("snapshot"),
            },
            Some("jobs") => RequestKind::Jobs { n: need_n("jobs")? },
            Some("job") => RequestKind::Job {
                job: need_job("job")?,
            },
            Some(other) => return Err(format!("unknown request type '{other}'")),
            None => return Err("request missing 'type'".to_string()),
        };
        Ok(Request { id, kind })
    }
}

/// Terminal state of the watched run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// The engine loop is still driving events.
    Running,
    /// The run completed and its result was computed.
    Done,
    /// The zero-progress watchdog aborted the run.
    Aborted,
}

impl RunState {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            RunState::Running => "running",
            RunState::Done => "done",
            RunState::Aborted => "aborted",
        }
    }

    /// Parses a wire label.
    pub fn parse(label: &str) -> Result<Self, String> {
        match label {
            "running" => Ok(RunState::Running),
            "done" => Ok(RunState::Done),
            "aborted" => Ok(RunState::Aborted),
            other => Err(format!("unknown run state '{other}'")),
        }
    }
}

/// `status` payload: run identity and terminal state.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusBody {
    /// The protocol generation of the answering server. Absent on the
    /// wire from pre-v2 servers; parsed as 0 then (treat as v1).
    pub proto: u64,
    /// Where the run is in its lifecycle.
    pub state: RunState,
    /// The policy's display name.
    pub policy: String,
    /// The trace (or workload) being replayed.
    pub trace: String,
    /// Shard count (1 = classic engine).
    pub shards: u64,
    /// Jobs in the workload.
    pub jobs_total: u64,
    /// Jobs submitted so far.
    pub jobs_submitted: u64,
    /// Jobs finished so far.
    pub jobs_finished: u64,
    /// Jobs terminally failed so far (fault injection).
    pub jobs_failed: u64,
    /// Observer events published through the tap so far.
    pub events_published: u64,
    /// Wall-clock seconds since the tap was created.
    pub elapsed_secs: f64,
    /// The watchdog diagnostic, when the run aborted.
    pub watchdog: Option<String>,
}

/// `progress` payload: the live counters a progress bar needs.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressBody {
    /// Simulated clock, seconds.
    pub sim_clock_secs: f64,
    /// Cumulative simulation events popped.
    pub events_popped: u64,
    /// Average events per wall-clock second since run start.
    pub events_per_sec: f64,
    /// Current event-queue backlog.
    pub queue_len: u64,
    /// Jobs currently running.
    pub running: u64,
    /// Jobs waiting in the scheduler queue.
    pub waiting: u64,
    /// Jobs finished so far.
    pub jobs_finished: u64,
    /// Jobs in the workload.
    pub jobs_total: u64,
    /// Naive completion estimate (wall-clock seconds), once any job has
    /// finished.
    pub eta_secs: Option<f64>,
    /// Wall-clock seconds since the tap was created.
    pub elapsed_secs: f64,
}

/// `health` payload: the heartbeat/watchdog view.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthBody {
    /// The latest formatted heartbeat line, when heartbeats are enabled.
    pub heartbeat: Option<String>,
    /// The watchdog diagnostic, when the run aborted.
    pub watchdog: Option<String>,
    /// Per-shard cumulative popped-event counts (empty on classic runs).
    pub shard_events: Vec<u64>,
    /// Max relative deviation from the mean shard load, when sharded.
    pub imbalance: Option<f64>,
    /// Peak resident set size in KiB, when /proc is readable.
    pub memory_hwm_kib: Option<u64>,
}

/// `tail` payload: recent observer events.
#[derive(Clone, Debug, PartialEq)]
pub struct TailBody {
    /// Most recent ring events, oldest first, in `TimedEvent::to_line`
    /// form.
    pub events: Vec<String>,
    /// Events that passed through the tap but are no longer in the ring
    /// (evicted by capacity or skipped under lock contention) — honest
    /// drop accounting, so `tail` never pretends to be a full stream.
    pub dropped: u64,
}

/// `hello` payload: server identity, for capability negotiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloBody {
    /// The protocol generation the server speaks ([`PROTO_VERSION`]).
    pub proto: u64,
    /// Server kind: `pdpad` for the daemon, `replay` for the read-only
    /// status server.
    pub server: String,
    /// The policy's display name.
    pub policy: String,
    /// Where the run is in its lifecycle.
    pub state: RunState,
}

/// `ack` payload: the control request was applied.
#[derive(Clone, Debug, PartialEq)]
pub struct AckBody {
    /// The job the ack concerns (submit returns the assigned id; cancel
    /// echoes the target).
    pub job: Option<u64>,
    /// The simulated instant the operation took effect, after the
    /// daemon's monotone-cursor clamp.
    pub at_secs: Option<f64>,
    /// Free-form detail (e.g. the snapshot path written).
    pub info: Option<String>,
}

/// `reject` payload: the control request was refused. `reason` is a
/// stable error code, not prose: `queue_full`, `busy`, `unknown_job`,
/// `not_a_daemon`, `draining`, `shutting_down`, `bad_request`.
#[derive(Clone, Debug, PartialEq)]
pub struct RejectBody {
    /// Stable machine-readable error code.
    pub reason: String,
    /// Backpressure hint: retry no sooner than this many wall seconds
    /// from now. Present on `queue_full`/`busy` rejections.
    pub retry_after_secs: Option<f64>,
}

/// One job record from the daemon's run registry.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRow {
    /// The dense job id.
    pub job: u64,
    /// Application class name.
    pub class: String,
    /// Processors requested.
    pub request: u64,
    /// Lifecycle state: `queued`, `running`, `done`, `failed`, or
    /// `cancelled`.
    pub state: String,
    /// Simulated submission instant, seconds.
    pub submit_secs: f64,
    /// Simulated completion/failure instant, when terminal.
    pub finish_secs: Option<f64>,
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Correlation id echoed from the request (0 when the request's id
    /// could not be read).
    pub id: u64,
    /// The payload.
    pub body: ResponseBody,
}

/// The response vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// Answer to `status`.
    Status(StatusBody),
    /// Answer to `progress`.
    Progress(ProgressBody),
    /// Answer to `health`.
    Health(HealthBody),
    /// Answer to `metrics`: the registry rendered in the named text
    /// format (`prometheus`).
    Metrics {
        /// Exposition format label.
        format: String,
        /// The rendered document.
        body: String,
    },
    /// Answer to `tail`.
    Tail(TailBody),
    /// Answer to `hello`.
    Hello(HelloBody),
    /// A control request was applied (submit, cancel, drain, snapshot,
    /// shutdown).
    Ack(AckBody),
    /// A control request was refused, with a stable error code and an
    /// optional backpressure hint.
    Reject(RejectBody),
    /// Answer to `jobs`: most recent registry records, oldest first.
    Jobs(Vec<JobRow>),
    /// Answer to `job`: one registry record.
    Job(JobRow),
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

fn push_opt_str(out: &mut String, key: &str, v: &Option<String>) {
    let _ = write!(out, ",\"{key}\":");
    match v {
        Some(s) => push_str_escaped(out, s),
        None => out.push_str("null"),
    }
}

fn push_job_row(out: &mut String, r: &JobRow) {
    let _ = write!(out, "{{\"job\":{},\"class\":", r.job);
    push_str_escaped(out, &r.class);
    let _ = write!(out, ",\"request\":{},\"state\":", r.request);
    push_str_escaped(out, &r.state);
    let _ = write!(
        out,
        ",\"submit_secs\":{},\"finish_secs\":{}}}",
        fmt_f64(r.submit_secs),
        r.finish_secs.map_or("null".to_string(), fmt_f64),
    );
}

fn parse_job_row(doc: &Json) -> Result<JobRow, String> {
    let num = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("job record missing numeric '{key}'"))
    };
    let text = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("job record missing string '{key}'"))
    };
    Ok(JobRow {
        job: num("job")?,
        class: text("class")?,
        request: num("request")?,
        state: text("state")?,
        submit_secs: doc
            .get("submit_secs")
            .and_then(Json::as_f64)
            .ok_or("job record missing numeric 'submit_secs'")?,
        finish_secs: doc.get("finish_secs").and_then(Json::as_f64),
    })
}

impl Response {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!("{{\"id\":{}", self.id);
        match &self.body {
            ResponseBody::Status(s) => {
                let _ = write!(
                    out,
                    ",\"type\":\"status\",\"proto\":{},\"state\":\"{}\"",
                    s.proto,
                    s.state.label()
                );
                out.push_str(",\"policy\":");
                push_str_escaped(&mut out, &s.policy);
                out.push_str(",\"trace\":");
                push_str_escaped(&mut out, &s.trace);
                let _ = write!(
                    out,
                    ",\"shards\":{},\"jobs\":{{\"total\":{},\"submitted\":{},\
                     \"finished\":{},\"failed\":{}}},\"events_published\":{},\
                     \"elapsed_secs\":{}",
                    s.shards,
                    s.jobs_total,
                    s.jobs_submitted,
                    s.jobs_finished,
                    s.jobs_failed,
                    s.events_published,
                    fmt_f64(s.elapsed_secs),
                );
                push_opt_str(&mut out, "watchdog", &s.watchdog);
            }
            ResponseBody::Progress(p) => {
                let _ = write!(
                    out,
                    ",\"type\":\"progress\",\"sim_clock_secs\":{},\"events_popped\":{},\
                     \"events_per_sec\":{},\"queue_len\":{},\"running\":{},\"waiting\":{},\
                     \"jobs_finished\":{},\"jobs_total\":{},\"eta_secs\":{},\"elapsed_secs\":{}",
                    fmt_f64(p.sim_clock_secs),
                    p.events_popped,
                    fmt_f64(p.events_per_sec),
                    p.queue_len,
                    p.running,
                    p.waiting,
                    p.jobs_finished,
                    p.jobs_total,
                    p.eta_secs.map_or("null".to_string(), fmt_f64),
                    fmt_f64(p.elapsed_secs),
                );
            }
            ResponseBody::Health(h) => {
                out.push_str(",\"type\":\"health\"");
                push_opt_str(&mut out, "heartbeat", &h.heartbeat);
                push_opt_str(&mut out, "watchdog", &h.watchdog);
                out.push_str(",\"shard_events\":[");
                for (i, n) in h.shard_events.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{n}");
                }
                let _ = write!(
                    out,
                    "],\"imbalance\":{},\"memory_hwm_kib\":{}",
                    h.imbalance.map_or("null".to_string(), fmt_f64),
                    h.memory_hwm_kib
                        .map_or("null".to_string(), |k| k.to_string()),
                );
            }
            ResponseBody::Metrics { format, body } => {
                out.push_str(",\"type\":\"metrics\",\"format\":");
                push_str_escaped(&mut out, format);
                out.push_str(",\"body\":");
                push_str_escaped(&mut out, body);
            }
            ResponseBody::Tail(t) => {
                out.push_str(",\"type\":\"tail\",\"events\":[");
                for (i, ev) in t.events.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str_escaped(&mut out, ev);
                }
                let _ = write!(out, "],\"dropped\":{}", t.dropped);
            }
            ResponseBody::Hello(h) => {
                let _ = write!(out, ",\"type\":\"hello\",\"proto\":{},\"server\":", h.proto);
                push_str_escaped(&mut out, &h.server);
                out.push_str(",\"policy\":");
                push_str_escaped(&mut out, &h.policy);
                let _ = write!(out, ",\"state\":\"{}\"", h.state.label());
            }
            ResponseBody::Ack(a) => {
                out.push_str(",\"type\":\"ack\"");
                if let Some(job) = a.job {
                    let _ = write!(out, ",\"job\":{job}");
                }
                if let Some(at) = a.at_secs {
                    let _ = write!(out, ",\"at_secs\":{}", fmt_f64(at));
                }
                if let Some(info) = &a.info {
                    out.push_str(",\"info\":");
                    push_str_escaped(&mut out, info);
                }
            }
            ResponseBody::Reject(r) => {
                out.push_str(",\"type\":\"reject\",\"reason\":");
                push_str_escaped(&mut out, &r.reason);
                if let Some(after) = r.retry_after_secs {
                    let _ = write!(out, ",\"retry_after_secs\":{}", fmt_f64(after));
                }
            }
            ResponseBody::Jobs(rows) => {
                out.push_str(",\"type\":\"jobs\",\"records\":[");
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_job_row(&mut out, row);
                }
                out.push(']');
            }
            ResponseBody::Job(row) => {
                out.push_str(",\"type\":\"job\",\"record\":");
                push_job_row(&mut out, row);
            }
            ResponseBody::Error { message } => {
                out.push_str(",\"type\":\"error\",\"message\":");
                push_str_escaped(&mut out, message);
            }
        }
        out.push('}');
        out
    }

    /// Parses one protocol line.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let doc = Json::parse(line)?;
        let id = doc
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("response missing numeric 'id'")?;
        let get_u64 = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing numeric '{key}'"))
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("response missing numeric '{key}'"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("response missing string '{key}'"))
        };
        let get_opt_str = |key: &str| -> Option<String> {
            doc.get(key).and_then(Json::as_str).map(str::to_string)
        };
        let body = match doc.get("type").and_then(Json::as_str) {
            Some("status") => {
                let jobs = doc.get("jobs").ok_or("status missing 'jobs'")?;
                let job = |key: &str| -> Result<u64, String> {
                    jobs.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("status missing jobs.{key}"))
                };
                ResponseBody::Status(StatusBody {
                    proto: doc.get("proto").and_then(Json::as_u64).unwrap_or(0),
                    state: RunState::parse(&get_str("state")?)?,
                    policy: get_str("policy")?,
                    trace: get_str("trace")?,
                    shards: get_u64("shards")?,
                    jobs_total: job("total")?,
                    jobs_submitted: job("submitted")?,
                    jobs_finished: job("finished")?,
                    jobs_failed: job("failed")?,
                    events_published: get_u64("events_published")?,
                    elapsed_secs: get_f64("elapsed_secs")?,
                    watchdog: get_opt_str("watchdog"),
                })
            }
            Some("progress") => ResponseBody::Progress(ProgressBody {
                sim_clock_secs: get_f64("sim_clock_secs")?,
                events_popped: get_u64("events_popped")?,
                events_per_sec: get_f64("events_per_sec")?,
                queue_len: get_u64("queue_len")?,
                running: get_u64("running")?,
                waiting: get_u64("waiting")?,
                jobs_finished: get_u64("jobs_finished")?,
                jobs_total: get_u64("jobs_total")?,
                eta_secs: doc.get("eta_secs").and_then(Json::as_f64),
                elapsed_secs: get_f64("elapsed_secs")?,
            }),
            Some("health") => {
                let shard_events = doc
                    .get("shard_events")
                    .and_then(Json::as_arr)
                    .ok_or("health missing 'shard_events'")?
                    .iter()
                    .map(|v| v.as_u64().ok_or("shard_events entry not a count"))
                    .collect::<Result<Vec<_>, _>>()?;
                ResponseBody::Health(HealthBody {
                    heartbeat: get_opt_str("heartbeat"),
                    watchdog: get_opt_str("watchdog"),
                    shard_events,
                    imbalance: doc.get("imbalance").and_then(Json::as_f64),
                    memory_hwm_kib: doc.get("memory_hwm_kib").and_then(Json::as_u64),
                })
            }
            Some("metrics") => ResponseBody::Metrics {
                format: get_str("format")?,
                body: get_str("body")?,
            },
            Some("tail") => {
                let events = doc
                    .get("events")
                    .and_then(Json::as_arr)
                    .ok_or("tail missing 'events'")?
                    .iter()
                    .map(|v| v.as_str().map(str::to_string).ok_or("event not a string"))
                    .collect::<Result<Vec<_>, _>>()?;
                ResponseBody::Tail(TailBody {
                    events,
                    dropped: get_u64("dropped")?,
                })
            }
            Some("hello") => ResponseBody::Hello(HelloBody {
                proto: get_u64("proto")?,
                server: get_str("server")?,
                policy: get_str("policy")?,
                state: RunState::parse(&get_str("state")?)?,
            }),
            Some("ack") => ResponseBody::Ack(AckBody {
                job: doc.get("job").and_then(Json::as_u64),
                at_secs: doc.get("at_secs").and_then(Json::as_f64),
                info: get_opt_str("info"),
            }),
            Some("reject") => ResponseBody::Reject(RejectBody {
                reason: get_str("reason")?,
                retry_after_secs: doc.get("retry_after_secs").and_then(Json::as_f64),
            }),
            Some("jobs") => {
                let records = doc
                    .get("records")
                    .and_then(Json::as_arr)
                    .ok_or("jobs missing 'records'")?
                    .iter()
                    .map(parse_job_row)
                    .collect::<Result<Vec<_>, _>>()?;
                ResponseBody::Jobs(records)
            }
            Some("job") => {
                let record = doc.get("record").ok_or("job missing 'record'")?;
                ResponseBody::Job(parse_job_row(record)?)
            }
            Some("error") => ResponseBody::Error {
                message: get_str("message")?,
            },
            Some(other) => return Err(format!("unknown response type '{other}'")),
            None => return Err("response missing 'type'".to_string()),
        };
        Ok(Response { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_lines_round_trip() {
        for req in [
            Request {
                id: 0,
                kind: RequestKind::Status,
            },
            Request {
                id: 7,
                kind: RequestKind::Progress,
            },
            Request {
                id: 9,
                kind: RequestKind::Health,
            },
            Request {
                id: 11,
                kind: RequestKind::Metrics,
            },
            Request {
                id: u64::MAX >> 12,
                kind: RequestKind::Tail { n: 25 },
            },
            Request {
                id: 12,
                kind: RequestKind::Hello,
            },
            Request {
                id: 13,
                kind: RequestKind::Submit {
                    class: "bt.A".into(),
                    request: Some(32),
                    work_secs: Some(1200.5),
                },
            },
            Request {
                id: 14,
                kind: RequestKind::Submit {
                    class: "swim".into(),
                    request: None,
                    work_secs: None,
                },
            },
            Request {
                id: 15,
                kind: RequestKind::Cancel { job: 7 },
            },
            Request {
                id: 16,
                kind: RequestKind::Drain,
            },
            Request {
                id: 17,
                kind: RequestKind::Snapshot {
                    path: Some("/tmp/run.snap".into()),
                },
            },
            Request {
                id: 18,
                kind: RequestKind::Snapshot { path: None },
            },
            Request {
                id: 19,
                kind: RequestKind::Shutdown {
                    snapshot: Some("final.snap".into()),
                },
            },
            Request {
                id: 20,
                kind: RequestKind::Shutdown { snapshot: None },
            },
            Request {
                id: 21,
                kind: RequestKind::Jobs { n: 50 },
            },
            Request {
                id: 22,
                kind: RequestKind::Job { job: 3 },
            },
        ] {
            let line = req.to_line();
            assert_eq!(Request::parse_line(&line).expect("parses"), req);
        }
    }

    #[test]
    fn malformed_requests_are_diagnostics() {
        for bad in [
            "",
            "{}",
            "{\"id\":1}",
            "{\"id\":1,\"type\":\"nope\"}",
            "{\"id\":1,\"type\":\"tail\"}",
            "{\"type\":\"status\"}",
            "{\"id\":1,\"type\":\"submit\"}",
            "{\"id\":1,\"type\":\"cancel\"}",
            "{\"id\":1,\"type\":\"jobs\"}",
            "{\"id\":1,\"type\":\"job\"}",
        ] {
            assert!(Request::parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn query_and_control_vocabularies_are_disjoint() {
        let control = [
            RequestKind::Hello,
            RequestKind::Submit {
                class: "swim".into(),
                request: None,
                work_secs: None,
            },
            RequestKind::Cancel { job: 0 },
            RequestKind::Drain,
            RequestKind::Snapshot { path: None },
            RequestKind::Shutdown { snapshot: None },
            RequestKind::Jobs { n: 1 },
            RequestKind::Job { job: 0 },
        ];
        let query = [
            RequestKind::Status,
            RequestKind::Progress,
            RequestKind::Health,
            RequestKind::Metrics,
            RequestKind::Tail { n: 1 },
        ];
        assert!(control.iter().all(RequestKind::is_control));
        assert!(!query.iter().any(RequestKind::is_control));
    }

    #[test]
    fn status_without_proto_parses_as_version_zero() {
        // A frame from a pre-v2 server: no "proto" field at all.
        let line = "{\"id\":1,\"type\":\"status\",\"state\":\"running\",\
                    \"policy\":\"PDPA\",\"trace\":\"w3\",\"shards\":1,\
                    \"jobs\":{\"total\":4,\"submitted\":2,\"finished\":1,\"failed\":0},\
                    \"events_published\":10,\"elapsed_secs\":0.5,\"watchdog\":null}";
        let resp = Response::parse_line(line).expect("parses");
        match resp.body {
            ResponseBody::Status(s) => assert_eq!(s.proto, 0, "missing proto reads as 0"),
            other => panic!("expected status, got {other:?}"),
        }
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response {
                id: 1,
                body: ResponseBody::Status(StatusBody {
                    proto: PROTO_VERSION,
                    state: RunState::Running,
                    policy: "PDPA".into(),
                    trace: "big.swf".into(),
                    shards: 4,
                    jobs_total: 10430,
                    jobs_submitted: 900,
                    jobs_finished: 890,
                    jobs_failed: 1,
                    events_published: 123456,
                    elapsed_secs: 2.75,
                    watchdog: None,
                }),
            },
            Response {
                id: 2,
                body: ResponseBody::Progress(ProgressBody {
                    sim_clock_secs: 1234.5,
                    events_popped: 999_999,
                    events_per_sec: 350_000.25,
                    queue_len: 42,
                    running: 7,
                    waiting: 3,
                    jobs_finished: 890,
                    jobs_total: 10430,
                    eta_secs: Some(27.5),
                    elapsed_secs: 2.75,
                }),
            },
            Response {
                id: 3,
                body: ResponseBody::Health(HealthBody {
                    heartbeat: Some("heartbeat t+5s: clock=9.1s".into()),
                    watchdog: Some("watchdog: no sim-clock progress".into()),
                    shard_events: vec![100, 120, 90],
                    imbalance: Some(0.161),
                    memory_hwm_kib: Some(65536),
                }),
            },
            Response {
                id: 4,
                body: ResponseBody::Metrics {
                    format: "prometheus".into(),
                    body: "# TYPE pdpa_engine_runs_total counter\npdpa_engine_runs_total 3\n"
                        .into(),
                },
            },
            Response {
                id: 5,
                body: ResponseBody::Tail(TailBody {
                    events: vec![
                        "0.50 submit job=3".into(),
                        "1.00 decision trigger=report \"quote\"".into(),
                    ],
                    dropped: 17,
                }),
            },
            Response {
                id: 6,
                body: ResponseBody::Hello(HelloBody {
                    proto: PROTO_VERSION,
                    server: "pdpad".into(),
                    policy: "PDPA".into(),
                    state: RunState::Running,
                }),
            },
            Response {
                id: 7,
                body: ResponseBody::Ack(AckBody {
                    job: Some(42),
                    at_secs: Some(17.25),
                    info: None,
                }),
            },
            Response {
                id: 8,
                body: ResponseBody::Ack(AckBody {
                    job: None,
                    at_secs: None,
                    info: Some("snapshot written to /tmp/run.snap".into()),
                }),
            },
            Response {
                id: 9,
                body: ResponseBody::Reject(RejectBody {
                    reason: "queue_full".into(),
                    retry_after_secs: Some(0.5),
                }),
            },
            Response {
                id: 10,
                body: ResponseBody::Reject(RejectBody {
                    reason: "not_a_daemon".into(),
                    retry_after_secs: None,
                }),
            },
            Response {
                id: 11,
                body: ResponseBody::Jobs(vec![
                    JobRow {
                        job: 0,
                        class: "swim".into(),
                        request: 64,
                        state: "done".into(),
                        submit_secs: 0.0,
                        finish_secs: Some(812.5),
                    },
                    JobRow {
                        job: 1,
                        class: "bt.A".into(),
                        request: 25,
                        state: "running".into(),
                        submit_secs: 30.0,
                        finish_secs: None,
                    },
                ]),
            },
            Response {
                id: 12,
                body: ResponseBody::Job(JobRow {
                    job: 2,
                    class: "apsi".into(),
                    request: 16,
                    state: "cancelled".into(),
                    submit_secs: 60.0,
                    finish_secs: Some(75.0),
                }),
            },
            Response {
                id: 0,
                body: ResponseBody::Error {
                    message: "unknown request type 'bogus'".into(),
                },
            },
        ]
    }

    #[test]
    fn response_lines_round_trip() {
        for resp in sample_responses() {
            let line = resp.to_line();
            assert_eq!(
                Response::parse_line(&line).expect("parses"),
                resp,
                "line: {line}"
            );
        }
    }

    // Strategy helpers: printable strings (escaping is exercised by the
    // full printable-ASCII class plus the explicit cases above).
    proptest! {
        #[test]
        fn protocol_round_trips_all_message_types(
            id in 0u64..1 << 53,
            pick in 0usize..143, // lcm(13 request kinds, 11 response bodies)
            n in 0usize..10_000,
            s1 in "[ -~]{0,40}",
            s2 in "[ -~]{0,40}",
            counts in proptest::collection::vec(0u64..1 << 53, 0..6),
            f1 in 0.0f64..1e9,
            f2 in 0.0f64..1e9,
            some in proptest::bool::ANY,
        ) {
            // Requests: every kind, query and control vocabularies alike.
            // Submit class names are free-form strings on the wire (the
            // daemon validates them, not the protocol layer).
            let req = Request {
                id,
                kind: match pick % 13 {
                    0 => RequestKind::Status,
                    1 => RequestKind::Progress,
                    2 => RequestKind::Health,
                    3 => RequestKind::Metrics,
                    4 => RequestKind::Tail { n },
                    5 => RequestKind::Hello,
                    6 => RequestKind::Submit {
                        class: if s1.is_empty() { "swim".into() } else { s1.clone() },
                        request: some.then_some(id % 128),
                        work_secs: (!some).then_some(f1),
                    },
                    7 => RequestKind::Cancel { job: id },
                    8 => RequestKind::Drain,
                    9 => RequestKind::Snapshot { path: some.then(|| s2.clone()) },
                    10 => RequestKind::Shutdown { snapshot: some.then(|| s1.clone()) },
                    11 => RequestKind::Jobs { n },
                    _ => RequestKind::Job { job: id },
                },
            };
            prop_assert_eq!(Request::parse_line(&req.to_line()).unwrap(), req);

            // Responses: every body shape, strings drawn from the full
            // printable class so quoting/escaping is exercised.
            let row = JobRow {
                job: id % 4096,
                class: s1.clone(),
                request: id % 128,
                state: ["queued", "running", "done", "failed", "cancelled"][pick % 5].into(),
                submit_secs: f1,
                finish_secs: some.then_some(f2),
            };
            let body = match pick % 11 {
                0 => ResponseBody::Status(StatusBody {
                    proto: id % 16,
                    state: [RunState::Running, RunState::Done, RunState::Aborted][pick % 3],
                    policy: s1.clone(),
                    trace: s2.clone(),
                    shards: counts.len() as u64,
                    jobs_total: n as u64,
                    jobs_submitted: id % 1000,
                    jobs_finished: id % 999,
                    jobs_failed: id % 7,
                    events_published: id,
                    elapsed_secs: f1,
                    watchdog: some.then(|| s2.clone()),
                }),
                1 => ResponseBody::Progress(ProgressBody {
                    sim_clock_secs: f1,
                    events_popped: id,
                    events_per_sec: f2,
                    queue_len: n as u64,
                    running: id % 61,
                    waiting: id % 13,
                    jobs_finished: id % 999,
                    jobs_total: n as u64,
                    eta_secs: some.then_some(f2),
                    elapsed_secs: f1,
                }),
                2 => ResponseBody::Health(HealthBody {
                    heartbeat: some.then(|| s1.clone()),
                    watchdog: (!some).then(|| s2.clone()),
                    shard_events: counts.clone(),
                    imbalance: some.then_some(f1),
                    memory_hwm_kib: some.then_some(id),
                }),
                3 => ResponseBody::Metrics { format: "prometheus".into(), body: s1.clone() },
                4 => ResponseBody::Tail(TailBody {
                    events: vec![s1.clone(), s2.clone()],
                    dropped: id,
                }),
                5 => ResponseBody::Hello(HelloBody {
                    proto: id % 16,
                    server: s1.clone(),
                    policy: s2.clone(),
                    state: [RunState::Running, RunState::Done, RunState::Aborted][pick % 3],
                }),
                6 => ResponseBody::Ack(AckBody {
                    job: some.then_some(id),
                    at_secs: some.then_some(f1),
                    info: (!some).then(|| s2.clone()),
                }),
                7 => ResponseBody::Reject(RejectBody {
                    reason: if s1.is_empty() { "busy".into() } else { s1.clone() },
                    retry_after_secs: some.then_some(f2),
                }),
                8 => ResponseBody::Jobs(vec![row.clone(); counts.len()]),
                9 => ResponseBody::Job(row.clone()),
                _ => ResponseBody::Error { message: s1.clone() },
            };
            let resp = Response { id, body };
            let line = resp.to_line();
            prop_assert_eq!(Response::parse_line(&line).unwrap(), resp);
        }
    }
}
