//! Prometheus text exposition for the `pdpa-obs` metrics registry.
//!
//! Renders the registry's engine counters (global and per-scope) and its
//! log₂ histograms in the [text exposition format] a Prometheus scraper
//! (or a human with `curl`) expects. Counters become `pdpa_engine_*_total`
//! series, scoped variants carrying a `scope` label; each histogram's
//! power-of-two buckets become the cumulative `_bucket{le="..."}` series
//! with `le` at the bucket's inclusive upper bound `2^(i+1) - 1`, plus the
//! standard `_sum`/`_count` pair.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use pdpa_obs::metrics::CounterSnapshot;
use pdpa_obs::{Histogram, Registry};

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sanitizes a histogram name into a metric-name token.
fn metric_token(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn counter_value(snap: &CounterSnapshot, field: &str) -> u64 {
    match field {
        "runs" => snap.runs,
        "events_pushed" => snap.events_pushed,
        "events_popped" => snap.events_popped,
        "events_stale_dropped" => snap.events_stale_dropped,
        "decisions" => snap.decisions,
        "memo_hits" => snap.memo_hits,
        "memo_misses" => snap.memo_misses,
        _ => unreachable!("fields are enumerated below"),
    }
}

/// Renders `registry` as one Prometheus text document.
pub fn prometheus_text(registry: &Registry) -> String {
    let snap = registry.snapshot();
    let mut out = String::new();

    for field in [
        "runs",
        "events_pushed",
        "events_popped",
        "events_stale_dropped",
        "decisions",
        "memo_hits",
        "memo_misses",
    ] {
        let name = format!("pdpa_engine_{field}_total");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", counter_value(&snap.engine, field));
        for (scope, counters) in &snap.scopes {
            let _ = writeln!(
                out,
                "{name}{{scope=\"{}\"}} {}",
                escape_label(scope),
                counter_value(counters, field)
            );
        }
    }

    // Raw handles, not HistogramSnapshot: cumulative buckets need the
    // per-bucket counts the summary snapshot intentionally omits.
    for (name, hist) in registry.histogram_handles() {
        let name = format!("pdpa_{}", metric_token(name));
        let _ = writeln!(out, "# TYPE {name} histogram");
        let counts = hist.bucket_counts();
        let last_nonzero = counts.iter().rposition(|&c| c > 0);
        let mut cumulative = 0u64;
        if let Some(last) = last_nonzero {
            for (i, &c) in counts.iter().enumerate().take(last + 1) {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    Histogram::bucket_upper_bound(i)
                );
            }
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{name}_sum {}", hist.sum());
        let _ = writeln!(out, "{name}_count {}", hist.count());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_cumulative_buckets() {
        // A private registry so the test does not race the global one.
        let registry = Registry::default();
        registry.record_run(&pdpa_obs::RunCounters {
            events_pushed: 10,
            events_popped: 8,
            events_stale_dropped: 2,
            decisions: 3,
            memo_hits: 5,
            memo_misses: 1,
        });
        let hist = registry.histogram("decision_ns");
        for v in [1u64, 2, 3, 1000] {
            hist.record(v);
        }

        let text = prometheus_text(&registry);
        assert!(text.contains("# TYPE pdpa_engine_runs_total counter"));
        assert!(text.contains("\npdpa_engine_events_popped_total 8\n"));
        assert!(text.contains("# TYPE pdpa_decision_ns histogram"));
        // Bucket 0 holds {0,1} → le="1" is 1 sample; 2 and 3 land in
        // [2,4) → le="3" cumulative 3; 1000 in [512,1024) → le="1023" 4.
        assert!(text.contains("pdpa_decision_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("pdpa_decision_ns_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("pdpa_decision_ns_bucket{le=\"1023\"} 4\n"));
        assert!(text.contains("pdpa_decision_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("pdpa_decision_ns_sum 1006\n"));
        assert!(text.contains("pdpa_decision_ns_count 4\n"));
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let registry = Registry::default();
        let hist = registry.histogram("x_ns");
        for v in 0..200u64 {
            hist.record(v * 37);
        }
        let text = prometheus_text(&registry);
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("pdpa_x_ns_bucket")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= prev, "not cumulative: {line}");
            prev = value;
        }
        assert_eq!(prev, 200, "+Inf bucket equals total count");
    }

    #[test]
    fn scoped_counters_carry_labels() {
        let registry = Registry::default();
        {
            let _g = pdpa_obs::scope::enter("live-test");
            registry.record_run(&pdpa_obs::RunCounters::default());
        }
        let text = prometheus_text(&registry);
        assert!(
            text.contains("pdpa_engine_runs_total{scope=\"live-test\"} 1"),
            "got:\n{text}"
        );
    }
}
