//! A minimal JSON reader/writer for the status protocol.
//!
//! The workspace is offline (no serde); every other crate hand-rolls its
//! JSON *output* only. The status protocol is the first place the suite
//! must also *parse* JSON — requests on the server side, responses in the
//! `pdpa watch` client — so this module adds the smallest complete reader:
//! a recursive-descent parser into a [`Json`] value tree, plus the string
//! escaping the writers share. Numbers are kept as `f64`, which is exact
//! for every integer the protocol carries below 2^53; the few counters
//! that could theoretically exceed that (cumulative event counts) degrade
//! to the nearest representable integer rather than erroring, matching
//! JSON's own number model.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a nonnegative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at offset {start}"))
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs: \uD800-\uDBFF must pair with a
                        // following \uDC00-\uDFFF low surrogate.
                        if (0xD800..0xDC00).contains(&code) {
                            let tail =
                                bytes.get(*pos + 5..*pos + 11).ok_or("unpaired surrogate")?;
                            if &tail[..2] != b"\\u" {
                                return Err("unpaired surrogate".to_string());
                            }
                            let low_hex =
                                std::str::from_utf8(&tail[2..]).map_err(|_| "bad surrogate")?;
                            let low = u32::from_str_radix(low_hex, 16)
                                .map_err(|_| "bad surrogate digits")?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                            *pos += 6;
                        } else {
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences allowed
                // raw in JSON strings).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float as a JSON number. Rust's shortest round-trip `Display`
/// is valid JSON for every finite value; non-finite values (which JSON
/// cannot carry) degrade to 0.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"id": 3, "ok": true, "name": "a\"b\nc", "xs": [1, 2.5, -3e2], "none": null}"#;
        let v = Json::parse(doc).expect("parses");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("a\"b\nc"));
        let xs = v.get("xs").and_then(Json::as_arr).expect("array");
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "q\"b\\s\nnl\tt\r", "uni: ∞ λ", "\u{0001}ctl"] {
            let mut out = String::new();
            push_str_escaped(&mut out, s);
            let back = Json::parse(&out).expect("escaped string parses");
            assert_eq!(back.as_str(), Some(s));
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""é😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", "{]"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn fmt_f64_round_trips_finite_values() {
        for v in [0.0, -0.0, 1.5, 1e300, 1.0 / 3.0, -2.25e-8] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }
}
