//! The NANOS Queuing System (NANOS QS) and workload generation.
//!
//! "The NANOS Queuing System is a user-level submission tool. It implements
//! the job scheduling policy and interacts with the NANOS Resource Manager
//! to control the multiprogramming level. … The NANOS QS has been
//! implemented to introduce repeatability in the submission of workloads of
//! parallel applications" (§3.2).
//!
//! This crate provides:
//!
//! - [`JobSpec`] / [`QueueSystem`] — the FCFS queue whose *admission timing*
//!   is delegated to the processor scheduling policy (the coordination of
//!   §4.3);
//! - [`swf`] — reader/writer for Feitelson's Standard Workload Format, the
//!   trace-file format the paper's workloads use (§5);
//! - [`generator`] — the Poisson workload generator ("applications are
//!   submitted to the system following a Poison interarrival function
//!   during 300 seconds", §5);
//! - [`workloads`] — the four workload compositions of Table 1, tuned and
//!   untuned;
//! - [`shape`] — trace-shaping transforms (window slicing, load rescaling,
//!   machine-size remapping, class inference) that turn published SWF logs
//!   into engine-ready workloads.

#![deny(missing_docs)]

pub mod generator;
pub mod job;
pub mod queue;
pub mod shape;
pub mod swf;
pub mod workloads;

pub use generator::{generate, generate_exact, GeneratorConfig};
pub use job::JobSpec;
pub use queue::QueueSystem;
pub use swf::{SwfError, SwfRecord, SwfTrace};
pub use workloads::{Workload, DEFAULT_DURATION_SECS, DEFAULT_MACHINE_CPUS};
