//! Standard Workload Format (SWF) trace files.
//!
//! The paper's workload trace files "follow the specification proposed by
//! Feitelson" (§5) — the Standard Workload Format: one line per job with 18
//! whitespace-separated fields, `-1` for unknown values, and `;` comment
//! lines. This module writes SWF and parses the **full 18-field record**
//! ([`SwfRecord`]), streaming line by line with line-number diagnostics so
//! multi-megabyte published logs (CRLF line endings and tab separators
//! included) can be replayed through the engine.
//!
//! | field | SWF meaning | `SwfRecord` field |
//! |---|---|---|
//! | 1 | job number | `job_number` |
//! | 2 | submit time (s) | `submit_secs` |
//! | 3 | wait time (s) | `wait_secs` |
//! | 4 | run time (s) | `run_secs` |
//! | 5 | allocated processors | `allocated_procs` |
//! | 6 | average CPU time used (s) | `avg_cpu_secs` |
//! | 7 | used memory (KB) | `used_memory_kb` |
//! | 8 | requested processors | `requested_procs` |
//! | 9 | requested time (s) | `requested_secs` |
//! | 10 | requested memory (KB) | `requested_memory_kb` |
//! | 11 | status (1 = completed) | `status` |
//! | 12 | user id | `user` |
//! | 13 | group id | `group` |
//! | 14 | executable (application) number | `executable` (1 = swim, 2 = bt.A, 3 = hydro2d, 4 = apsi) |
//! | 15 | queue number | `queue` |
//! | 16 | partition number | `partition` |
//! | 17 | preceding job number | `preceding_job` |
//! | 18 | think time from preceding job (s) | `think_secs` |
//!
//! Unknown values are `-1`, which is valid SWF.
//!
//! # Examples
//!
//! A workload round-trips through SWF text (the doctest the docs can't
//! drift from):
//!
//! ```
//! use pdpa_apps::paper::{apsi, swim};
//! use pdpa_qs::{swf, JobSpec};
//! use pdpa_sim::SimTime;
//!
//! let jobs = vec![
//!     JobSpec::new(SimTime::from_secs(0.0), swim()),
//!     JobSpec::new(SimTime::from_secs(12.5), apsi()),
//! ];
//! let text = swf::write_swf(&jobs);
//! let back = swf::parse_swf(&text).unwrap();
//! assert_eq!(back.len(), 2);
//! assert_eq!(back[0].app.class, jobs[0].app.class);
//! assert_eq!(back[1].submit, jobs[1].submit);
//! ```

use std::fmt;
use std::io::BufRead;

use pdpa_apps::{paper_app, AppClass};
use pdpa_sim::SimTime;

use crate::job::JobSpec;

/// Errors from SWF parsing, each carrying the 1-based line it came from.
#[derive(Clone, Debug, PartialEq)]
pub enum SwfError {
    /// A data line has fewer than 18 fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
        /// Fields actually present.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 1-based SWF field number.
        field: usize,
    },
    /// The executable number does not map to a known application class.
    UnknownExecutable {
        /// 1-based line number.
        line: usize,
        /// The offending executable number.
        executable: i64,
    },
    /// The submit time is negative.
    NegativeSubmit {
        /// 1-based line number.
        line: usize,
    },
    /// The underlying reader failed mid-stream.
    Io {
        /// 1-based line number at which the read failed.
        line: usize,
        /// The I/O error, rendered.
        message: String,
    },
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwfError::TooFewFields { line, got } => {
                write!(f, "line {line}: expected 18 SWF fields, got {got}")
            }
            SwfError::BadNumber { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
            SwfError::UnknownExecutable { line, executable } => {
                write!(f, "line {line}: unknown executable number {executable}")
            }
            SwfError::NegativeSubmit { line } => {
                write!(f, "line {line}: negative submit time")
            }
            SwfError::Io { line, message } => {
                write!(f, "line {line}: read failed: {message}")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// One fully-parsed 18-field SWF record. Integer-valued fields keep the
/// standard's `-1 = unknown` convention; durations are `f64` seconds
/// because this repo's own logs carry fractional times.
#[derive(Clone, Debug, PartialEq)]
pub struct SwfRecord {
    /// Field 1: job number.
    pub job_number: i64,
    /// Field 2: submission instant, seconds from the trace origin.
    pub submit_secs: f64,
    /// Field 3: queue wait, seconds (`-1` unknown).
    pub wait_secs: f64,
    /// Field 4: run time, seconds (`-1` unknown).
    pub run_secs: f64,
    /// Field 5: processors actually allocated (may be fractional in logs
    /// written by [`write_swf_log`]; `-1` unknown).
    pub allocated_procs: f64,
    /// Field 6: average CPU time used per processor, seconds.
    pub avg_cpu_secs: f64,
    /// Field 7: used memory, kilobytes.
    pub used_memory_kb: f64,
    /// Field 8: requested processors (`-1` unknown).
    pub requested_procs: i64,
    /// Field 9: requested (estimated) run time, seconds.
    pub requested_secs: f64,
    /// Field 10: requested memory, kilobytes.
    pub requested_memory_kb: f64,
    /// Field 11: completion status (1 completed, 0 failed, `-1` unknown).
    pub status: i64,
    /// Field 12: user id.
    pub user: i64,
    /// Field 13: group id.
    pub group: i64,
    /// Field 14: executable (application) number.
    pub executable: i64,
    /// Field 15: queue number.
    pub queue: i64,
    /// Field 16: partition number.
    pub partition: i64,
    /// Field 17: preceding job number.
    pub preceding_job: i64,
    /// Field 18: think time from the preceding job, seconds.
    pub think_secs: f64,
}

impl SwfRecord {
    /// Parses one whitespace-separated data line (tabs and repeated spaces
    /// both count as separators; a trailing `\r` from CRLF logs is
    /// stripped). `line_no` is 1-based and only used for diagnostics.
    ///
    /// # Errors
    ///
    /// [`SwfError::TooFewFields`] or [`SwfError::BadNumber`] with the
    /// offending line and field.
    pub fn parse_line(line: &str, line_no: usize) -> Result<SwfRecord, SwfError> {
        let mut cur = FieldCursor {
            fields: line.split_whitespace(),
            line: line_no,
            got: 0,
        };
        let record = SwfRecord {
            job_number: cur.int()?,
            submit_secs: cur.num()?,
            wait_secs: cur.num()?,
            run_secs: cur.num()?,
            allocated_procs: cur.num()?,
            avg_cpu_secs: cur.num()?,
            used_memory_kb: cur.num()?,
            requested_procs: cur.int()?,
            requested_secs: cur.num()?,
            requested_memory_kb: cur.num()?,
            status: cur.int()?,
            user: cur.int()?,
            group: cur.int()?,
            executable: cur.int()?,
            queue: cur.int()?,
            partition: cur.int()?,
            preceding_job: cur.int()?,
            think_secs: cur.num()?,
        };
        Ok(record)
    }

    /// The application class of this record's executable number, when it
    /// maps to one of the paper's four applications.
    pub fn class(&self) -> Option<AppClass> {
        class_of_executable(self.executable)
    }

    /// The job's sequential-work estimate in CPU-seconds, when the record
    /// carries enough outcome data: run time × allocated (else requested)
    /// processors. `None` when neither duration nor width is known.
    pub fn cpu_work_estimate(&self) -> Option<f64> {
        if self.run_secs <= 0.0 {
            return None;
        }
        let procs = if self.allocated_procs > 0.0 {
            self.allocated_procs
        } else if self.requested_procs > 0 {
            self.requested_procs as f64
        } else {
            return None;
        };
        Some(self.run_secs * procs)
    }
}

/// Walks one data line's whitespace-separated fields with 1-based
/// line/field diagnostics.
struct FieldCursor<'a> {
    fields: std::str::SplitWhitespace<'a>,
    line: usize,
    got: usize,
}

impl FieldCursor<'_> {
    fn num(&mut self) -> Result<f64, SwfError> {
        let field = self.got + 1;
        let raw = self.fields.next().ok_or(SwfError::TooFewFields {
            line: self.line,
            got: self.got,
        })?;
        self.got += 1;
        raw.parse::<f64>().map_err(|_| SwfError::BadNumber {
            line: self.line,
            field,
        })
    }

    /// Integer fields tolerate float spellings ("2.0") — some published
    /// logs carry them — by truncation.
    fn int(&mut self) -> Result<i64, SwfError> {
        self.num().map(|v| v as i64)
    }
}

/// A parsed SWF document: header machine size (when declared) plus every
/// data record in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SwfTrace {
    /// `; MaxProcs:` header value, when present.
    pub max_procs: Option<usize>,
    /// `; MaxNodes:` header value, when present.
    pub max_nodes: Option<usize>,
    /// Every data record, in file order.
    pub records: Vec<SwfRecord>,
}

impl SwfTrace {
    /// The machine size the trace was recorded on: `MaxProcs` when
    /// declared, else `MaxNodes`, else the largest positive processor
    /// count observed in the records.
    pub fn machine_size(&self) -> Option<usize> {
        self.max_procs.or(self.max_nodes).or_else(|| {
            self.records
                .iter()
                .map(|r| r.requested_procs.max(r.allocated_procs.ceil() as i64))
                .max()
                .filter(|&m| m > 0)
                .map(|m| m as usize)
        })
    }

    /// Submission span `(first, last)` in seconds, `None` when empty.
    pub fn submit_span(&self) -> Option<(f64, f64)> {
        let first = self
            .records
            .iter()
            .map(|r| r.submit_secs)
            .fold(f64::INFINITY, f64::min);
        let last = self
            .records
            .iter()
            .map(|r| r.submit_secs)
            .fold(f64::NEG_INFINITY, f64::max);
        (!self.records.is_empty()).then_some((first, last))
    }
}

/// Parses a header comment directive like `; MaxNodes: 60`.
fn header_directive(comment: &str, key: &str) -> Option<usize> {
    let rest = comment
        .trim_start_matches(';')
        .trim_start()
        .strip_prefix(key)?;
    rest.trim_start().strip_prefix(':')?.trim().parse().ok()
}

/// Streams an SWF document from any reader, line by line, without holding
/// the raw text in memory — the path for multi-megabyte published logs.
/// Comment (`;`) and blank lines are skipped; `MaxProcs`/`MaxNodes`
/// header directives are captured.
///
/// # Errors
///
/// The first malformed line aborts the parse with its line number; reader
/// failures surface as [`SwfError::Io`].
pub fn read_swf(reader: impl BufRead) -> Result<SwfTrace, SwfError> {
    let mut trace = SwfTrace::default();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let raw = line.map_err(|e| SwfError::Io {
            line: line_no,
            message: e.to_string(),
        })?;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            if let Some(n) = header_directive(comment, "MaxProcs") {
                trace.max_procs.get_or_insert(n);
            }
            if let Some(n) = header_directive(comment, "MaxNodes") {
                trace.max_nodes.get_or_insert(n);
            }
            continue;
        }
        trace.records.push(SwfRecord::parse_line(line, line_no)?);
    }
    Ok(trace)
}

/// Parses SWF text already in memory into the full record set.
///
/// # Errors
///
/// See [`read_swf`].
pub fn parse_swf_trace(text: &str) -> Result<SwfTrace, SwfError> {
    read_swf(text.as_bytes())
}

/// The SWF executable number of an application class.
pub fn executable_number(class: AppClass) -> i64 {
    match class {
        AppClass::Swim => 1,
        AppClass::BtA => 2,
        AppClass::Hydro2d => 3,
        AppClass::Apsi => 4,
    }
}

/// The application class of an SWF executable number.
pub fn class_of_executable(executable: i64) -> Option<AppClass> {
    match executable {
        1 => Some(AppClass::Swim),
        2 => Some(AppClass::BtA),
        3 => Some(AppClass::Hydro2d),
        4 => Some(AppClass::Apsi),
        _ => None,
    }
}

/// Serializes a workload to SWF text.
pub fn write_swf(jobs: &[JobSpec]) -> String {
    let mut out = String::new();
    out.push_str("; SWF workload trace — PDPA reproduction\n");
    out.push_str("; Executable numbers: 1=swim 2=bt.A 3=hydro2d 4=apsi\n");
    out.push_str("; MaxNodes: 60\n");
    for (i, job) in jobs.iter().enumerate() {
        // Fields:        1  2      3  4  5  6  7  8      9 10 11 12 13 14   15 16 17 18
        let line = format!(
            "{} {:.2} -1 -1 -1 -1 -1 {} -1 -1 -1 -1 -1 {} -1 -1 -1 -1\n",
            i + 1,
            job.submit.as_secs(),
            job.app.request,
            executable_number(job.app.class),
        );
        out.push_str(&line);
    }
    out
}

/// Serializes a *completed run* as a full SWF log: submit/wait/run times
/// and allocated processors filled in from the outcomes, in the field
/// positions the standard assigns (3 = wait, 4 = run, 5 = allocated
/// processors, 11 = status 1 for completed). `outcomes` holds, per job in
/// submission order, the wait time, run time, and mean allocated
/// processors.
///
/// # Panics
///
/// Panics if `outcomes` and `jobs` have different lengths.
pub fn write_swf_log(jobs: &[JobSpec], outcomes: &[(f64, f64, f64)]) -> String {
    assert_eq!(jobs.len(), outcomes.len(), "one outcome per submitted job");
    let mut out = String::new();
    out.push_str("; SWF workload log — PDPA reproduction (completed run)\n");
    out.push_str("; Executable numbers: 1=swim 2=bt.A 3=hydro2d 4=apsi\n");
    out.push_str("; MaxNodes: 60\n");
    for (i, (job, &(wait, run, procs))) in jobs.iter().zip(outcomes).enumerate() {
        let line = format!(
            "{} {:.2} {:.2} {:.2} {:.1} -1 -1 {} -1 -1 1 -1 -1 {} -1 -1 -1 -1\n",
            i + 1,
            job.submit.as_secs(),
            wait,
            run,
            procs,
            job.app.request,
            executable_number(job.app.class),
        );
        out.push_str(&line);
    }
    out
}

/// Parses SWF text into a workload. Applications are reconstructed from
/// their executable number using the calibrated paper models, with the
/// requested processor count from field 8. Executable numbers outside the
/// paper's four applications are an error here; the tolerant replay path
/// ([`crate::shape::jobs_from_records`]) assigns fallback classes instead.
///
/// # Errors
///
/// The first malformed line aborts the parse (see [`SwfError`]).
pub fn parse_swf(text: &str) -> Result<Vec<JobSpec>, SwfError> {
    let mut jobs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let record = SwfRecord::parse_line(line, line_no)?;
        if record.submit_secs < 0.0 {
            return Err(SwfError::NegativeSubmit { line: line_no });
        }
        let class = record.class().ok_or(SwfError::UnknownExecutable {
            line: line_no,
            executable: record.executable,
        })?;
        let mut app = paper_app(class);
        if record.requested_procs > 0 {
            app = app.with_request(record.requested_procs as usize);
        }
        jobs.push(JobSpec::new(SimTime::from_secs(record.submit_secs), app));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::paper::{apsi, swim};

    #[test]
    fn executable_numbers_round_trip() {
        for class in AppClass::ALL {
            assert_eq!(class_of_executable(executable_number(class)), Some(class));
        }
        assert_eq!(class_of_executable(9), None);
    }

    #[test]
    fn write_then_parse_round_trips() {
        let jobs = vec![
            JobSpec::new(SimTime::from_secs(0.0), swim()),
            JobSpec::new(SimTime::from_secs(12.5), apsi().with_request(30)),
        ];
        let text = write_swf(&jobs);
        let parsed = parse_swf(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].app.class, AppClass::Swim);
        assert_eq!(parsed[0].app.request, 30);
        assert_eq!(parsed[1].app.class, AppClass::Apsi);
        assert_eq!(parsed[1].app.request, 30, "untuned request preserved");
        assert!((parsed[1].submit.as_secs() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "; header\n\n; more\n1 0.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let jobs = parse_swf(text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].app.class, AppClass::Apsi);
        assert_eq!(jobs[0].app.request, 2);
    }

    #[test]
    fn short_lines_are_rejected() {
        let err = parse_swf("1 0.0 -1\n").unwrap_err();
        assert_eq!(err, SwfError::TooFewFields { line: 1, got: 3 });
    }

    #[test]
    fn bad_numbers_are_rejected() {
        let text = "1 zero -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(err, SwfError::BadNumber { line: 1, field: 2 });
    }

    #[test]
    fn unknown_executables_are_rejected() {
        let text = "1 0.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 7 -1 -1 -1 -1\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(
            err,
            SwfError::UnknownExecutable {
                line: 1,
                executable: 7
            }
        );
    }

    #[test]
    fn negative_submit_rejected() {
        let text = "1 -5.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(err, SwfError::NegativeSubmit { line: 1 });
    }

    #[test]
    fn log_writer_round_trips_and_carries_outcomes() {
        let jobs = vec![
            JobSpec::new(SimTime::from_secs(0.0), swim()),
            JobSpec::new(SimTime::from_secs(9.5), apsi()),
        ];
        let outcomes = vec![(1.5, 12.0, 28.4), (0.0, 105.0, 2.0)];
        let text = write_swf_log(&jobs, &outcomes);
        // Still a valid SWF workload (outcome fields are extra info).
        let parsed = parse_swf(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].app.class, AppClass::Swim);
        // Wait/run/procs appear in the standard positions.
        let first: Vec<&str> = text
            .lines()
            .find(|l| !l.starts_with(';'))
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(first[2], "1.50", "wait time, field 3");
        assert_eq!(first[3], "12.00", "run time, field 4");
        assert_eq!(first[4], "28.4", "allocated processors, field 5");
        assert_eq!(first[10], "1", "status completed, field 11");
        // And the full-record parser sees the same outcome fields.
        let trace = parse_swf_trace(&text).unwrap();
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[0].wait_secs, 1.5);
        assert_eq!(trace.records[0].run_secs, 12.0);
        assert_eq!(trace.records[0].allocated_procs, 28.4);
        assert_eq!(trace.records[0].status, 1);
        assert_eq!(trace.records[1].executable, 4);
    }

    #[test]
    #[should_panic(expected = "one outcome per submitted job")]
    fn log_writer_length_mismatch_panics() {
        let jobs = vec![JobSpec::new(SimTime::from_secs(0.0), swim())];
        let _ = write_swf_log(&jobs, &[]);
    }

    #[test]
    fn unknown_request_falls_back_to_class_default() {
        // Request field -1: keep the calibrated default request.
        let text = "1 0.0 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let jobs = parse_swf(text).unwrap();
        assert_eq!(jobs[0].app.request, 2, "apsi's tuned default");
    }

    // --- full-record / streaming parser ---

    #[test]
    fn full_record_parses_all_18_fields() {
        let line = "7 10.5 3.0 120.0 16 80.0 2048 32 600.0 4096 1 12 3 2 5 0 6 30.0";
        let r = SwfRecord::parse_line(line, 1).unwrap();
        assert_eq!(r.job_number, 7);
        assert_eq!(r.submit_secs, 10.5);
        assert_eq!(r.wait_secs, 3.0);
        assert_eq!(r.run_secs, 120.0);
        assert_eq!(r.allocated_procs, 16.0);
        assert_eq!(r.avg_cpu_secs, 80.0);
        assert_eq!(r.used_memory_kb, 2048.0);
        assert_eq!(r.requested_procs, 32);
        assert_eq!(r.requested_secs, 600.0);
        assert_eq!(r.requested_memory_kb, 4096.0);
        assert_eq!(r.status, 1);
        assert_eq!(r.user, 12);
        assert_eq!(r.group, 3);
        assert_eq!(r.executable, 2);
        assert_eq!(r.class(), Some(AppClass::BtA));
        assert_eq!(r.queue, 5);
        assert_eq!(r.partition, 0);
        assert_eq!(r.preceding_job, 6);
        assert_eq!(r.think_secs, 30.0);
    }

    #[test]
    fn bad_number_diagnostics_name_the_field() {
        let line = "7 10.5 3.0 120.0 16 80.0 2048 32 600.0 4096 1 12 3 2 5 0 six 30.0";
        let err = SwfRecord::parse_line(line, 41).unwrap_err();
        assert_eq!(
            err,
            SwfError::BadNumber {
                line: 41,
                field: 17
            }
        );
        assert!(err.to_string().contains("line 41"));
    }

    #[test]
    fn crlf_line_endings_are_tolerated() {
        // Published logs (CTC, SDSC, …) frequently ship with CRLF endings.
        let text = "; header\r\n1 0.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\r\n\
                    2 5.0 -1 -1 -1 -1 -1 4 -1 -1 -1 -1 -1 1 -1 -1 -1 -1\r\n";
        let jobs = parse_swf(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].app.class, AppClass::Swim);
        // The streaming reader tolerates them too.
        let trace = read_swf(text.as_bytes()).unwrap();
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[1].submit_secs, 5.0);
    }

    #[test]
    fn tab_separated_fields_are_tolerated() {
        let text = "1\t0.0\t-1\t-1\t-1\t-1\t-1\t2\t-1\t-1\t-1\t-1\t-1\t3\t-1\t-1\t-1\t-1\n";
        let jobs = parse_swf(text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].app.class, AppClass::Hydro2d);
        assert_eq!(jobs[0].app.request, 2);
        // Mixed tabs and spaces, with a CRLF for good measure.
        let mixed = "1\t0.0 -1\t-1 -1 -1 -1\t8 -1 -1 -1 -1 -1 2 -1 -1 -1 -1\r\n";
        let trace = parse_swf_trace(mixed).unwrap();
        assert_eq!(trace.records[0].requested_procs, 8);
    }

    #[test]
    fn header_directives_are_captured() {
        let text = "; Version: 2.2\n; MaxNodes: 128\n; MaxProcs: 256\n\
                    1 0.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let trace = parse_swf_trace(text).unwrap();
        assert_eq!(trace.max_nodes, Some(128));
        assert_eq!(trace.max_procs, Some(256));
        assert_eq!(trace.machine_size(), Some(256), "MaxProcs wins");
        // Without header directives the observed maximum stands in.
        let bare = "1 0.0 -1 -1 -1 -1 -1 24 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        assert_eq!(parse_swf_trace(bare).unwrap().machine_size(), Some(24));
    }

    #[test]
    fn submit_span_covers_the_records() {
        let text = "1 4.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n\
                    2 90.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let trace = parse_swf_trace(text).unwrap();
        assert_eq!(trace.submit_span(), Some((4.0, 90.0)));
        assert_eq!(SwfTrace::default().submit_span(), None);
    }

    #[test]
    fn cpu_work_estimate_prefers_allocated_procs() {
        let mut r =
            SwfRecord::parse_line("1 0.0 -1 100.0 8 -1 -1 16 -1 -1 1 -1 -1 2 -1 -1 -1 -1", 1)
                .unwrap();
        assert_eq!(r.cpu_work_estimate(), Some(800.0));
        r.allocated_procs = -1.0;
        assert_eq!(r.cpu_work_estimate(), Some(1600.0), "request fallback");
        r.run_secs = -1.0;
        assert_eq!(r.cpu_work_estimate(), None);
    }

    #[test]
    fn generated_traces_survive_the_streaming_reader() {
        let jobs = vec![
            JobSpec::new(SimTime::from_secs(0.0), swim()),
            JobSpec::new(SimTime::from_secs(2.0), apsi()),
        ];
        let text = write_swf(&jobs);
        let trace = read_swf(text.as_bytes()).unwrap();
        assert_eq!(trace.max_nodes, Some(60));
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[0].executable, 1);
        assert_eq!(trace.records[0].wait_secs, -1.0, "unknowns stay -1");
    }
}
