//! Standard Workload Format (SWF) trace files.
//!
//! The paper's workload trace files "follow the specification proposed by
//! Feitelson" (§5) — the Standard Workload Format: one line per job with 18
//! whitespace-separated fields, `-1` for unknown values, and `;` comment
//! lines. This module writes and parses the subset this reproduction needs:
//!
//! | field | SWF meaning | use here |
//! |---|---|---|
//! | 1 | job number | sequential id |
//! | 2 | submit time (s) | submission instant |
//! | 8 | requested processors | the application's request |
//! | 14 | executable (application) number | application class (1 = swim, 2 = bt.A, 3 = hydro2d, 4 = apsi) |
//!
//! All other fields are written as `-1` (unknown), which is valid SWF.

use std::fmt;

use pdpa_apps::{paper_app, AppClass};
use pdpa_sim::SimTime;

use crate::job::JobSpec;

/// Errors from SWF parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwfError {
    /// A data line has fewer than 18 fields.
    TooFewFields { line: usize, got: usize },
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: usize },
    /// The executable number does not map to a known application class.
    UnknownExecutable { line: usize, executable: i64 },
    /// The submit time is negative.
    NegativeSubmit { line: usize },
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwfError::TooFewFields { line, got } => {
                write!(f, "line {line}: expected 18 SWF fields, got {got}")
            }
            SwfError::BadNumber { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
            SwfError::UnknownExecutable { line, executable } => {
                write!(f, "line {line}: unknown executable number {executable}")
            }
            SwfError::NegativeSubmit { line } => {
                write!(f, "line {line}: negative submit time")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// The SWF executable number of an application class.
pub fn executable_number(class: AppClass) -> i64 {
    match class {
        AppClass::Swim => 1,
        AppClass::BtA => 2,
        AppClass::Hydro2d => 3,
        AppClass::Apsi => 4,
    }
}

/// The application class of an SWF executable number.
pub fn class_of_executable(executable: i64) -> Option<AppClass> {
    match executable {
        1 => Some(AppClass::Swim),
        2 => Some(AppClass::BtA),
        3 => Some(AppClass::Hydro2d),
        4 => Some(AppClass::Apsi),
        _ => None,
    }
}

/// Serializes a workload to SWF text.
pub fn write_swf(jobs: &[JobSpec]) -> String {
    let mut out = String::new();
    out.push_str("; SWF workload trace — PDPA reproduction\n");
    out.push_str("; Executable numbers: 1=swim 2=bt.A 3=hydro2d 4=apsi\n");
    out.push_str("; MaxNodes: 60\n");
    for (i, job) in jobs.iter().enumerate() {
        // Fields:        1  2      3  4  5  6  7  8      9 10 11 12 13 14   15 16 17 18
        let line = format!(
            "{} {:.2} -1 -1 -1 -1 -1 {} -1 -1 -1 -1 -1 {} -1 -1 -1 -1\n",
            i + 1,
            job.submit.as_secs(),
            job.app.request,
            executable_number(job.app.class),
        );
        out.push_str(&line);
    }
    out
}

/// Serializes a *completed run* as a full SWF log: submit/wait/run times
/// and allocated processors filled in from the outcomes, in the field
/// positions the standard assigns (3 = wait, 4 = run, 5 = allocated
/// processors, 11 = status 1 for completed). `outcomes` holds, per job in
/// submission order, the wait time, run time, and mean allocated
/// processors.
///
/// # Panics
///
/// Panics if `outcomes` and `jobs` have different lengths.
pub fn write_swf_log(jobs: &[JobSpec], outcomes: &[(f64, f64, f64)]) -> String {
    assert_eq!(jobs.len(), outcomes.len(), "one outcome per submitted job");
    let mut out = String::new();
    out.push_str("; SWF workload log — PDPA reproduction (completed run)\n");
    out.push_str("; Executable numbers: 1=swim 2=bt.A 3=hydro2d 4=apsi\n");
    out.push_str("; MaxNodes: 60\n");
    for (i, (job, &(wait, run, procs))) in jobs.iter().zip(outcomes).enumerate() {
        let line = format!(
            "{} {:.2} {:.2} {:.2} {:.1} -1 -1 {} -1 -1 1 -1 -1 {} -1 -1 -1 -1\n",
            i + 1,
            job.submit.as_secs(),
            wait,
            run,
            procs,
            job.app.request,
            executable_number(job.app.class),
        );
        out.push_str(&line);
    }
    out
}

/// Parses SWF text into a workload. Applications are reconstructed from
/// their executable number using the calibrated paper models, with the
/// requested processor count from field 8.
pub fn parse_swf(text: &str) -> Result<Vec<JobSpec>, SwfError> {
    let mut jobs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError::TooFewFields {
                line: line_no,
                got: fields.len(),
            });
        }
        let submit: f64 = fields[1].parse().map_err(|_| SwfError::BadNumber {
            line: line_no,
            field: 2,
        })?;
        if submit < 0.0 {
            return Err(SwfError::NegativeSubmit { line: line_no });
        }
        let request: i64 = fields[7].parse().map_err(|_| SwfError::BadNumber {
            line: line_no,
            field: 8,
        })?;
        let executable: i64 = fields[13].parse().map_err(|_| SwfError::BadNumber {
            line: line_no,
            field: 14,
        })?;
        let class = class_of_executable(executable).ok_or(SwfError::UnknownExecutable {
            line: line_no,
            executable,
        })?;
        let mut app = paper_app(class);
        if request > 0 {
            app = app.with_request(request as usize);
        }
        jobs.push(JobSpec::new(SimTime::from_secs(submit), app));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::paper::{apsi, swim};

    #[test]
    fn executable_numbers_round_trip() {
        for class in AppClass::ALL {
            assert_eq!(class_of_executable(executable_number(class)), Some(class));
        }
        assert_eq!(class_of_executable(9), None);
    }

    #[test]
    fn write_then_parse_round_trips() {
        let jobs = vec![
            JobSpec::new(SimTime::from_secs(0.0), swim()),
            JobSpec::new(SimTime::from_secs(12.5), apsi().with_request(30)),
        ];
        let text = write_swf(&jobs);
        let parsed = parse_swf(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].app.class, AppClass::Swim);
        assert_eq!(parsed[0].app.request, 30);
        assert_eq!(parsed[1].app.class, AppClass::Apsi);
        assert_eq!(parsed[1].app.request, 30, "untuned request preserved");
        assert!((parsed[1].submit.as_secs() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "; header\n\n; more\n1 0.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let jobs = parse_swf(text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].app.class, AppClass::Apsi);
        assert_eq!(jobs[0].app.request, 2);
    }

    #[test]
    fn short_lines_are_rejected() {
        let err = parse_swf("1 0.0 -1\n").unwrap_err();
        assert_eq!(err, SwfError::TooFewFields { line: 1, got: 3 });
    }

    #[test]
    fn bad_numbers_are_rejected() {
        let text = "1 zero -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(err, SwfError::BadNumber { line: 1, field: 2 });
    }

    #[test]
    fn unknown_executables_are_rejected() {
        let text = "1 0.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 7 -1 -1 -1 -1\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(
            err,
            SwfError::UnknownExecutable {
                line: 1,
                executable: 7
            }
        );
    }

    #[test]
    fn negative_submit_rejected() {
        let text = "1 -5.0 -1 -1 -1 -1 -1 2 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(err, SwfError::NegativeSubmit { line: 1 });
    }

    #[test]
    fn log_writer_round_trips_and_carries_outcomes() {
        let jobs = vec![
            JobSpec::new(SimTime::from_secs(0.0), swim()),
            JobSpec::new(SimTime::from_secs(9.5), apsi()),
        ];
        let outcomes = vec![(1.5, 12.0, 28.4), (0.0, 105.0, 2.0)];
        let text = write_swf_log(&jobs, &outcomes);
        // Still a valid SWF workload (outcome fields are extra info).
        let parsed = parse_swf(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].app.class, AppClass::Swim);
        // Wait/run/procs appear in the standard positions.
        let first: Vec<&str> = text
            .lines()
            .find(|l| !l.starts_with(';'))
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(first[2], "1.50", "wait time, field 3");
        assert_eq!(first[3], "12.00", "run time, field 4");
        assert_eq!(first[4], "28.4", "allocated processors, field 5");
        assert_eq!(first[10], "1", "status completed, field 11");
    }

    #[test]
    #[should_panic(expected = "one outcome per submitted job")]
    fn log_writer_length_mismatch_panics() {
        let jobs = vec![JobSpec::new(SimTime::from_secs(0.0), swim())];
        let _ = write_swf_log(&jobs, &[]);
    }

    #[test]
    fn unknown_request_falls_back_to_class_default() {
        // Request field -1: keep the calibrated default request.
        let text = "1 0.0 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 4 -1 -1 -1 -1\n";
        let jobs = parse_swf(text).unwrap();
        assert_eq!(jobs[0].app.request, 2, "apsi's tuned default");
    }
}
