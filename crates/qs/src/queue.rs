//! The FCFS job queue with policy-delegated admission.
//!
//! The queuing system owns *which* job starts next (FCFS over arrival
//! order); the processor scheduling policy owns *when* it may start (§4.3).
//! [`QueueSystem`] therefore exposes the waiting queue and leaves the
//! admission check to the engine, which consults
//! `SchedulingPolicy::may_start_new_job` before popping.

use std::collections::VecDeque;

use pdpa_sim::{JobId, SimTime};

use crate::job::JobSpec;

/// The NANOS QS: all submissions of a workload, the waiting queue, and
/// completion bookkeeping.
#[derive(Clone, Debug)]
pub struct QueueSystem {
    /// Every job of the workload, indexed by `JobId`; ids are assigned in
    /// submission order.
    jobs: Vec<JobSpec>,
    /// Arrived jobs not yet started, FCFS.
    waiting: VecDeque<JobId>,
    started: usize,
    completed: usize,
    failed: usize,
}

impl QueueSystem {
    /// Builds the queue system from a workload. Jobs are sorted by
    /// submission time and assigned dense [`JobId`]s in that order.
    pub fn new(mut jobs: Vec<JobSpec>) -> Self {
        jobs.sort_by_key(|a| a.submit);
        QueueSystem {
            jobs,
            waiting: VecDeque::new(),
            started: 0,
            completed: 0,
            failed: 0,
        }
    }

    /// Appends a job submitted *after* construction (online admission by
    /// a resident daemon) and returns its dense id. The caller must keep
    /// submission instants nondecreasing across `push_job` calls —
    /// streaming submissions arrive in wall order — so id order stays
    /// submission order, the invariant [`new`](Self::new) establishes by
    /// sorting.
    pub fn push_job(&mut self, spec: JobSpec) -> JobId {
        debug_assert!(
            self.jobs
                .last()
                .is_none_or(|last| last.submit <= spec.submit),
            "online submissions must be nondecreasing in time"
        );
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(spec);
        id
    }

    /// Removes a still-waiting job from the FCFS queue (cancellation
    /// before start). Returns false if the job is not waiting — already
    /// started, finished, or never arrived.
    pub fn remove_waiting(&mut self, job: JobId) -> bool {
        match self.waiting.iter().position(|&j| j == job) {
            Some(pos) => {
                self.waiting.remove(pos);
                true
            }
            None => false,
        }
    }

    /// All submissions in id order (the engine schedules one arrival event
    /// per entry).
    pub fn submissions(&self) -> impl Iterator<Item = (JobId, &JobSpec)> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (JobId(i as u32), j))
    }

    /// The specification of a job.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn spec(&self, job: JobId) -> &JobSpec {
        &self.jobs[job.index()]
    }

    /// Total jobs in the workload.
    pub fn total_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// A job has arrived (its submission instant passed): it joins the FCFS
    /// queue.
    pub fn arrive(&mut self, job: JobId) {
        debug_assert!(!self.waiting.contains(&job), "double arrival of {job}");
        self.waiting.push_back(job);
    }

    /// The job that would start next, without removing it.
    pub fn head(&self) -> Option<JobId> {
        self.waiting.front().copied()
    }

    /// Starts the head job (the engine calls this only after the policy
    /// granted admission).
    pub fn start_next(&mut self) -> Option<JobId> {
        let job = self.waiting.pop_front()?;
        self.started += 1;
        Some(job)
    }

    /// The waiting jobs in FCFS order (for backfilling scans).
    pub fn waiting(&self) -> impl Iterator<Item = JobId> + '_ {
        self.waiting.iter().copied()
    }

    /// Starts a specific waiting job out of order (backfilling). Returns
    /// false if the job is not waiting.
    pub fn start_specific(&mut self, job: JobId) -> bool {
        match self.waiting.iter().position(|&j| j == job) {
            Some(pos) => {
                self.waiting.remove(pos);
                self.started += 1;
                true
            }
            None => false,
        }
    }

    /// Records a completion.
    pub fn complete(&mut self, _job: JobId) {
        self.completed += 1;
    }

    /// Records a terminal failure: the job crashed and exhausted its
    /// retries (or had none). It will never complete, so the workload
    /// drains without it.
    pub fn fail_terminal(&mut self, _job: JobId) {
        self.failed += 1;
    }

    /// Re-queues a crashed job for a retry. Unlike [`arrive`], the job has
    /// been through the queue before; it rejoins at the back and competes
    /// FCFS with whatever is waiting.
    ///
    /// [`arrive`]: QueueSystem::arrive
    pub fn requeue(&mut self, job: JobId) {
        debug_assert!(!self.waiting.contains(&job), "double requeue of {job}");
        self.waiting.push_back(job);
    }

    /// Jobs waiting to start.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Jobs started so far.
    pub fn started_count(&self) -> usize {
        self.started
    }

    /// Jobs completed so far.
    pub fn completed_count(&self) -> usize {
        self.completed
    }

    /// Jobs that failed terminally.
    pub fn failed_count(&self) -> usize {
        self.failed
    }

    /// True once every job of the workload has either completed or failed
    /// terminally — nothing is left to run.
    pub fn all_done(&self) -> bool {
        self.completed + self.failed == self.jobs.len()
    }

    /// The submission instant of the last job (useful for progress bounds).
    pub fn last_submission(&self) -> Option<SimTime> {
        self.jobs.last().map(|j| j.submit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::paper::{apsi, bt_a};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn make_qs() -> QueueSystem {
        QueueSystem::new(vec![
            JobSpec::new(t(5.0), bt_a()),
            JobSpec::new(t(1.0), apsi()),
            JobSpec::new(t(3.0), bt_a()),
        ])
    }

    #[test]
    fn ids_follow_submission_order() {
        let qs = make_qs();
        let order: Vec<f64> = qs.submissions().map(|(_, j)| j.submit.as_secs()).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
        assert_eq!(qs.spec(JobId(0)).app.class, pdpa_apps::AppClass::Apsi);
        assert_eq!(qs.total_jobs(), 3);
        assert_eq!(qs.last_submission(), Some(t(5.0)));
    }

    #[test]
    fn fcfs_start_order() {
        let mut qs = make_qs();
        qs.arrive(JobId(0));
        qs.arrive(JobId(1));
        assert_eq!(qs.head(), Some(JobId(0)));
        assert_eq!(qs.start_next(), Some(JobId(0)));
        assert_eq!(qs.start_next(), Some(JobId(1)));
        assert_eq!(qs.start_next(), None);
        assert_eq!(qs.started_count(), 2);
    }

    #[test]
    fn completion_bookkeeping() {
        let mut qs = make_qs();
        for i in 0..3 {
            qs.arrive(JobId(i));
            qs.start_next();
            qs.complete(JobId(i));
        }
        assert!(qs.all_done());
        assert_eq!(qs.waiting_count(), 0);
    }

    #[test]
    fn backfill_starts_out_of_order() {
        let mut qs = make_qs();
        qs.arrive(JobId(0));
        qs.arrive(JobId(1));
        qs.arrive(JobId(2));
        let order: Vec<JobId> = qs.waiting().collect();
        assert_eq!(order, vec![JobId(0), JobId(1), JobId(2)]);
        assert!(qs.start_specific(JobId(1)));
        assert!(!qs.start_specific(JobId(1)), "already started");
        assert_eq!(qs.head(), Some(JobId(0)), "head unchanged");
        assert_eq!(qs.waiting_count(), 2);
    }

    #[test]
    fn terminal_failures_drain_the_workload() {
        let mut qs = make_qs();
        for i in 0..3 {
            qs.arrive(JobId(i));
            qs.start_next();
        }
        qs.complete(JobId(0));
        qs.complete(JobId(1));
        assert!(!qs.all_done());
        qs.fail_terminal(JobId(2));
        assert!(qs.all_done(), "a terminal failure counts as drained");
        assert_eq!(qs.failed_count(), 1);
        assert_eq!(qs.completed_count(), 2);
    }

    #[test]
    fn requeue_rejoins_fcfs_at_the_back() {
        let mut qs = make_qs();
        qs.arrive(JobId(0));
        qs.start_next();
        qs.arrive(JobId(1));
        qs.requeue(JobId(0)); // crashed, retrying
        let order: Vec<JobId> = qs.waiting().collect();
        assert_eq!(order, vec![JobId(1), JobId(0)]);
        assert_eq!(qs.start_next(), Some(JobId(1)));
        assert_eq!(qs.start_next(), Some(JobId(0)));
    }

    #[test]
    fn push_job_appends_with_dense_ids() {
        let mut qs = QueueSystem::new(Vec::new());
        let a = qs.push_job(JobSpec::new(t(1.0), apsi()));
        let b = qs.push_job(JobSpec::new(t(2.0), bt_a()));
        assert_eq!((a, b), (JobId(0), JobId(1)));
        assert_eq!(qs.total_jobs(), 2);
        assert_eq!(qs.spec(b).submit, t(2.0));
        assert_eq!(qs.last_submission(), Some(t(2.0)));
    }

    #[test]
    fn remove_waiting_cancels_queued_jobs_only() {
        let mut qs = make_qs();
        qs.arrive(JobId(0));
        qs.arrive(JobId(1));
        qs.start_next();
        assert!(!qs.remove_waiting(JobId(0)), "already started");
        assert!(qs.remove_waiting(JobId(1)));
        assert!(!qs.remove_waiting(JobId(1)), "already removed");
        assert_eq!(qs.waiting_count(), 0);
        assert!(!qs.remove_waiting(JobId(2)), "never arrived");
    }

    #[test]
    fn waiting_count_tracks_queue() {
        let mut qs = make_qs();
        assert_eq!(qs.waiting_count(), 0);
        qs.arrive(JobId(0));
        qs.arrive(JobId(1));
        assert_eq!(qs.waiting_count(), 2);
        qs.start_next();
        assert_eq!(qs.waiting_count(), 1);
    }
}
