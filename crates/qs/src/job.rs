//! Job specifications: an application plus a submission time.

use pdpa_apps::ApplicationSpec;
use pdpa_sim::SimTime;

/// One job of a workload: an application instance and when it is submitted.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Submission instant.
    pub submit: SimTime,
    /// The application to run (class, iterations, speedup curve, request).
    pub app: ApplicationSpec,
}

impl JobSpec {
    /// Creates a job submitted at `submit`.
    pub fn new(submit: SimTime, app: ApplicationSpec) -> Self {
        JobSpec { submit, app }
    }

    /// The job's processor request.
    pub fn request(&self) -> usize {
        self.app.request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::paper::bt_a;

    #[test]
    fn carries_submission_and_request() {
        let j = JobSpec::new(SimTime::from_secs(12.5), bt_a());
        assert_eq!(j.submit.as_secs(), 12.5);
        assert_eq!(j.request(), 30);
    }
}
