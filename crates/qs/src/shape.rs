//! Trace-shaping transforms: turn an arbitrary SWF trace into a workload
//! the engine can replay on a machine of any size, at any target demand.
//!
//! Published supercomputer logs differ from the paper's workloads in three
//! ways: they span weeks rather than 300 seconds, they were recorded on
//! machines of a different size, and their executable numbers do not map
//! to the paper's four applications. The transforms here bridge each gap:
//!
//! 1. [`slice_window`] — keep one time window of the trace, rebased to 0;
//! 2. [`remap_machine`] — rescale requested processor counts from the
//!    recorded machine size to the target machine;
//! 3. [`rescale_load`] — stretch or compress interarrival gaps so the
//!    submitted demand matches a target fraction of machine capacity
//!    (demand = sequential CPU-work / (cpus × submission span), the same
//!    definition the Poisson generator uses);
//! 4. [`jobs_from_records`] — materialize [`JobSpec`]s: known executable
//!    numbers (1–4) keep their calibrated paper applications; unknown
//!    executables get a deterministic fallback speedup curve from
//!    `pdpa-apps`, with iteration counts rescaled to match the record's
//!    measured CPU work when the trace carries one.
//!
//! Transforms operate on [`SwfRecord`]s so they compose in any order;
//! materialization is the last step.

use pdpa_apps::{paper_app, AppClass, ApplicationSpec};
use pdpa_sim::{SimDuration, SimTime};

use crate::job::JobSpec;
use crate::swf::SwfRecord;

/// Keeps the records submitted inside `[from, to)` seconds and rebases
/// their submit times so the window starts at 0. Record order is
/// preserved; outcome fields are untouched.
pub fn slice_window(records: &[SwfRecord], from: f64, to: f64) -> Vec<SwfRecord> {
    records
        .iter()
        .filter(|r| r.submit_secs >= from && r.submit_secs < to)
        .map(|r| {
            let mut r = r.clone();
            r.submit_secs -= from;
            r
        })
        .collect()
}

/// Rescales requested (and recorded allocated) processor counts from the
/// machine the trace was recorded on to a `to_cpus`-processor target,
/// clamping every request into `[1, to_cpus]`. With `from_cpus == to_cpus`
/// requests are only clamped.
pub fn remap_machine(records: &[SwfRecord], from_cpus: usize, to_cpus: usize) -> Vec<SwfRecord> {
    let ratio = if from_cpus > 0 {
        to_cpus as f64 / from_cpus as f64
    } else {
        1.0
    };
    records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if r.requested_procs > 0 {
                let scaled = (r.requested_procs as f64 * ratio).round() as i64;
                r.requested_procs = scaled.clamp(1, to_cpus as i64);
            }
            if r.allocated_procs > 0.0 {
                r.allocated_procs = (r.allocated_procs * ratio).clamp(1.0, to_cpus as f64);
            }
            r
        })
        .collect()
}

/// The trace's intrinsic demand: sequential CPU-work per machine
/// CPU-second over the submission span. Records without a usable work
/// estimate contribute the calibrated paper work of their (inferred)
/// class. Returns 0 for empty or zero-span traces.
pub fn demand(records: &[SwfRecord], cpus: usize) -> f64 {
    if records.is_empty() || cpus == 0 {
        return 0.0;
    }
    let span = records
        .iter()
        .map(|r| r.submit_secs)
        .fold(f64::NEG_INFINITY, f64::max)
        - records
            .iter()
            .map(|r| r.submit_secs)
            .fold(f64::INFINITY, f64::min);
    if span <= 0.0 {
        return 0.0;
    }
    let work: f64 = records.iter().map(record_seq_work).sum();
    work / (cpus as f64 * span)
}

/// Stretches or compresses every interarrival gap by one constant factor
/// so the trace's demand on a `cpus`-processor machine becomes
/// `target_load`. Job work is untouched — only submission instants move.
/// Traces whose demand cannot be computed (empty, single-instant) are
/// returned unchanged.
pub fn rescale_load(records: &[SwfRecord], target_load: f64, cpus: usize) -> Vec<SwfRecord> {
    let current = demand(records, cpus);
    if current <= 0.0 || target_load <= 0.0 {
        return records.to_vec();
    }
    // Demand ∝ 1/span: to raise demand to the target, shrink the span by
    // current/target (and vice versa).
    let factor = current / target_load;
    let origin = records
        .iter()
        .map(|r| r.submit_secs)
        .fold(f64::INFINITY, f64::min);
    records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.submit_secs = origin + (r.submit_secs - origin) * factor;
            r
        })
        .collect()
}

/// The deterministic fallback class for an executable number outside the
/// paper's four applications: hash the executable (or, when unknown, the
/// job number) into the class table, so the same trace always maps to the
/// same mix of speedup curves.
pub fn fallback_class(record: &SwfRecord) -> AppClass {
    let key = if record.executable >= 0 {
        record.executable
    } else {
        record.job_number
    };
    AppClass::ALL[(key.unsigned_abs() as usize) % AppClass::ALL.len()]
}

/// The class a record replays as: its executable's paper application when
/// the number maps (1–4), else the deterministic fallback.
pub fn infer_class(record: &SwfRecord) -> AppClass {
    record.class().unwrap_or_else(|| fallback_class(record))
}

/// A record's sequential-work estimate: the measured `run × procs`
/// CPU-seconds when the trace carries outcomes, else the calibrated work
/// of its (inferred) class.
fn record_seq_work(record: &SwfRecord) -> f64 {
    record
        .cpu_work_estimate()
        .unwrap_or_else(|| paper_app(infer_class(record)).total_seq_time().as_secs())
}

/// Materializes shaped records into engine-ready jobs.
///
/// Class inference follows [`infer_class`]. For records whose executable
/// is *not* one of the paper's four applications but whose outcome fields
/// give a CPU-work estimate, the fallback application's iteration count is
/// rescaled so its sequential work matches the record — the replayed job
/// costs what the log says it cost, under the fallback speedup curve.
/// Positive requested-processor counts override the class default request.
/// Records are sorted by submission time (SWF logs usually are already).
pub fn jobs_from_records(records: &[SwfRecord]) -> Vec<JobSpec> {
    let mut jobs: Vec<JobSpec> = records
        .iter()
        .map(|r| {
            let class = infer_class(r);
            let mut app = paper_app(class);
            if r.class().is_none() {
                if let Some(work) = r.cpu_work_estimate() {
                    app = scale_to_work(&app, work);
                }
            }
            if r.requested_procs > 0 {
                app = app.with_request(r.requested_procs as usize);
            }
            JobSpec::new(SimTime::from_secs(r.submit_secs.max(0.0)), app)
        })
        .collect();
    jobs.sort_by_key(|j| j.submit);
    jobs
}

/// Clones `app` with its iteration count rescaled so total sequential work
/// approximates `seq_work_secs` (at least one iteration).
fn scale_to_work(app: &ApplicationSpec, seq_work_secs: f64) -> ApplicationSpec {
    let iter_secs = app.seq_iter_time.as_secs();
    let iterations = ((seq_work_secs / iter_secs).round() as u32).max(1);
    ApplicationSpec::new(
        app.class,
        iterations,
        SimDuration::from_secs(iter_secs),
        app.request,
        app.speedup.clone(),
        app.measurement_overhead,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swf::parse_swf_trace;

    fn rec(job: i64, submit: f64, req: i64, exec: i64) -> SwfRecord {
        SwfRecord::parse_line(
            &format!("{job} {submit} -1 -1 -1 -1 -1 {req} -1 -1 -1 -1 -1 {exec} -1 -1 -1 -1"),
            1,
        )
        .unwrap()
    }

    #[test]
    fn window_slices_and_rebases() {
        let records = vec![rec(1, 10.0, 4, 1), rec(2, 50.0, 4, 2), rec(3, 90.0, 4, 3)];
        let sliced = slice_window(&records, 40.0, 90.0);
        assert_eq!(sliced.len(), 1);
        assert_eq!(sliced[0].job_number, 2);
        assert_eq!(sliced[0].submit_secs, 10.0);
        // [from, to): the upper bound is exclusive.
        assert!(slice_window(&records, 0.0, 10.0).is_empty());
        assert_eq!(slice_window(&records, 0.0, 1e9).len(), 3);
    }

    #[test]
    fn machine_remap_scales_and_clamps() {
        let records = vec![rec(1, 0.0, 128, 1), rec(2, 1.0, 2, 2), rec(3, 2.0, -1, 3)];
        let remapped = remap_machine(&records, 256, 64);
        assert_eq!(remapped[0].requested_procs, 32);
        assert_eq!(remapped[1].requested_procs, 1, "floor at one processor");
        assert_eq!(remapped[2].requested_procs, -1, "unknown stays unknown");
        // Same-size remap only clamps oversized requests.
        let clamped = remap_machine(&[rec(1, 0.0, 500, 1)], 60, 60);
        assert_eq!(clamped[0].requested_procs, 60);
    }

    #[test]
    fn load_rescaling_hits_the_target_demand() {
        // Two bt.A jobs (2100 cpu-s each) over 100 s on 60 CPUs:
        // demand = 4200 / 6000 = 0.7.
        let records = vec![rec(1, 0.0, 30, 2), rec(2, 100.0, 30, 2)];
        assert!((demand(&records, 60) - 0.7).abs() < 1e-9);
        let rescaled = rescale_load(&records, 1.4, 60);
        assert!((demand(&rescaled, 60) - 1.4).abs() < 1e-9);
        assert!((rescaled[1].submit_secs - 50.0).abs() < 1e-9);
        // Downscaling stretches the window instead.
        let relaxed = rescale_load(&records, 0.35, 60);
        assert!((relaxed[1].submit_secs - 200.0).abs() < 1e-9);
        // Degenerate traces come back unchanged.
        assert_eq!(rescale_load(&[], 1.0, 60), vec![]);
        let single = vec![rec(1, 5.0, 4, 1)];
        assert_eq!(rescale_load(&single, 1.0, 60)[0].submit_secs, 5.0);
    }

    #[test]
    fn class_inference_maps_known_and_hashes_unknown() {
        assert_eq!(infer_class(&rec(1, 0.0, 4, 2)), AppClass::BtA);
        // Unknown executables hash deterministically into the table.
        let a = infer_class(&rec(1, 0.0, 4, 17));
        let b = infer_class(&rec(9, 3.0, 8, 17));
        assert_eq!(a, b, "same executable, same class");
        assert_eq!(a, AppClass::ALL[17 % 4]);
        // Missing executable falls back to the job number.
        assert_eq!(infer_class(&rec(6, 0.0, 4, -1)), AppClass::ALL[6 % 4]);
    }

    #[test]
    fn unknown_executables_with_outcomes_match_recorded_work() {
        // Executable 11 → fallback class; run 100 s on 8 procs → 800
        // cpu-s of sequential work.
        let line = "3 0.0 -1 100.0 8 -1 -1 8 -1 -1 1 -1 -1 11 -1 -1 -1 -1";
        let r = SwfRecord::parse_line(line, 1).unwrap();
        let jobs = jobs_from_records(&[r]);
        let work = jobs[0].app.total_seq_time().as_secs();
        let iter = jobs[0].app.seq_iter_time.as_secs();
        assert!(
            (work - 800.0).abs() <= iter,
            "seq work {work} should approximate 800 within one iteration"
        );
        assert_eq!(jobs[0].app.request, 8);
    }

    #[test]
    fn known_executables_keep_calibrated_applications() {
        // A known class keeps its paper iteration count even when the
        // record carries outcomes (determinism of the paper workloads).
        let line = "3 0.0 -1 100.0 8 -1 -1 16 -1 -1 1 -1 -1 2 -1 -1 -1 -1";
        let r = SwfRecord::parse_line(line, 1).unwrap();
        let jobs = jobs_from_records(&[r]);
        let paper = paper_app(AppClass::BtA);
        assert_eq!(
            jobs[0].app.total_seq_time(),
            paper.total_seq_time(),
            "calibrated work preserved"
        );
        assert_eq!(jobs[0].app.request, 16, "trace request wins");
    }

    #[test]
    fn materialized_jobs_are_sorted_and_nonnegative() {
        let records = vec![rec(2, 30.0, 4, 1), rec(1, 10.0, 4, 2), rec(3, -5.0, 4, 3)];
        let jobs = jobs_from_records(&records);
        assert_eq!(jobs.len(), 3);
        assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert_eq!(jobs[0].submit.as_secs(), 0.0, "negative submits clamp");
    }

    #[test]
    fn transforms_compose_over_a_parsed_trace() {
        let text = "; MaxNodes: 128\n\
                    1 0.0 -1 -1 -1 -1 -1 64 -1 -1 -1 -1 -1 2 -1 -1 -1 -1\n\
                    2 200.0 -1 -1 -1 -1 -1 64 -1 -1 -1 -1 -1 2 -1 -1 -1 -1\n\
                    3 900.0 -1 -1 -1 -1 -1 64 -1 -1 -1 -1 -1 2 -1 -1 -1 -1\n";
        let trace = parse_swf_trace(text).unwrap();
        let windowed = slice_window(&trace.records, 0.0, 500.0);
        let remapped = remap_machine(&windowed, trace.machine_size().unwrap(), 60);
        let shaped = rescale_load(&remapped, 1.0, 60);
        let jobs = jobs_from_records(&shaped);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].app.request, 30, "64/128 of a 60-CPU machine");
        assert!((demand(&shaped, 60) - 1.0).abs() < 1e-9);
    }
}
