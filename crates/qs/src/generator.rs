//! Poisson workload generation.
//!
//! "We generated workloads where applications are submitted to the system
//! following a Poison interarrival function during 300 seconds. These
//! workloads had an estimated processor demand of 60 percent, 80 percent,
//! and 100 percent of the total capacity of the system" (§5).
//!
//! *Demand* is defined as the sequential CPU-work submitted divided by the
//! machine capacity over the submission window: a workload at load `L`
//! submits `L × cpus × duration` CPU-seconds of work in expectation. Each
//! application class contributes its Table-1 share of that work, which
//! fixes its arrival rate; arrivals are then a Poisson process per class,
//! merged and sorted.
//!
//! # Example
//!
//! Generate a small all-swim workload at 80% demand and check the demand
//! math: expected job count = `load × cpus × duration / seq_work`, where
//! swim's sequential work is 50 iterations × 4 s = 200 CPU-seconds.
//!
//! ```
//! use pdpa_apps::AppClass;
//! use pdpa_qs::{generate, GeneratorConfig};
//!
//! let config = GeneratorConfig {
//!     composition: vec![(AppClass::Swim, 1.0)],
//!     load: 0.8,
//!     cpus: 60,
//!     duration_secs: 300.0,
//!     tuned: true,
//! };
//! config.validate().expect("valid configuration");
//!
//! let jobs = generate(&config, 42);
//! let expected = 0.8 * 60.0 * 300.0 / 200.0; // = 72 jobs
//! assert!((jobs.len() as f64 - expected).abs() < 0.5 * expected,
//!         "got {} jobs, expected about {expected:.0}", jobs.len());
//! // Submissions are sorted and fall inside the window.
//! assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
//! assert!(jobs.iter().all(|j| j.submit.as_secs() < 300.0));
//! // Same seed, same workload.
//! assert_eq!(jobs.len(), generate(&config, 42).len());
//! ```

use pdpa_apps::{paper_app, AppClass, ApplicationSpec};
use pdpa_sim::{SimRng, SimTime};

use crate::job::JobSpec;

/// Parameters of one generated workload.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// `(class, share)` pairs; shares must sum to 1.
    pub composition: Vec<(AppClass, f64)>,
    /// Demand as a fraction of machine capacity (0.6, 0.8, 1.0 in the
    /// paper).
    pub load: f64,
    /// Machine size in processors (60 in the paper).
    pub cpus: usize,
    /// Submission window in seconds (300 in the paper).
    pub duration_secs: f64,
    /// Use the tuned processor requests (apsi asks for 2) or the untuned
    /// ones (everything asks for 30).
    pub tuned: bool,
}

impl GeneratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.composition.is_empty() {
            return Err("composition is empty".to_owned());
        }
        let total: f64 = self.composition.iter().map(|&(_, s)| s).sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(format!("composition shares sum to {total}, not 1"));
        }
        if self.composition.iter().any(|&(_, s)| s <= 0.0) {
            return Err("composition shares must be positive".to_owned());
        }
        if !(self.load > 0.0 && self.load <= 2.0) {
            return Err(format!("load {} out of range (0, 2]", self.load));
        }
        if self.cpus == 0 {
            return Err("machine needs processors".to_owned());
        }
        if self.duration_secs.is_nan() || self.duration_secs <= 0.0 {
            return Err("duration must be positive".to_owned());
        }
        Ok(())
    }
}

/// The application spec for a class under this configuration's tuning.
fn app_for(class: AppClass, tuned: bool) -> ApplicationSpec {
    let app = paper_app(class);
    if tuned {
        app
    } else {
        let req = class.untuned_request();
        app.with_request(req)
    }
}

/// Generates a workload: Poisson arrivals per class over the submission
/// window, sorted by submission time. Deterministic for a given seed.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`GeneratorConfig::validate`]).
pub fn generate(config: &GeneratorConfig, seed: u64) -> Vec<JobSpec> {
    config.validate().expect("invalid generator configuration");
    let mut rng = SimRng::new(seed);
    let total_work = config.load * config.cpus as f64 * config.duration_secs;

    let mut jobs = Vec::new();
    for &(class, share) in &config.composition {
        let app = app_for(class, config.tuned);
        let seq_work = app.total_seq_time().as_secs();
        // Expected number of instances of this class.
        let expected = share * total_work / seq_work;
        let mean_gap = config.duration_secs / expected;
        let mut stream = rng.fork(class as u64 + 1);
        let mut t = stream.exponential(mean_gap);
        while t < config.duration_secs {
            jobs.push(JobSpec::new(SimTime::from_secs(t), app.clone()));
            t += stream.exponential(mean_gap);
        }
    }
    jobs.sort_by_key(|a| a.submit);
    jobs
}

/// Generates a workload with **exactly** `n_jobs` jobs.
///
/// The open-ended Poisson process in [`generate`] only hits a target count
/// in expectation; benchmark harnesses that promise "a 1M-job trace" need
/// the count to be exact. This variant conditions the process on the
/// count: each class receives its share of the `n_jobs` total (largest
/// remainders resolve rounding), and the submissions within the window
/// are i.i.d. uniform draws — exactly the conditional distribution of a
/// Poisson process given its event count. Deterministic for a given seed.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`GeneratorConfig::validate`]) or `n_jobs` is zero. `load` is ignored
/// (the count replaces the demand math); it must still be in range.
pub fn generate_exact(config: &GeneratorConfig, seed: u64, n_jobs: usize) -> Vec<JobSpec> {
    config.validate().expect("invalid generator configuration");
    assert!(n_jobs > 0, "n_jobs must be positive");
    let mut rng = SimRng::new(seed);

    // Apportion n_jobs across classes by share, largest remainder first.
    let mut counts: Vec<(AppClass, usize, f64)> = config
        .composition
        .iter()
        .map(|&(class, share)| {
            let exact = share * n_jobs as f64;
            (class, exact as usize, exact - exact.floor())
        })
        .collect();
    let assigned: usize = counts.iter().map(|&(_, c, _)| c).sum();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| counts[b].2.partial_cmp(&counts[a].2).unwrap());
    for &i in order.iter().cycle().take(n_jobs - assigned) {
        counts[i].1 += 1;
    }

    let mut jobs = Vec::with_capacity(n_jobs);
    for (class, count, _) in counts {
        let app = app_for(class, config.tuned);
        let mut stream = rng.fork(class as u64 + 1);
        for _ in 0..count {
            let t = stream.uniform(0.0, config.duration_secs);
            jobs.push(JobSpec::new(SimTime::from_secs(t), app.clone()));
        }
    }
    jobs.sort_by_key(|a| a.submit);
    debug_assert_eq!(jobs.len(), n_jobs);
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(load: f64) -> GeneratorConfig {
        GeneratorConfig {
            composition: vec![(AppClass::Swim, 0.5), (AppClass::BtA, 0.5)],
            load,
            cpus: 60,
            duration_secs: 300.0,
            tuned: true,
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&config(1.0), 42);
        let b = generate(&config(1.0), 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.app.class, y.app.class);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&config(1.0), 1);
        let b = generate(&config(1.0), 2);
        let same_len = a.len() == b.len();
        let same_times = same_len && a.iter().zip(&b).all(|(x, y)| x.submit == y.submit);
        assert!(!same_times, "seeds should decorrelate arrivals");
    }

    #[test]
    fn submissions_are_sorted_and_in_window() {
        let jobs = generate(&config(1.0), 7);
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        for j in &jobs {
            assert!(j.submit.as_secs() < 300.0);
        }
    }

    #[test]
    fn demand_tracks_load_roughly() {
        // Average submitted CPU-work over many seeds should land near
        // load × cpus × duration.
        let cfg = config(0.8);
        let target = 0.8 * 60.0 * 300.0;
        let mut total = 0.0;
        let n_seeds = 40;
        for seed in 0..n_seeds {
            let jobs = generate(&cfg, seed);
            total += jobs
                .iter()
                .map(|j| j.app.total_seq_time().as_secs())
                .sum::<f64>();
        }
        let mean = total / n_seeds as f64;
        let rel_err = (mean - target).abs() / target;
        assert!(rel_err < 0.15, "mean demand {mean} vs target {target}");
    }

    #[test]
    fn composition_shares_hold_roughly() {
        let cfg = config(1.0);
        let mut swim_work = 0.0;
        let mut bt_work = 0.0;
        for seed in 0..40 {
            for j in generate(&cfg, seed) {
                let w = j.app.total_seq_time().as_secs();
                match j.app.class {
                    AppClass::Swim => swim_work += w,
                    AppClass::BtA => bt_work += w,
                    _ => unreachable!(),
                }
            }
        }
        let frac = swim_work / (swim_work + bt_work);
        assert!((frac - 0.5).abs() < 0.1, "swim share {frac}");
    }

    #[test]
    fn untuned_requests_are_thirty() {
        let cfg = GeneratorConfig {
            composition: vec![(AppClass::Apsi, 1.0)],
            load: 0.6,
            cpus: 60,
            duration_secs: 300.0,
            tuned: false,
        };
        let jobs = generate(&cfg, 3);
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| j.app.request == 30));
    }

    #[test]
    fn tuned_requests_match_paper() {
        let cfg = GeneratorConfig {
            composition: vec![(AppClass::Apsi, 1.0)],
            load: 0.6,
            cpus: 60,
            duration_secs: 300.0,
            tuned: true,
        };
        let jobs = generate(&cfg, 3);
        assert!(jobs.iter().all(|j| j.app.request == 2));
    }

    #[test]
    fn exact_count_is_exact() {
        for n in [1, 7, 100, 1234] {
            let jobs = generate_exact(&config(1.0), 42, n);
            assert_eq!(jobs.len(), n);
            assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
            assert!(jobs.iter().all(|j| j.submit.as_secs() < 300.0));
        }
    }

    #[test]
    fn exact_count_is_deterministic() {
        let a = generate_exact(&config(0.8), 7, 500);
        let b = generate_exact(&config(0.8), 7, 500);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.app.class, y.app.class);
        }
        let c = generate_exact(&config(0.8), 8, 500);
        assert!(a.iter().zip(&c).any(|(x, y)| x.submit != y.submit));
    }

    #[test]
    fn exact_count_honors_composition_shares() {
        let jobs = generate_exact(&config(1.0), 3, 1000);
        let swim = jobs
            .iter()
            .filter(|j| j.app.class == AppClass::Swim)
            .count();
        assert_eq!(swim, 500, "0.5 share of 1000 jobs must be exact");
    }

    #[test]
    #[should_panic(expected = "n_jobs")]
    fn exact_count_rejects_zero() {
        let _ = generate_exact(&config(1.0), 3, 0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = config(1.0);
        c.composition[0].1 = 0.7; // sums to 1.2
        assert!(c.validate().is_err());
        let mut c = config(1.0);
        c.load = 0.0;
        assert!(c.validate().is_err());
        let mut c = config(1.0);
        c.composition.clear();
        assert!(c.validate().is_err());
    }
}
