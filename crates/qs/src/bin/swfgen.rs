//! `swfgen` — generate and inspect Standard Workload Format traces.
//!
//! ```text
//! swfgen gen <w1|w2|w3|w4> <load> <seed> [--untuned] [--duration S] [--cpus N] [--jobs N]
//! swfgen info < trace.swf                              # summarize stdin
//! ```
//!
//! `gen` writes SWF to stdout; `--duration` stretches the submission
//! window past the paper's 300 s (job count scales linearly with it, so
//! long windows produce the multi-thousand-job traces the replay engine
//! is benchmarked on) and `--cpus` sets the machine the demand math
//! targets. `--jobs N` pins the trace to **exactly** N jobs (conditioned
//! Poisson process) instead of hitting the demand target in expectation —
//! use it when a benchmark promises a specific trace size.
//!
//! The paper distributes its workloads as SWF trace files so that every
//! scheduling policy replays the identical submission sequence; this tool
//! produces and summarizes such files.

use std::io::Read;
use std::process::ExitCode;

use pdpa_apps::AppClass;
use pdpa_qs::{
    generate, generate_exact, swf, GeneratorConfig, Workload, DEFAULT_DURATION_SECS,
    DEFAULT_MACHINE_CPUS,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  swfgen gen <w1|w2|w3|w4> <load> <seed> [--untuned] [--duration S] [--cpus N] [--jobs N]\n  swfgen info < trace.swf"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("info") => info(),
        _ => usage(),
    }
}

fn gen(args: &[String]) -> ExitCode {
    let (Some(wl), Some(load), Some(seed)) = (args.first(), args.get(1), args.get(2)) else {
        return usage();
    };
    let workload = match wl.as_str() {
        "w1" => Workload::W1,
        "w2" => Workload::W2,
        "w3" => Workload::W3,
        "w4" => Workload::W4,
        other => {
            eprintln!("unknown workload {other:?}");
            return ExitCode::from(2);
        }
    };
    let Ok(load) = load.parse::<f64>() else {
        eprintln!("load must be a number, got {load:?}");
        return ExitCode::from(2);
    };
    let Ok(seed) = seed.parse::<u64>() else {
        eprintln!("seed must be an integer, got {seed:?}");
        return ExitCode::from(2);
    };
    let tuned = !args.iter().any(|a| a == "--untuned");
    let duration = match flag_value(args, "--duration") {
        Some(Ok(v)) if v > 0.0 => v,
        Some(_) => {
            eprintln!("--duration must be a positive number of seconds");
            return ExitCode::from(2);
        }
        None => DEFAULT_DURATION_SECS,
    };
    let cpus = match flag_value(args, "--cpus") {
        Some(Ok(v)) if v >= 1.0 => v as usize,
        Some(_) => {
            eprintln!("--cpus must be a positive integer");
            return ExitCode::from(2);
        }
        None => DEFAULT_MACHINE_CPUS,
    };
    let exact_jobs = match flag_value(args, "--jobs") {
        Some(Ok(v)) if v >= 1.0 && v.fract() == 0.0 => Some(v as usize),
        Some(_) => {
            eprintln!("--jobs must be a positive integer");
            return ExitCode::from(2);
        }
        None => None,
    };
    let config = GeneratorConfig {
        composition: workload.composition(),
        load,
        cpus,
        duration_secs: duration,
        tuned,
    };
    if let Err(e) = config.validate() {
        eprintln!("invalid configuration: {e}");
        return ExitCode::from(2);
    }
    let jobs = match exact_jobs {
        Some(n) => generate_exact(&config, seed, n),
        None => generate(&config, seed),
    };
    print!("{}", swf::write_swf(&jobs));
    ExitCode::SUCCESS
}

/// The parsed value following `flag`, if the flag is present.
fn flag_value(args: &[String], flag: &str) -> Option<Result<f64, ()>> {
    let at = args.iter().position(|a| a == flag)?;
    Some(args.get(at + 1).and_then(|v| v.parse().ok()).ok_or(()))
}

fn info() -> ExitCode {
    let mut text = String::new();
    if std::io::stdin().read_to_string(&mut text).is_err() {
        eprintln!("could not read stdin");
        return ExitCode::FAILURE;
    }
    let jobs = match swf::parse_swf(&text) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{} jobs", jobs.len());
    if let (Some(first), Some(last)) = (jobs.first(), jobs.last()) {
        println!(
            "submissions: {:.1}s .. {:.1}s",
            first.submit.as_secs(),
            last.submit.as_secs()
        );
    }
    for class in AppClass::ALL {
        let of_class: Vec<_> = jobs.iter().filter(|j| j.app.class == class).collect();
        if of_class.is_empty() {
            continue;
        }
        let work: f64 = of_class
            .iter()
            .map(|j| j.app.total_seq_time().as_secs())
            .sum();
        let requests: std::collections::BTreeSet<usize> =
            of_class.iter().map(|j| j.app.request).collect();
        println!(
            "  {:<8} {:>4} jobs, {:>8.0} cpu-s, requests {:?}",
            class.name(),
            of_class.len(),
            work,
            requests
        );
    }
    ExitCode::SUCCESS
}
