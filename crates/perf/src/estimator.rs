//! Efficiency extrapolation for the Equal_efficiency policy.
//!
//! Nguyen et al.'s Equal_efficiency allocates more processors to the
//! applications with the best efficiency "using extrapolated values"
//! (§3.3). This estimator fits an Amdahl model to the most recent measured
//! speedup and extrapolates efficiency to any allocation.
//!
//! The paper criticizes exactly this construction: the fit is driven by the
//! latest (noisy) sample, so "small variations in the efficiency generate
//! high variances in the processor allocation" (§5.1). The instability is a
//! property we *want* to reproduce, so the estimator deliberately fits the
//! latest observation rather than smoothing aggressively.

/// Amdahl-fit efficiency extrapolator.
///
/// From a measured speedup `S` at `p` processors (`p ≥ 2`), the serial
/// fraction is `f = (p/S − 1)/(p − 1)`; efficiency at any other allocation
/// `q` follows from Amdahl's law.
#[derive(Clone, Debug, Default)]
pub struct EfficiencyEstimator {
    /// Fitted serial fraction, once at least one usable sample arrived.
    serial_fraction: Option<f64>,
    /// The sample the fit came from.
    last_sample: Option<(usize, f64)>,
}

impl EfficiencyEstimator {
    /// Creates an estimator with no knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a measured `(procs, speedup)` sample.
    ///
    /// Samples at fewer than 2 processors carry no scalability information
    /// and are ignored. Superlinear measurements (speedup > procs) clamp the
    /// serial fraction at 0 — Amdahl cannot represent them, which is one of
    /// the formulation problems the paper observed.
    pub fn observe(&mut self, procs: usize, speedup: f64) {
        if procs < 2 || speedup <= 0.0 {
            return;
        }
        let p = procs as f64;
        let f = ((p / speedup) - 1.0) / (p - 1.0);
        self.serial_fraction = Some(f.clamp(0.0, 1.0));
        self.last_sample = Some((procs, speedup));
    }

    /// True once a usable sample has been observed.
    pub fn has_estimate(&self) -> bool {
        self.serial_fraction.is_some()
    }

    /// The fitted serial fraction, if any.
    pub fn serial_fraction(&self) -> Option<f64> {
        self.serial_fraction
    }

    /// Extrapolated speedup at `procs`.
    ///
    /// Returns `None` before the first sample. With no knowledge the caller
    /// must fall back to an optimistic default (Equal_efficiency starts jobs
    /// assuming they scale).
    pub fn speedup_at(&self, procs: usize) -> Option<f64> {
        let f = self.serial_fraction?;
        if procs == 0 {
            return Some(0.0);
        }
        Some(1.0 / (f + (1.0 - f) / procs as f64))
    }

    /// Extrapolated efficiency at `procs`.
    pub fn efficiency_at(&self, procs: usize) -> Option<f64> {
        if procs == 0 {
            return Some(0.0);
        }
        self.speedup_at(procs).map(|s| s / procs as f64)
    }

    /// The marginal efficiency of moving from `procs` to `procs + 1`:
    /// `S(p+1) − S(p)`. Used by the water-filling allocator.
    pub fn marginal_gain(&self, procs: usize) -> Option<f64> {
        Some(self.speedup_at(procs + 1)? - self.speedup_at(procs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_no_estimate() {
        let e = EfficiencyEstimator::new();
        assert!(!e.has_estimate());
        assert!(e.speedup_at(8).is_none());
    }

    #[test]
    fn perfect_scaling_fit() {
        let mut e = EfficiencyEstimator::new();
        e.observe(8, 8.0);
        assert_eq!(e.serial_fraction(), Some(0.0));
        assert!((e.speedup_at(16).unwrap() - 16.0).abs() < 1e-12);
        assert!((e.efficiency_at(16).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_amdahl_truth() {
        // Truth: serial fraction 0.1 → S(10) = 1/(0.1 + 0.9/10) = 5.263...
        let truth = 1.0 / (0.1 + 0.9 / 10.0);
        let mut e = EfficiencyEstimator::new();
        e.observe(10, truth);
        assert!((e.serial_fraction().unwrap() - 0.1).abs() < 1e-9);
        // Extrapolation to 20 matches the analytic value.
        let expected = 1.0 / (0.1 + 0.9 / 20.0);
        assert!((e.speedup_at(20).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn superlinear_clamps_to_zero_serial() {
        let mut e = EfficiencyEstimator::new();
        e.observe(8, 11.0); // superlinear — Amdahl cannot express it
        assert_eq!(e.serial_fraction(), Some(0.0));
        // The extrapolation is linear (and underestimates the superlinear
        // truth — the formulation problem the paper observed).
        assert!((e.speedup_at(16).unwrap() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_allocations_are_ignored() {
        let mut e = EfficiencyEstimator::new();
        e.observe(1, 1.0);
        e.observe(0, 0.5);
        assert!(!e.has_estimate());
    }

    #[test]
    fn latest_sample_wins() {
        let mut e = EfficiencyEstimator::new();
        e.observe(8, 8.0);
        e.observe(8, 4.0); // much worse measurement
        let f = e.serial_fraction().unwrap();
        assert!(f > 0.1, "fit follows the latest sample, f = {f}");
    }

    #[test]
    fn marginal_gain_decreases() {
        let mut e = EfficiencyEstimator::new();
        e.observe(10, 5.0);
        let g4 = e.marginal_gain(4).unwrap();
        let g20 = e.marginal_gain(20).unwrap();
        assert!(g4 > g20, "diminishing returns: {g4} vs {g20}");
    }

    #[test]
    fn noise_sensitivity_is_real() {
        // The same true speedup measured with ±5 % noise produces visibly
        // different extrapolations at large allocations — the instability
        // mechanism behind Equal_efficiency's thrash.
        let truth = 1.0 / (0.05 + 0.95 / 12.0);
        let mut lo = EfficiencyEstimator::new();
        let mut hi = EfficiencyEstimator::new();
        lo.observe(12, truth * 0.95);
        hi.observe(12, truth * 1.05);
        let d = (lo.speedup_at(40).unwrap() - hi.speedup_at(40).unwrap()).abs();
        assert!(d > 2.0, "extrapolations diverge by {d} at 40 procs");
    }
}
