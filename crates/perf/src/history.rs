//! Per-application performance history.
//!
//! PDPA "manages information related to the recent past of the application:
//! it remembers the last processor allocations different from the current
//! one and the efficiency achieved with them" (§4.1). [`PerfHistory`] is
//! that memory: a bounded log of `(allocation, speedup, iteration time)`
//! observations with the queries the policy needs.

use std::collections::VecDeque;

use pdpa_sim::SimDuration;

/// One remembered observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistoryEntry {
    /// Processor allocation the observation was made under.
    pub procs: usize,
    /// Estimated speedup at that allocation.
    pub speedup: f64,
    /// Measured iteration time at that allocation.
    pub iter_time: SimDuration,
}

impl HistoryEntry {
    /// Efficiency of the remembered allocation.
    pub fn efficiency(&self) -> f64 {
        if self.procs == 0 {
            0.0
        } else {
            self.speedup / self.procs as f64
        }
    }
}

/// A bounded log of recent performance observations.
///
/// Consecutive observations at the same allocation overwrite each other
/// (only the most recent measurement per allocation run matters), so the
/// log's entries are runs of *distinct* allocations, newest last.
#[derive(Clone, Debug)]
pub struct PerfHistory {
    entries: VecDeque<HistoryEntry>,
    capacity: usize,
}

impl PerfHistory {
    /// Creates a history remembering up to `capacity` distinct allocations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history needs capacity");
        PerfHistory {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, procs: usize, speedup: f64, iter_time: SimDuration) {
        let entry = HistoryEntry {
            procs,
            speedup,
            iter_time,
        };
        if let Some(last) = self.entries.back_mut() {
            if last.procs == procs {
                // Same allocation run: keep the freshest measurement.
                *last = entry;
                return;
            }
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// The most recent observation.
    pub fn current(&self) -> Option<&HistoryEntry> {
        self.entries.back()
    }

    /// The most recent observation at an allocation *different from*
    /// `procs` — the "last allocation" PDPA compares against.
    pub fn last_other_than(&self, procs: usize) -> Option<&HistoryEntry> {
        self.entries.iter().rev().find(|e| e.procs != procs)
    }

    /// The most recent observation at exactly `procs`, if remembered.
    pub fn at(&self, procs: usize) -> Option<&HistoryEntry> {
        self.entries.iter().rev().find(|e| e.procs == procs)
    }

    /// All remembered entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &HistoryEntry> {
        self.entries.iter()
    }

    /// Number of remembered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Default for PerfHistory {
    /// Eight distinct allocations of memory — more than a PDPA search ever
    /// traverses in one direction on a 60-processor machine with step 4.
    fn default() -> Self {
        PerfHistory::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn empty_history_answers_none() {
        let h = PerfHistory::default();
        assert!(h.is_empty());
        assert!(h.current().is_none());
        assert!(h.last_other_than(4).is_none());
    }

    #[test]
    fn same_allocation_overwrites() {
        let mut h = PerfHistory::default();
        h.record(4, 3.0, secs(2.0));
        h.record(4, 3.2, secs(1.9));
        assert_eq!(h.len(), 1);
        assert_eq!(h.current().unwrap().speedup, 3.2);
    }

    #[test]
    fn last_other_than_skips_current_allocation() {
        let mut h = PerfHistory::default();
        h.record(4, 3.0, secs(2.0));
        h.record(8, 5.5, secs(1.1));
        h.record(8, 5.6, secs(1.05));
        let prev = h.last_other_than(8).unwrap();
        assert_eq!(prev.procs, 4);
        assert_eq!(prev.speedup, 3.0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut h = PerfHistory::new(2);
        h.record(2, 1.8, secs(4.0));
        h.record(4, 3.0, secs(2.2));
        h.record(8, 5.0, secs(1.3));
        assert_eq!(h.len(), 2);
        assert!(h.at(2).is_none(), "oldest entry evicted");
        assert!(h.at(4).is_some());
    }

    #[test]
    fn efficiency_is_speedup_over_procs() {
        let e = HistoryEntry {
            procs: 8,
            speedup: 6.0,
            iter_time: secs(1.0),
        };
        assert!((e.efficiency() - 0.75).abs() < 1e-12);
        let zero = HistoryEntry {
            procs: 0,
            speedup: 0.0,
            iter_time: secs(1.0),
        };
        assert_eq!(zero.efficiency(), 0.0);
    }

    #[test]
    fn clear_forgets() {
        let mut h = PerfHistory::default();
        h.record(4, 3.0, secs(1.0));
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn alternating_allocations_are_distinct_entries() {
        let mut h = PerfHistory::new(8);
        h.record(4, 3.0, secs(1.0));
        h.record(8, 5.0, secs(0.6));
        h.record(4, 3.1, secs(0.95));
        assert_eq!(h.len(), 3, "a return to an old allocation is a new run");
        assert_eq!(h.last_other_than(4).unwrap().procs, 8);
    }
}
