//! The SelfAnalyzer: runtime speedup estimation from iteration timings.

use pdpa_sim::SimDuration;

/// Configuration of a [`SelfAnalyzer`].
#[derive(Clone, Copy, Debug)]
pub struct SelfAnalyzerConfig {
    /// Number of initial iterations executed at the baseline allocation to
    /// obtain the reference time.
    pub baseline_iters: u32,
    /// Processors used during the baseline measurement ("a small number of
    /// processors", §3.1).
    pub baseline_procs: usize,
    /// Amdahl factor: the assumed efficiency of the baseline allocation
    /// itself, used to normalize the estimated speedup to a one-processor
    /// reference. With `baseline_procs = 2` and `AF = 0.975` the analyzer
    /// assumes the baseline ran at speedup `2 × 0.975 = 1.95` — calibrated
    /// to the near-linear two-processor scaling of well-parallelized codes.
    pub amdahl_factor: f64,
}

impl Default for SelfAnalyzerConfig {
    fn default() -> Self {
        SelfAnalyzerConfig {
            baseline_iters: 2,
            baseline_procs: 2,
            amdahl_factor: 0.975,
        }
    }
}

impl SelfAnalyzerConfig {
    /// The speedup the analyzer assumes the baseline allocation achieved.
    pub fn assumed_baseline_speedup(&self) -> f64 {
        if self.baseline_procs <= 1 {
            1.0
        } else {
            self.baseline_procs as f64 * self.amdahl_factor
        }
    }
}

/// One performance estimate, produced after a post-baseline iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfSample {
    /// Processors the iteration ran with.
    pub procs: usize,
    /// Estimated speedup over one processor.
    pub speedup: f64,
    /// Estimated efficiency (`speedup / procs`).
    pub efficiency: f64,
    /// Measured wall-clock time of the iteration.
    pub iter_time: SimDuration,
    /// Index of the iteration (0-based, counting every iteration including
    /// the baseline ones).
    pub iteration: u32,
}

/// Per-application runtime speedup estimator.
///
/// Feed it every completed iteration via [`record_iteration`]; during the
/// baseline phase it returns `None` (no estimate yet), afterwards it returns
/// a [`PerfSample`] per iteration.
///
/// [`record_iteration`]: SelfAnalyzer::record_iteration
///
/// # Examples
///
/// ```
/// use pdpa_perf::{SelfAnalyzer, SelfAnalyzerConfig};
/// use pdpa_sim::SimDuration;
///
/// let mut analyzer = SelfAnalyzer::new(SelfAnalyzerConfig::default());
/// // Two baseline iterations on 2 processors establish the reference.
/// analyzer.record_iteration(2, SimDuration::from_secs(10.0));
/// analyzer.record_iteration(2, SimDuration::from_secs(10.0));
/// // An iteration 4x faster on 12 processors:
/// let sample = analyzer
///     .record_iteration(12, SimDuration::from_secs(2.5))
///     .expect("past the baseline phase");
/// assert!((sample.speedup - 7.8).abs() < 1e-9); // 4 × (2 × 0.975)
/// ```
#[derive(Clone, Debug)]
pub struct SelfAnalyzer {
    config: SelfAnalyzerConfig,
    /// Baseline iteration times collected so far.
    baseline_times: Vec<SimDuration>,
    /// Reference time (average baseline iteration), once known.
    time_with_baseline: Option<SimDuration>,
    iterations_seen: u32,
}

impl SelfAnalyzer {
    /// Creates an analyzer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no baseline iterations, no
    /// baseline processors, or a non-positive Amdahl factor).
    pub fn new(config: SelfAnalyzerConfig) -> Self {
        assert!(
            config.baseline_iters > 0,
            "need at least one baseline iteration"
        );
        assert!(config.baseline_procs > 0, "baseline needs processors");
        assert!(config.amdahl_factor > 0.0, "Amdahl factor must be positive");
        SelfAnalyzer {
            config,
            baseline_times: Vec::new(),
            time_with_baseline: None,
            iterations_seen: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SelfAnalyzerConfig {
        &self.config
    }

    /// True while the analyzer is still collecting baseline iterations.
    pub fn in_baseline_phase(&self) -> bool {
        self.time_with_baseline.is_none()
    }

    /// Iterations recorded so far (baseline included).
    pub fn iterations_seen(&self) -> u32 {
        self.iterations_seen
    }

    /// The reference time, once the baseline phase has completed.
    pub fn time_with_baseline(&self) -> Option<SimDuration> {
        self.time_with_baseline
    }

    /// How many processors the application should actually use when the
    /// scheduler has allocated `allocated`: during the baseline phase the
    /// runtime restrains itself to the baseline processors.
    pub fn effective_procs(&self, allocated: usize) -> usize {
        if self.in_baseline_phase() {
            allocated.min(self.config.baseline_procs)
        } else {
            allocated
        }
    }

    /// Records a completed iteration that ran on `procs` processors in
    /// `iter_time` wall-clock seconds.
    ///
    /// Returns a performance estimate once the baseline is established.
    /// Baseline iterations that ran on *more* processors than the baseline
    /// (possible if the scheduler raised the allocation before the runtime
    /// could restrain it) are still accepted: the reference is whatever the
    /// first iterations measured, and the Amdahl factor absorbs the error —
    /// exactly the approximation the real SelfAnalyzer makes.
    pub fn record_iteration(&mut self, procs: usize, iter_time: SimDuration) -> Option<PerfSample> {
        self.iterations_seen += 1;
        match self.time_with_baseline {
            None => {
                self.baseline_times.push(iter_time);
                if self.baseline_times.len() as u32 >= self.config.baseline_iters {
                    let total: SimDuration = self.baseline_times.iter().copied().sum();
                    self.time_with_baseline = Some(total / self.baseline_times.len() as f64);
                }
                None
            }
            Some(t_base) => {
                if procs == 0 || iter_time.is_zero() {
                    return None;
                }
                let ratio = t_base.as_secs() / iter_time.as_secs();
                let speedup = ratio * self.config.assumed_baseline_speedup();
                Some(PerfSample {
                    procs,
                    speedup,
                    efficiency: speedup / procs as f64,
                    iter_time,
                    iteration: self.iterations_seen - 1,
                })
            }
        }
    }

    /// Discards the baseline and starts over.
    ///
    /// The paper suggests resetting the analyzer when an application's
    /// working set changes between iterations (§3.1).
    pub fn reset(&mut self) {
        self.baseline_times.clear();
        self.time_with_baseline = None;
    }
}

impl Default for SelfAnalyzer {
    fn default() -> Self {
        Self::new(SelfAnalyzerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn baseline_phase_returns_no_samples() {
        let mut sa = SelfAnalyzer::default();
        assert!(sa.in_baseline_phase());
        assert!(sa.record_iteration(2, secs(10.0)).is_none());
        assert!(sa.in_baseline_phase());
        assert!(sa.record_iteration(2, secs(10.0)).is_none());
        assert!(!sa.in_baseline_phase());
        assert_eq!(sa.time_with_baseline(), Some(secs(10.0)));
    }

    #[test]
    fn baseline_averages_iterations() {
        let mut sa = SelfAnalyzer::new(SelfAnalyzerConfig {
            baseline_iters: 3,
            ..Default::default()
        });
        sa.record_iteration(2, secs(9.0));
        sa.record_iteration(2, secs(10.0));
        sa.record_iteration(2, secs(11.0));
        assert_eq!(sa.time_with_baseline(), Some(secs(10.0)));
    }

    #[test]
    fn speedup_estimate_is_normalized_by_amdahl_factor() {
        let mut sa = SelfAnalyzer::default(); // baseline: 2 procs, AF 0.975
        sa.record_iteration(2, secs(10.0));
        sa.record_iteration(2, secs(10.0));
        // An iteration twice as fast as the baseline on 8 processors:
        // estimated speedup = 2 × (2 × 0.975) = 3.9, efficiency 0.4875.
        let s = sa.record_iteration(8, secs(5.0)).unwrap();
        assert!((s.speedup - 3.9).abs() < 1e-12, "{}", s.speedup);
        assert!((s.efficiency - 0.4875).abs() < 1e-12);
        assert_eq!(s.procs, 8);
    }

    #[test]
    fn single_processor_baseline_needs_no_normalization() {
        let cfg = SelfAnalyzerConfig {
            baseline_iters: 1,
            baseline_procs: 1,
            amdahl_factor: 0.975,
        };
        assert_eq!(cfg.assumed_baseline_speedup(), 1.0);
        let mut sa = SelfAnalyzer::new(cfg);
        sa.record_iteration(1, secs(12.0));
        let s = sa.record_iteration(4, secs(3.0)).unwrap();
        assert!((s.speedup - 4.0).abs() < 1e-12);
    }

    #[test]
    fn effective_procs_restrains_during_baseline() {
        let mut sa = SelfAnalyzer::default();
        assert_eq!(sa.effective_procs(30), 2);
        assert_eq!(sa.effective_procs(1), 1);
        sa.record_iteration(2, secs(1.0));
        sa.record_iteration(2, secs(1.0));
        assert_eq!(sa.effective_procs(30), 30);
    }

    #[test]
    fn degenerate_measurements_produce_no_sample() {
        let mut sa = SelfAnalyzer::default();
        sa.record_iteration(2, secs(1.0));
        sa.record_iteration(2, secs(1.0));
        assert!(sa.record_iteration(0, secs(1.0)).is_none());
        assert!(sa.record_iteration(4, SimDuration::ZERO).is_none());
    }

    #[test]
    fn reset_restarts_the_baseline() {
        let mut sa = SelfAnalyzer::default();
        sa.record_iteration(2, secs(1.0));
        sa.record_iteration(2, secs(1.0));
        assert!(!sa.in_baseline_phase());
        sa.reset();
        assert!(sa.in_baseline_phase());
        assert!(sa.record_iteration(2, secs(2.0)).is_none());
    }

    #[test]
    fn iteration_indices_count_from_zero_including_baseline() {
        let mut sa = SelfAnalyzer::default();
        sa.record_iteration(2, secs(1.0));
        sa.record_iteration(2, secs(1.0));
        let s = sa.record_iteration(4, secs(0.5)).unwrap();
        assert_eq!(s.iteration, 2);
        assert_eq!(sa.iterations_seen(), 3);
    }
}
