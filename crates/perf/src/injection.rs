//! Binary-only monitoring: the dynamic-interposition pipeline.
//!
//! When an application's source is unavailable, the NANOS tools cannot have
//! the compiler insert SelfAnalyzer calls at the outer loop. Instead, a
//! dynamic interposition tool (DITools) intercepts the *parallel loops* the
//! binary executes, and the Dynamic Periodicity Detector recovers the
//! iterative structure from that stream: "this tool receives as input the
//! sequence of parallel loops executed (the address of the encapsulated
//! loop), and generates a Boolean indicating if it corresponds with the
//! initial period of a loop or not" (§3.1).
//!
//! [`BinaryMonitor`] is that pipeline: feed it every executed parallel loop
//! (address + timestamp + processors); once the detector locks onto a
//! period, the span between consecutive period starts is one *iteration*,
//! which is timed and handed to the embedded [`SelfAnalyzer`] exactly as a
//! compiler-instrumented application would do.

use pdpa_sim::SimTime;

use crate::periodicity::PeriodicityDetector;
use crate::selfanalyzer::{PerfSample, SelfAnalyzer};

/// SelfAnalyzer for binaries: loop stream in, performance estimates out.
#[derive(Clone, Debug)]
pub struct BinaryMonitor {
    detector: PeriodicityDetector,
    analyzer: SelfAnalyzer,
    /// Start of the iteration currently being timed.
    open_iteration: Option<SimTime>,
    iterations_detected: u32,
}

impl BinaryMonitor {
    /// Creates a monitor with the given analyzer and the default detector
    /// window.
    pub fn new(analyzer: SelfAnalyzer) -> Self {
        Self::with_detector(analyzer, PeriodicityDetector::default())
    }

    /// Creates a monitor with an explicit detector.
    pub fn with_detector(analyzer: SelfAnalyzer, detector: PeriodicityDetector) -> Self {
        BinaryMonitor {
            detector,
            analyzer,
            open_iteration: None,
            iterations_detected: 0,
        }
    }

    /// The detected period length (parallel loops per iteration), if any.
    pub fn period(&self) -> Option<usize> {
        self.detector.period()
    }

    /// Iterations recognized so far.
    pub fn iterations_detected(&self) -> u32 {
        self.iterations_detected
    }

    /// Access to the embedded analyzer (e.g. for
    /// [`SelfAnalyzer::effective_procs`]).
    pub fn analyzer(&self) -> &SelfAnalyzer {
        &self.analyzer
    }

    /// Records that the application executed the parallel loop at
    /// `loop_addr`, starting at instant `now`, on `procs` processors.
    ///
    /// Returns a performance estimate when this loop closes an iteration
    /// *and* the analyzer is past its baseline phase.
    pub fn on_parallel_loop(
        &mut self,
        loop_addr: u64,
        now: SimTime,
        procs: usize,
    ) -> Option<PerfSample> {
        let starts_period = self.detector.push(loop_addr);
        if !starts_period {
            return None;
        }
        let sample = match self.open_iteration.take() {
            Some(started) if now > started => {
                self.iterations_detected += 1;
                self.analyzer.record_iteration(procs, now.since(started))
            }
            _ => None,
        };
        self.open_iteration = Some(now);
        sample
    }

    /// Resets the pipeline (e.g. after a detected phase change in the
    /// binary): the detector relearns the period and the analyzer restarts
    /// its baseline.
    pub fn reset(&mut self) {
        self.analyzer.reset();
        self.open_iteration = None;
        self.iterations_detected = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfanalyzer::SelfAnalyzerConfig;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Drives the monitor with a repeating 3-loop iteration of duration
    /// `iter_secs`, starting at `t0`, on `procs` processors, for `n`
    /// iterations. Returns all produced samples.
    fn drive(
        monitor: &mut BinaryMonitor,
        t0: f64,
        iter_secs: f64,
        procs: usize,
        n: usize,
    ) -> Vec<PerfSample> {
        let mut out = Vec::new();
        for i in 0..n {
            let base = t0 + i as f64 * iter_secs;
            for (k, addr) in [0x10u64, 0x20, 0x30].iter().enumerate() {
                let at = base + k as f64 * iter_secs / 3.0;
                if let Some(s) = monitor.on_parallel_loop(*addr, t(at), procs) {
                    out.push(s);
                }
            }
        }
        out
    }

    #[test]
    fn detects_structure_then_estimates_speedup() {
        let mut m = BinaryMonitor::new(SelfAnalyzer::new(SelfAnalyzerConfig::default()));
        // Baseline at 2 processors: iterations of 6 s.
        let samples = drive(&mut m, 0.0, 6.0, 2, 5);
        assert_eq!(m.period(), Some(3), "three parallel loops per iteration");
        // Now the application runs on 8 processors: iterations of 1.5 s
        // (true speedup 4 over the baseline's assumed 1.95 → est. 7.8).
        let t_cont = 5.0 * 6.0;
        let samples8 = drive(&mut m, t_cont, 1.5, 8, 4);
        assert!(
            !samples8.is_empty(),
            "estimates flow once structure is known"
        );
        let last = samples8.last().unwrap();
        assert_eq!(last.procs, 8);
        assert!(
            (last.speedup - 7.8).abs() < 0.2,
            "estimated speedup {}",
            last.speedup
        );
        // Baseline-phase samples never leak.
        assert!(samples.len() <= 3);
    }

    #[test]
    fn no_estimates_before_period_lock() {
        let mut m = BinaryMonitor::new(SelfAnalyzer::default());
        // A non-repeating prefix produces nothing.
        for (i, addr) in [1u64, 2, 3, 4, 5, 6, 7].iter().enumerate() {
            let s = m.on_parallel_loop(*addr, t(i as f64), 4);
            assert!(s.is_none());
        }
        assert_eq!(m.iterations_detected(), 0);
    }

    #[test]
    fn reset_relearns() {
        let mut m = BinaryMonitor::new(SelfAnalyzer::default());
        drive(&mut m, 0.0, 4.0, 2, 6);
        assert!(m.iterations_detected() > 0);
        m.reset();
        assert_eq!(m.iterations_detected(), 0);
        assert!(m.analyzer().in_baseline_phase());
        // After the reset the pipeline works again.
        let samples = drive(&mut m, 100.0, 4.0, 2, 6);
        assert!(m.iterations_detected() > 0 || !samples.is_empty());
    }

    #[test]
    fn single_loop_period_works() {
        // An application whose iteration is one big parallel loop.
        let mut m = BinaryMonitor::new(SelfAnalyzer::default());
        let mut samples = Vec::new();
        for i in 0..10 {
            if let Some(s) = m.on_parallel_loop(0xAB, t(i as f64 * 2.0), 2) {
                samples.push(s);
            }
        }
        assert_eq!(m.period(), Some(1));
        assert!(!samples.is_empty());
    }
}
