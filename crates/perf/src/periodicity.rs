//! Dynamic Periodicity Detector.
//!
//! When an application's source is unavailable, the NANOS tools inject the
//! SelfAnalyzer with a dynamic interposition tool and detect the iterative
//! structure at runtime: the Dynamic Periodicity Detector (Freitag et al.,
//! IPDPS 2001) "receives as input the sequence of parallel loops executed
//! (the address of the encapsulated loop), and generates a Boolean
//! indicating if it corresponds with the initial period of a loop or not"
//! (§3.1).
//!
//! [`PeriodicityDetector`] reproduces that interface: push loop identifiers
//! one at a time; the detector reports whether the identifier just pushed
//! starts a new period of the detected cycle.

/// Online detector of periodic patterns in a symbol stream.
///
/// # Examples
///
/// ```
/// use pdpa_perf::PeriodicityDetector;
///
/// let mut detector = PeriodicityDetector::default();
/// // An application executing parallel loops A, B, C per outer iteration:
/// for _ in 0..4 {
///     for addr in [0xA, 0xB, 0xC] {
///         detector.push(addr);
///     }
/// }
/// assert_eq!(detector.period(), Some(3));
/// ```
#[derive(Clone, Debug)]
pub struct PeriodicityDetector {
    /// Recent symbols, newest last, bounded by `window`.
    recent: Vec<u64>,
    /// Maximum remembered history (bounds the detectable period).
    window: usize,
    /// Currently detected period length, if any.
    period: Option<usize>,
    /// Position (symbols seen) at which the current period was confirmed.
    confirmed_at: usize,
    seen: usize,
}

impl PeriodicityDetector {
    /// Minimum repetitions of a candidate period before it is confirmed.
    const MIN_REPEATS: usize = 2;

    /// Creates a detector able to find periods up to `window / 2` symbols
    /// long.
    ///
    /// # Panics
    ///
    /// Panics if `window < 4` (nothing could ever repeat twice).
    pub fn new(window: usize) -> Self {
        assert!(window >= 4, "window too small to detect any period");
        PeriodicityDetector {
            recent: Vec::with_capacity(window),
            window,
            period: None,
            confirmed_at: 0,
            seen: 0,
        }
    }

    /// The currently detected period length, if any.
    pub fn period(&self) -> Option<usize> {
        self.period
    }

    /// Total symbols pushed.
    pub fn symbols_seen(&self) -> usize {
        self.seen
    }

    /// Pushes the next executed loop identifier. Returns `true` when this
    /// symbol *starts* a period of the detected cycle.
    pub fn push(&mut self, symbol: u64) -> bool {
        if self.recent.len() == self.window {
            self.recent.remove(0);
        }
        self.recent.push(symbol);
        self.seen += 1;
        self.redetect();
        match self.period {
            Some(p) => (self.seen - self.confirmed_at).is_multiple_of(p),
            None => false,
        }
    }

    /// Re-examines the recent history for the smallest period that repeats
    /// at least [`Self::MIN_REPEATS`] times at the tail of the stream.
    fn redetect(&mut self) {
        let n = self.recent.len();
        let found = (1..=n / Self::MIN_REPEATS).find(|&p| self.tail_has_period(p));
        match (found, self.period) {
            (Some(p), Some(cur)) if p == cur => {
                // Stable detection; keep the original phase.
            }
            (Some(p), _) => {
                self.period = Some(p);
                // Phase: the current symbol ends a full repetition, so the
                // next period starts p symbols from now; anchor the phase so
                // that (seen - confirmed_at) % p == 0 right now.
                self.confirmed_at = self.seen;
            }
            (None, _) => {
                self.period = None;
            }
        }
    }

    /// True if the last `MIN_REPEATS * p` symbols repeat with period `p`.
    fn tail_has_period(&self, p: usize) -> bool {
        let need = p * Self::MIN_REPEATS;
        let n = self.recent.len();
        if n < need {
            return false;
        }
        let tail = &self.recent[n - need..];
        tail.iter().zip(tail.iter().skip(p)).all(|(a, b)| a == b)
    }
}

impl Default for PeriodicityDetector {
    /// A 64-symbol window: periods up to 32 parallel loops per iteration,
    /// which covers the paper's applications comfortably.
    fn default() -> Self {
        PeriodicityDetector::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds `pattern` repeated `times` times; returns the push results.
    fn feed(det: &mut PeriodicityDetector, pattern: &[u64], times: usize) -> Vec<bool> {
        let mut out = Vec::new();
        for _ in 0..times {
            for &s in pattern {
                out.push(det.push(s));
            }
        }
        out
    }

    #[test]
    fn no_period_in_random_stream() {
        let mut det = PeriodicityDetector::default();
        for s in [1u64, 7, 3, 9, 2, 8, 4, 6, 5, 11, 13, 17] {
            det.push(s);
        }
        assert_eq!(det.period(), None);
    }

    #[test]
    fn detects_simple_cycle() {
        let mut det = PeriodicityDetector::default();
        feed(&mut det, &[10, 20, 30], 4);
        assert_eq!(det.period(), Some(3));
    }

    #[test]
    fn constant_stream_has_period_one() {
        let mut det = PeriodicityDetector::default();
        feed(&mut det, &[5], 8);
        assert_eq!(det.period(), Some(1));
    }

    #[test]
    fn period_start_flags_every_cycle() {
        let mut det = PeriodicityDetector::default();
        // After confirmation, the start flag must fire once per 3 symbols.
        let flags = feed(&mut det, &[10, 20, 30], 8);
        let fires: Vec<usize> = flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect();
        assert!(fires.len() >= 4, "flags fired at {fires:?}");
        for pair in fires.windows(2) {
            assert_eq!(pair[1] - pair[0], 3, "fires every period: {fires:?}");
        }
    }

    #[test]
    fn nested_structure_detects_outer_period() {
        // An iteration executing loops A B A C repeats with period 4 even
        // though A recurs inside; the detector must find the smallest true
        // period, not be fooled by the inner repetition.
        let mut det = PeriodicityDetector::default();
        feed(&mut det, &[1, 2, 1, 3], 6);
        assert_eq!(det.period(), Some(4));
    }

    #[test]
    fn prefix_noise_is_forgotten() {
        let mut det = PeriodicityDetector::new(16);
        // Startup code (no period), then a steady iteration pattern.
        for s in [99, 98, 97] {
            det.push(s);
        }
        feed(&mut det, &[4, 5], 8);
        assert_eq!(det.period(), Some(2));
    }

    #[test]
    fn pattern_change_redetects() {
        let mut det = PeriodicityDetector::new(8);
        feed(&mut det, &[1, 2], 4);
        assert_eq!(det.period(), Some(2));
        // The application switches to a different parallel region.
        feed(&mut det, &[7, 8, 9], 4);
        assert_eq!(det.period(), Some(3));
    }

    #[test]
    fn period_longer_than_half_window_is_invisible() {
        let mut det = PeriodicityDetector::new(8);
        // Period 5 cannot repeat twice inside an 8-symbol window.
        feed(&mut det, &[1, 2, 3, 4, 5], 4);
        assert_eq!(det.period(), None);
    }
}
