//! Runtime performance analysis: the NANOS *SelfAnalyzer* and friends.
//!
//! The paper's scheduler never sees an application's true speedup curve; it
//! sees estimates produced at runtime by the SelfAnalyzer library (§3.1),
//! which exploits the iterative structure of scientific codes:
//!
//! 1. the first few iterations of the outer loop run on a small *baseline*
//!    number of processors, giving a reference time;
//! 2. every later iteration is timed under the allocated `P` processors and
//!    the speedup is estimated as `time_baseline / time_P`, normalized by an
//!    *Amdahl factor* that accounts for the baseline itself not being the
//!    one-processor time.
//!
//! This crate implements:
//!
//! - [`SelfAnalyzer`] — the per-application estimator described above;
//! - [`PerfHistory`] — the recent-past memory PDPA keeps per application
//!   ("it remembers the last processor allocations different from the
//!   current one and the efficiency achieved with them", §4.1);
//! - [`EfficiencyEstimator`] — the Amdahl-fit extrapolation used by the
//!   Equal_efficiency baseline policy;
//! - [`PeriodicityDetector`] — the Dynamic Periodicity Detector used to find
//!   the iterative structure when only a binary is available;
//! - [`BinaryMonitor`] — the full dynamic-interposition pipeline: a loop
//!   stream goes in, detected iterations are timed, estimates come out.

pub mod estimator;
pub mod history;
pub mod injection;
pub mod periodicity;
pub mod selfanalyzer;

pub use estimator::EfficiencyEstimator;
pub use history::{HistoryEntry, PerfHistory};
pub use injection::BinaryMonitor;
pub use periodicity::PeriodicityDetector;
pub use selfanalyzer::{PerfSample, SelfAnalyzer, SelfAnalyzerConfig};
