//! Quick smoke run of all four policies on the paper workloads
//! (internal calibration check).
use pdpa_apps::AppClass;
use pdpa_core::Pdpa;
use pdpa_engine::{Engine, EngineConfig};
use pdpa_policies::{EqualEfficiency, Equipartition, IrixLike, SchedulingPolicy};
use pdpa_qs::Workload;

fn main() {
    for wl in [Workload::W1, Workload::W2, Workload::W3, Workload::W4] {
        for load in [0.6, 1.0] {
            for name in ["IRIX", "Equip", "Equal_eff", "PDPA"] {
                let policy: Box<dyn SchedulingPolicy> = match name {
                    "IRIX" => Box::new(IrixLike::paper_default()),
                    "Equip" => Box::new(Equipartition::default()),
                    "Equal_eff" => Box::new(EqualEfficiency::paper_default()),
                    _ => Box::new(Pdpa::paper_default()),
                };
                let jobs = wl.build(load, 42);
                let n = jobs.len();
                let r = Engine::new(EngineConfig::default()).run(jobs, policy);
                print!(
                    "{wl} load={load} {name:<10} jobs={n} done={} end={:>5.0} maxML={:<3}",
                    r.completed_all, r.end_secs, r.max_ml
                );
                for class in AppClass::ALL {
                    if let Some(c) = r.summary.class_averages(class) {
                        print!(
                            " {}[r={:>4.0} x={:>4.0} p={:>4.1}]",
                            class.name(),
                            c.avg_response_secs,
                            c.avg_execution_secs,
                            r.avg_alloc_by_class.get(&class).copied().unwrap_or(0.0)
                        );
                    }
                }
                println!();
            }
            println!();
        }
    }
}
