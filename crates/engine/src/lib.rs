//! The workload execution engine.
//!
//! This crate plays the role of the machine plus the enforcement half of the
//! NANOS Resource Manager: it executes a workload of malleable iterative
//! applications on the simulated CC-NUMA machine under a
//! [`pdpa_policies::SchedulingPolicy`], coordinating
//!
//! - the **queuing system** (`pdpa-qs`): arrivals enter the FCFS queue; the
//!   policy decides *when* the head job may start (§4.3);
//! - the **applications** (`pdpa-apps`): progress advances at
//!   `S(p)/T₁` iterations per second under the current allocation, with
//!   reallocation penalties charged as progress debt;
//! - the **SelfAnalyzer** (`pdpa-perf`): each completed iteration is timed
//!   (with measurement noise) and the resulting speedup estimate is
//!   reported to the policy;
//! - the **tracer** (`pdpa-trace`): per-CPU occupancy is recorded for the
//!   Fig. 5 views and Table 2 statistics.
//!
//! Space-sharing policies get dedicated cpusets from the machine model;
//! the IRIX-like baseline instead declares
//! [`pdpa_policies::SharingModel::TimeShared`] and runs under the
//! per-quantum time-sharing model in [`timeshare`].
//!
//! # Example
//!
//! ```
//! use pdpa_core::Pdpa;
//! use pdpa_engine::{Engine, EngineConfig};
//! use pdpa_qs::Workload;
//!
//! let jobs = Workload::W3.build(0.6, 42);
//! let result = Engine::new(EngineConfig::default())
//!     .run(jobs, Box::new(Pdpa::paper_default()));
//! assert!(result.completed_all);
//! ```

pub mod config;
pub mod engine;
pub mod instrument;
pub mod result;
pub mod session;
pub mod shard;
pub mod store;
pub mod timeshare;

pub use config::EngineConfig;
pub use engine::{CancelOutcome, Engine};
pub use instrument::Instrumentation;
pub use result::RunResult;
pub use session::EngineSession;
pub use store::JobStore;
