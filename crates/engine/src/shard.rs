//! Epoch-parallel sharded execution of space-shared runs.
//!
//! The classic engine ([`crate::engine`]) interleaves every event through
//! one queue and activates the policy the instant each iteration ends.
//! That is faithful to the paper's NANOS resource manager but strictly
//! sequential: every event depends on the one before it.
//!
//! The sharded engine trades *immediacy* for *parallelism* while keeping
//! the result **independent of the shard count**. Jobs are partitioned
//! over `N` shards by id; each shard owns its jobs' SoA [`JobStore`] and
//! iteration-end queue. Simulation advances in rounds to a barrier time
//!
//! ```text
//! B = min( next global event,  max(clock + epoch, next iteration end) )
//! ```
//!
//! Within a round every shard advances its own jobs to `B` in parallel —
//! valid under space sharing because a job's progress rate depends only
//! on its own allocation, which policies can change only at barriers.
//! Measurements and completions are buffered as *items*, merged at the
//! barrier in deterministic `(time, job)` order, and replayed in two
//! passes: pass A publishes measurements/completions at their true
//! times; pass B (at `B`) feeds samples to the policy, applies decisions,
//! and admits jobs. Global events — arrivals, faults, retries — are
//! handled exactly at their timestamps because `B` never jumps past one.
//!
//! Two semantic deltas from the classic engine, both shard-count
//! invariant:
//!
//! - policy activations are batched at barriers instead of firing
//!   mid-epoch (decisions land at most one epoch late);
//! - timing noise is drawn from a per-job stream derived from
//!   `(seed, job, attempt)` ([`job_noise_rng`]) instead of one shared
//!   stream, so a job's noise cannot depend on which shard — or which
//!   other jobs — it ran beside.
//!
//! The machine model stays with the coordinator: placement must not
//! depend on the shard count, so processors are never range-partitioned
//! across shards.

use std::collections::HashMap;
use std::sync::Arc;

use pdpa_apps::{AppClass, NoiseModel};
use pdpa_metrics::{JobOutcome, Summary};
use pdpa_obs::metrics::{Histogram, Registry, RunCounters, Span};
use pdpa_obs::{DecisionTrigger, NullObserver, ObsEvent, Observer};
use pdpa_perf::{PerfSample, SelfAnalyzer};
use pdpa_policies::{Decisions, JobView, PolicyCtx, SchedulingPolicy, SharingModel};
use pdpa_prof::{
    HealthSnapshot, Heartbeat, HeartbeatSink, Lane, Profiler, ProgressSink, SpanKind,
    StderrHeartbeat, Watchdog,
};
use pdpa_qs::JobSpec;
use pdpa_qs::QueueSystem;
use pdpa_sim::{AdaptiveQueue, CpuId, EventQueue, JobId, Machine, SimDuration, SimTime};
use pdpa_trace::TraceObserver;

use crate::config::EngineConfig;
use crate::instrument::Instrumentation;
use crate::result::RunResult;
use crate::store::{job_noise_rng, JobStore};
use crate::Engine;

/// Default barrier epoch in simulated seconds.
pub const DEFAULT_EPOCH_SECS: f64 = 10.0;

/// Coordinator-owned (global) events. These are exact: the barrier never
/// jumps past one.
#[derive(Clone, Copy, Debug)]
enum GEv {
    Arrival(JobId),
    CpuFail(CpuId),
    CpuRecover(CpuId),
    JobKill(JobId),
    JobRetry(JobId),
}

/// What happened to one job inside a round, buffered for the barrier.
#[derive(Clone, Copy, Debug)]
struct Item {
    at: SimTime,
    job: JobId,
    kind: ItemKind,
}

#[derive(Clone, Copy, Debug)]
enum ItemKind {
    /// A clean iteration was measured (sample present once the
    /// SelfAnalyzer has an estimate).
    Iter {
        procs: usize,
        measured_secs: f64,
        sample: Option<PerfSample>,
    },
    /// The job crossed its final iteration boundary.
    Complete,
}

/// One shard: a disjoint subset of the running jobs and their pending
/// iteration-end predictions.
struct Shard {
    store: JobStore,
    /// Iteration-end predictions, keyed by job id (lazy invalidation).
    queue: AdaptiveQueue<JobId>,
    /// Items produced by the current round, in emission order.
    items: Vec<Item>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            store: JobStore::new(),
            queue: AdaptiveQueue::new(),
            items: Vec::new(),
        }
    }

    /// Recomputes a job's rate. Space sharing only: the rate is a pure
    /// function of the job's own state, which is what makes the shard
    /// advance embarrassingly parallel.
    fn recompute_rate(&mut self, job: JobId) {
        let eff = self.store.effective_procs(job) as f64;
        self.store.set_rate_from(job, eff, 1.0);
    }

    /// Invalidates the job's pending prediction and schedules a fresh one
    /// from `now` at the current rate.
    fn reschedule(&mut self, job: JobId, now: SimTime) {
        let key = u64::from(job.0);
        self.queue.invalidate_key(key);
        if self.store.is_complete(job) {
            self.queue.push_keyed(now, key, job);
        } else if let Some(dt) = self.store.time_to_iteration_end(job) {
            // Same sub-ULP guard as the classic engine's `reschedule`: a
            // remainder below the clock's float resolution would pin the
            // prediction to `now` and livelock the advance loop.
            let mut at = now + dt;
            if at == now {
                at = now.next_up();
            }
            self.queue.push_keyed(at, key, job);
        }
    }

    /// Advances all owned jobs to the barrier `b`, buffering measurement
    /// and completion items. Runs without any shared state; `lane` is this
    /// shard's private span buffer (disabled lanes record nothing).
    fn advance_round(
        &mut self,
        b: SimTime,
        config: &EngineConfig,
        noise: &NoiseModel,
        lane: &mut Lane,
    ) {
        let prof = lane.begin(SpanKind::ShardAdvance);
        let popped_before = self.queue.total_popped();
        // `peek_time` may surface a stale (invalidated) head; pop
        // discards stales, so re-check the popped entry's time and
        // push it back if the live head lies beyond the barrier.
        while let Some(t) = self.queue.peek_time() {
            if t > b {
                break;
            }
            let Some((at, job)) = self.queue.pop() else {
                break;
            };
            if at > b {
                self.queue.push_keyed(at, u64::from(job.0), job);
                break;
            }
            self.iter_end(at, job, config, noise);
        }
        lane.add_events(self.queue.total_popped() - popped_before);
        lane.end(prof);
    }

    /// The shard-local half of the classic engine's `on_iter_end`:
    /// advance, measure (per-job noise stream), feed the SelfAnalyzer,
    /// buffer the outcome. Policy reactions wait for the barrier.
    fn iter_end(&mut self, at: SimTime, job: JobId, config: &EngineConfig, noise: &NoiseModel) {
        let crossed = self.store.advance_to(job, at);
        let mut sample = None;
        let mut meta: Option<(usize, f64)> = None;
        if crossed > 0 {
            if self.store.iter_polluted(job) {
                // Mixed-allocation iteration: restart the window, report
                // nothing.
                self.store.set_iter_polluted(job, false);
                self.store.set_iter_started_at(job, at);
            } else {
                let truth = at.since(self.store.iter_started_at(job));
                let per_iter = truth / crossed as f64;
                self.store.set_iter_started_at(job, at);
                let procs = self.store.effective_procs(job);
                let measured = noise.perturb(per_iter, self.store.rng_mut(job));
                sample = self.store.record_iteration(job, procs, measured);
                meta = Some((procs, measured.as_secs()));
            }
            // Working-set phase change: reset after recording (§3.1).
            if config.reset_analyzer_on_phase_change {
                if let Some(pc) = self.store.phase_change(job) {
                    let done = self.store.iterations_done(job);
                    if done >= pc.at_iteration && done - crossed < pc.at_iteration {
                        self.store.reset_analyzer(job);
                        sample = None;
                    }
                }
            }
        }
        if let Some((procs, measured_secs)) = meta {
            self.items.push(Item {
                at,
                job,
                kind: ItemKind::Iter {
                    procs,
                    measured_secs,
                    sample,
                },
            });
        }
        if self.store.is_complete(job) {
            self.items.push(Item {
                at,
                job,
                kind: ItemKind::Complete,
            });
            self.queue.invalidate_key(u64::from(job.0));
        } else {
            if crossed > 0 {
                // The analyzer phase may have flipped (baseline →
                // measuring), shifting the effective processors.
                self.recompute_rate(job);
            }
            self.reschedule(job, at);
        }
    }
}

impl Engine {
    /// Runs `jobs` under `policy` on `shards` epoch-synchronized shards.
    /// The result is identical for every `shards >= 1` (deterministic
    /// cross-shard merge); larger shard counts only add parallelism.
    ///
    /// # Panics
    ///
    /// Panics unless the policy declares
    /// [`SharingModel::SpaceShared`] — shard-parallel advance relies on
    /// per-job progress rates, which time-shared models do not have.
    pub fn run_sharded(
        &self,
        jobs: Vec<JobSpec>,
        policy: Box<dyn SchedulingPolicy>,
        shards: usize,
    ) -> RunResult {
        self.run_sharded_observed(jobs, policy, shards, DEFAULT_EPOCH_SECS, &mut NullObserver)
    }

    /// [`run_sharded`](Engine::run_sharded) with an explicit barrier
    /// epoch (simulated seconds) and an observer for the event stream.
    pub fn run_sharded_observed(
        &self,
        jobs: Vec<JobSpec>,
        policy: Box<dyn SchedulingPolicy>,
        shards: usize,
        epoch_secs: f64,
        observer: &mut dyn Observer,
    ) -> RunResult {
        self.run_sharded_instrumented(
            jobs,
            policy,
            shards,
            epoch_secs,
            observer,
            Instrumentation::none(),
        )
    }

    /// [`run_sharded_observed`](Engine::run_sharded_observed) with
    /// optional runtime instrumentation — span profiling with one lane
    /// per shard (`RunResult::profile`), a zero-progress watchdog counted
    /// in barrier rounds (`RunResult::watchdog`), and heartbeat lines on
    /// stderr. With [`Instrumentation::none`] every touch point is a dead
    /// branch — the decision-event stream is bit-identical either way.
    pub fn run_sharded_instrumented(
        &self,
        jobs: Vec<JobSpec>,
        mut policy: Box<dyn SchedulingPolicy>,
        shards: usize,
        epoch_secs: f64,
        observer: &mut dyn Observer,
        instr: Instrumentation,
    ) -> RunResult {
        assert!(
            matches!(policy.sharing(), SharingModel::SpaceShared),
            "sharded execution supports space-sharing policies only"
        );
        assert!(
            epoch_secs > 0.0 && epoch_secs.is_finite(),
            "epoch must be positive"
        );
        let mut sim = ShardedSim::new(
            self.config(),
            jobs,
            shards.max(1),
            epoch_secs,
            observer,
            instr,
        );
        sim.schedule_globals();
        sim.drive(policy.as_mut());
        sim.into_result(policy.name())
    }
}

/// All mutable state of one sharded run.
struct ShardedSim<'a> {
    config: &'a EngineConfig,
    qs: QueueSystem,
    machine: Machine,
    globals: EventQueue<GEv>,
    shards: Vec<Shard>,
    noise: NoiseModel,
    clock: SimTime,
    epoch: SimDuration,
    /// Running jobs in global admission order (policy context ordering —
    /// each shard only knows its own arrival order).
    admit_order: Vec<JobId>,
    views_scratch: Vec<JobView>,
    outcomes: Vec<JobOutcome>,
    completed_allocs: Vec<(AppClass, f64)>,
    completed_alloc_by_job: HashMap<JobId, f64>,
    cpu_seconds_used: f64,
    trace_obs: TraceObserver,
    trace_on: bool,
    obs: &'a mut dyn Observer,
    obs_on: bool,
    changes_scratch: Vec<(JobId, usize)>,
    decisions_applied: u64,
    memo_hits: u64,
    memo_misses: u64,
    decision_hist: Arc<Histogram>,
    ml_series: Vec<(f64, usize)>,
    max_ml: usize,
    retries: HashMap<JobId, u32>,
    cpu_failures: u64,
    job_retries: u64,
    jobs_failed: u64,
    /// Span buffers: lane 0 is the coordinator, lanes `1..=N` the shards.
    /// Disabled lanes (the default) record nothing.
    prof: Profiler,
    watchdog: Option<Watchdog>,
    heartbeat: Option<Heartbeat>,
    heartbeat_sink: Arc<dyn HeartbeatSink>,
    tap: Option<Arc<dyn ProgressSink>>,
    /// Set when the watchdog aborted the barrier loop.
    watchdog_diag: Option<String>,
}

impl<'a> ShardedSim<'a> {
    fn new(
        config: &'a EngineConfig,
        jobs: Vec<JobSpec>,
        shards: usize,
        epoch_secs: f64,
        obs: &'a mut dyn Observer,
        instr: Instrumentation,
    ) -> Self {
        let trace_obs = if config.collect_trace {
            TraceObserver::new(config.cpus)
        } else {
            TraceObserver::disabled(config.cpus)
        };
        let obs_on = obs.is_enabled();
        ShardedSim {
            config,
            qs: QueueSystem::new(jobs),
            machine: Machine::new(config.cpus),
            globals: EventQueue::new(),
            shards: (0..shards).map(|_| Shard::new()).collect(),
            noise: if config.noise_sigma == 0.0 {
                NoiseModel::none()
            } else {
                NoiseModel::new(config.noise_sigma)
            },
            clock: SimTime::ZERO,
            epoch: SimDuration::from_secs(epoch_secs),
            admit_order: Vec::new(),
            views_scratch: Vec::new(),
            outcomes: Vec::new(),
            completed_allocs: Vec::new(),
            completed_alloc_by_job: HashMap::new(),
            cpu_seconds_used: 0.0,
            trace_on: config.collect_trace,
            trace_obs,
            obs,
            obs_on,
            changes_scratch: Vec::new(),
            decisions_applied: 0,
            memo_hits: 0,
            memo_misses: 0,
            decision_hist: Registry::global().histogram("decision_ns"),
            ml_series: vec![(0.0, 0)],
            max_ml: 0,
            retries: HashMap::new(),
            cpu_failures: 0,
            job_retries: 0,
            jobs_failed: 0,
            prof: if instr.profile {
                Profiler::enabled(shards + 1)
            } else {
                Profiler::disabled(shards + 1)
            },
            watchdog: instr.watchdog.map(Watchdog::new),
            heartbeat: instr.heartbeat.map(Heartbeat::new),
            heartbeat_sink: instr
                .heartbeat_sink
                .unwrap_or_else(|| Arc::new(StderrHeartbeat)),
            tap: instr.tap,
            watchdog_diag: None,
        }
    }

    fn shard_index(&self, job: JobId) -> usize {
        job.0 as usize % self.shards.len()
    }

    fn shard_of(&self, job: JobId) -> &Shard {
        &self.shards[self.shard_index(job)]
    }

    fn shard_of_mut(&mut self, job: JobId) -> &mut Shard {
        let i = self.shard_index(job);
        &mut self.shards[i]
    }

    fn contains(&self, job: JobId) -> bool {
        self.shard_of(job).store.contains(job)
    }

    fn schedule_globals(&mut self) {
        let subs: Vec<(SimTime, GEv)> = self
            .qs
            .submissions()
            .map(|(id, spec)| (spec.submit, GEv::Arrival(id)))
            .collect();
        self.globals.push_batch(subs);
        for f in &self.config.faults.cpu_faults {
            self.globals.push(f.at, GEv::CpuFail(f.cpu));
            if let Some(r) = f.recover_at {
                self.globals.push(r, GEv::CpuRecover(f.cpu));
            }
        }
        for f in &self.config.faults.job_faults {
            self.globals.push(f.at, GEv::JobKill(f.job));
        }
    }

    // --- Event publication (same contract as the classic engine) ---

    #[inline]
    fn publish(&mut self, ev: ObsEvent) {
        if self.trace_on {
            self.trace_obs.on_event(self.clock, &ev);
        }
        if self.obs_on {
            self.obs.on_event(self.clock, &ev);
        }
    }

    #[inline]
    fn publish_cpu(&mut self, cpu: CpuId, job: Option<JobId>) {
        if self.trace_on || self.obs_on {
            self.publish(ObsEvent::CpuAssigned { cpu, job });
        }
    }

    fn refresh_views(&mut self) {
        self.views_scratch.clear();
        for i in 0..self.admit_order.len() {
            let job = self.admit_order[i];
            let view = self.shard_of(job).store.view_of(job);
            self.views_scratch.push(view);
        }
    }

    fn record_ml(&mut self) {
        let ml: usize = self.shards.iter().map(|s| s.store.len()).sum();
        self.max_ml = self.max_ml.max(ml);
        self.ml_series.push((self.clock.as_secs(), ml));
        if self.obs_on {
            let total_alloc = self.shards.iter().map(|s| s.store.total_allocated()).sum();
            self.publish(ObsEvent::MplChanged {
                running: ml,
                total_alloc,
            });
        }
    }

    fn ctx<'v>(&self, views: &'v [JobView]) -> PolicyCtx<'v> {
        PolicyCtx {
            now: self.clock,
            total_cpus: self.machine.alive_cpus(),
            free_cpus: self.machine.free_cpus(),
            jobs: views,
            queued_jobs: self.qs.waiting_count(),
            next_request: self.qs.head().map(|id| self.qs.spec(id).app.request),
        }
    }

    // --- The barrier loop ---

    fn drive(&mut self, policy: &mut dyn SchedulingPolicy) {
        let replay = self.prof.lane(0).begin(SpanKind::Replay);
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            let barrier_prof = self.prof.lane(0).begin(SpanKind::BarrierCompute);
            let next_global = self.globals.peek_time();
            // Minimum over all shard queue heads. A stale head only
            // shrinks the round — every entry it hides is popped (and
            // discarded) inside `advance_round`, so progress holds.
            let next_iter = self.shards.iter().filter_map(|s| s.queue.peek_time()).min();
            let inner = next_iter.map(|t| t.max(self.clock + self.epoch));
            let b = match (next_global, inner) {
                (Some(g), Some(i)) => g.min(i),
                (Some(g), None) => g,
                (None, Some(i)) => i,
                // No globals, no predictions: nothing can ever happen
                // again (any running jobs are permanently stalled).
                (None, None) => {
                    self.prof.lane(0).end(barrier_prof);
                    break;
                }
            };
            self.prof.lane(0).end(barrier_prof);
            if b.as_secs() > self.config.max_sim_secs {
                break;
            }
            // Steps are barrier rounds here: a barrier pinned to one
            // instant for thousands of rounds means the advance loop is
            // livelocked (e.g. a failed `next_up` guard).
            if let Some(wd) = self.watchdog.as_mut() {
                if wd.observe(b.as_secs()) {
                    let qlen: usize = self.shards.iter().map(|s| s.queue.len()).sum();
                    let running: usize = self.shards.iter().map(|s| s.store.len()).sum();
                    let diag = wd.diagnostic(&format!(
                        "sharded engine: shards={}, running={}, waiting={}, qlen={}",
                        self.shards.len(),
                        running,
                        self.qs.waiting_count(),
                        qlen,
                    ));
                    if let Some(tap) = self.tap.as_deref() {
                        tap.watchdog_fired(&diag);
                    }
                    self.watchdog_diag = Some(diag);
                    break;
                }
            }
            // Build one snapshot feeding both the heartbeat line and the
            // live tap. The tap refresh is amortized over barrier rounds
            // so `--serve` stays inside the ≤2% overhead bound.
            if self.heartbeat.is_some() || self.tap.is_some() {
                let hb_due = self.heartbeat.as_ref().is_some_and(Heartbeat::due);
                let tap_due = self.tap.is_some() && rounds & 0xFF == 0;
                if hb_due || tap_due {
                    let snap = self.health_snapshot();
                    if let Some(tap) = self.tap.as_deref() {
                        tap.progress(&snap);
                    }
                    if hb_due {
                        if let Some(line) = self.heartbeat.as_mut().and_then(|hb| hb.tick(&snap)) {
                            self.heartbeat_sink.emit(&line, &snap);
                        }
                    }
                }
            }
            let round_prof = self.prof.lane(0).begin(SpanKind::Round);
            self.round(b, policy);
            self.prof.lane(0).end(round_prof);
        }
        self.prof.lane(0).end(replay);
        if let Some(tap) = self.tap.clone() {
            // Final refresh so the mirror's counters reflect the whole run.
            tap.progress(&self.health_snapshot());
        }
    }

    /// The current health picture: clock, event totals, queue depth, and
    /// per-shard popped counts (for imbalance diagnostics).
    fn health_snapshot(&self) -> HealthSnapshot {
        let shard_events: Vec<u64> = self.shards.iter().map(|s| s.queue.total_popped()).collect();
        let events_popped = self.globals.total_popped() + shard_events.iter().sum::<u64>();
        HealthSnapshot {
            sim_clock_secs: self.clock.as_secs(),
            events_popped,
            queue_len: self.globals.len()
                + self.shards.iter().map(|s| s.queue.len()).sum::<usize>(),
            running: self.shards.iter().map(|s| s.store.len()).sum(),
            waiting: self.qs.waiting_count(),
            shard_events,
        }
    }

    /// One epoch round: parallel shard advance to `b`, then the
    /// deterministic barrier merge.
    fn round(&mut self, b: SimTime, policy: &mut dyn SchedulingPolicy) {
        // Parallel phase: each shard owns disjoint state; the coordinator
        // (machine, queue system, policy) is untouched. Lane `i + 1` of
        // the profiler travels into shard `i`'s worker thread.
        {
            let config = self.config;
            let noise = &self.noise;
            let lanes = &mut self.prof.lanes_mut()[1..];
            if self.shards.len() == 1 {
                self.shards[0].advance_round(b, config, noise, &mut lanes[0]);
            } else {
                std::thread::scope(|scope| {
                    for (shard, lane) in self.shards.iter_mut().zip(lanes.iter_mut()) {
                        scope.spawn(move || shard.advance_round(b, config, noise, lane));
                    }
                });
            }
        }

        // Merge: stable sort by (time, job). Items of one job come from
        // exactly one shard in emission order, so the merged order is a
        // pure function of the item set — independent of the partition.
        let merge_prof = self.prof.lane(0).begin(SpanKind::Merge);
        let mut items: Vec<Item> = Vec::new();
        for shard in &mut self.shards {
            items.append(&mut shard.items);
        }
        items.sort_by_key(|it| (it.at, it.job.0));
        self.prof.lane(0).end(merge_prof);
        let publish_prof = self.prof.lane(0).begin(SpanKind::Publish);

        // Pass A: publish measurements and record completions at their
        // true times (the observer stream stays monotonic: item times are
        // <= b, and pass B stamps everything at b).
        for it in &items {
            self.clock = it.at;
            match it.kind {
                ItemKind::Iter {
                    procs,
                    measured_secs,
                    sample,
                } => {
                    if self.obs_on {
                        self.publish(ObsEvent::IterationMeasured {
                            job: it.job,
                            procs,
                            iter_secs: measured_secs,
                            speedup: sample.as_ref().map_or(0.0, |s| s.speedup),
                            efficiency: sample.as_ref().map_or(0.0, |s| s.efficiency),
                            estimated: sample.is_some(),
                        });
                    }
                }
                ItemKind::Complete => self.finish_job(it.job),
            }
        }

        // Globals land exactly at b (the barrier never jumps past one).
        self.clock = b;
        while self.globals.peek_time() == Some(b) {
            let (_, ev) = self.globals.pop().expect("peeked");
            match ev {
                GEv::Arrival(job) => {
                    self.qs.arrive(job);
                    if self.obs_on {
                        self.publish(ObsEvent::JobSubmitted { job });
                    }
                    self.try_admit(policy);
                }
                GEv::CpuFail(cpu) => self.on_cpu_fail(cpu, policy),
                GEv::CpuRecover(cpu) => self.on_cpu_recover(cpu, policy),
                GEv::JobKill(job) => self.on_job_kill(job, policy),
                GEv::JobRetry(job) => {
                    self.qs.requeue(job);
                    self.try_admit(policy);
                }
            }
        }

        // Pass B: policy reactions, in the same merged order, all at b.
        for it in &items {
            match it.kind {
                ItemKind::Iter {
                    sample: Some(s), ..
                } => {
                    // Skip jobs that completed in pass A or were killed
                    // at the barrier — the view no longer contains them.
                    if !self.contains(it.job) {
                        continue;
                    }
                    self.refresh_views();
                    let views = std::mem::take(&mut self.views_scratch);
                    let prof = self.prof.lane(0).begin(SpanKind::PolicyDecision);
                    let decisions = {
                        let _span = Span::start(Arc::clone(&self.decision_hist));
                        policy.on_performance_report(&self.ctx(&views), it.job, s)
                    };
                    self.prof.lane(0).end(prof);
                    self.views_scratch = views;
                    self.apply_decisions(decisions, DecisionTrigger::Report, policy);
                    self.try_admit(policy);
                }
                ItemKind::Iter { .. } => {}
                ItemKind::Complete => {
                    self.refresh_views();
                    let views = std::mem::take(&mut self.views_scratch);
                    let prof = self.prof.lane(0).begin(SpanKind::PolicyDecision);
                    let decisions = {
                        let _span = Span::start(Arc::clone(&self.decision_hist));
                        policy.on_job_completion(&self.ctx(&views), it.job)
                    };
                    self.prof.lane(0).end(prof);
                    self.views_scratch = views;
                    self.apply_decisions(decisions, DecisionTrigger::Completion, policy);
                    self.try_admit(policy);
                }
            }
        }
        self.prof.lane(0).end(publish_prof);
    }

    /// Records a completion at the current clock (pass A: the item's true
    /// time). The policy hears about it in pass B.
    fn finish_job(&mut self, job: JobId) {
        let shard = self.shard_of(job);
        let class = shard.store.class(job);
        let avg_alloc = shard.store.average_allocation(job, self.clock);
        let started_at = shard.store.started_at(job);
        self.completed_allocs.push((class, avg_alloc));
        self.completed_alloc_by_job.insert(job, avg_alloc);
        self.cpu_seconds_used += avg_alloc * self.clock.since(started_at).as_secs();
        self.outcomes.push(JobOutcome {
            job,
            class,
            submit: self.qs.spec(job).submit,
            start: started_at,
            end: self.clock,
        });
        if self.obs_on {
            self.publish(ObsEvent::JobFinished { job });
        }
        let released = self.machine.release(job);
        for cpu in released {
            self.publish_cpu(cpu, None);
        }
        let memo = self.shard_of_mut(job).store.remove(job);
        self.memo_hits += memo.hits;
        self.memo_misses += memo.misses;
        self.admit_order.retain(|&id| id != job);
        self.qs.complete(job);
        self.record_ml();
    }

    // --- Admission and decisions (barrier-time) ---

    fn pick_admissible(&self, policy: &dyn SchedulingPolicy, views: &[JobView]) -> Option<JobId> {
        let candidates: Vec<JobId> = if self.config.backfill {
            self.qs.waiting().collect()
        } else {
            self.qs.head().into_iter().collect()
        };
        for job in candidates {
            let mut ctx = self.ctx(views);
            ctx.next_request = Some(self.qs.spec(job).app.request);
            if policy.may_start_new_job(&ctx) {
                return Some(job);
            }
        }
        None
    }

    fn try_admit(&mut self, policy: &mut dyn SchedulingPolicy) {
        loop {
            self.refresh_views();
            let views = std::mem::take(&mut self.views_scratch);
            let picked = self.pick_admissible(policy, &views);
            self.views_scratch = views;
            let Some(job) = picked else {
                return;
            };
            assert!(self.qs.start_specific(job), "picked job is waiting");
            if self.obs_on {
                self.publish(ObsEvent::JobDequeued { job });
            }
            let spec = self.qs.spec(job).app.clone();
            let request = spec.request;
            let analyzer = SelfAnalyzer::new(self.config.analyzer);
            let attempt = self.retries.get(&job).copied().unwrap_or(0);
            let rng = job_noise_rng(self.config.seed, job, attempt);
            let now = self.clock;
            let seed_shard = self.shard_index(job);
            self.shards[seed_shard]
                .store
                .start(job, spec, analyzer, now, rng);
            self.admit_order.push(job);
            if self.obs_on {
                self.publish(ObsEvent::JobStarted { job, request });
            }
            self.record_ml();
            self.refresh_views();
            let views = std::mem::take(&mut self.views_scratch);
            let prof = self.prof.lane(0).begin(SpanKind::PolicyDecision);
            let decisions = {
                let _span = Span::start(Arc::clone(&self.decision_hist));
                policy.on_job_arrival(&self.ctx(&views), job)
            };
            self.prof.lane(0).end(prof);
            self.views_scratch = views;
            self.apply_decisions(decisions, DecisionTrigger::Arrival, policy);
        }
    }

    fn apply_decisions(
        &mut self,
        decisions: Decisions,
        trigger: DecisionTrigger,
        policy: &mut dyn SchedulingPolicy,
    ) {
        if decisions.is_empty() {
            return;
        }
        let Decisions {
            allocations,
            mut transitions,
        } = decisions;
        let mut changes = std::mem::take(&mut self.changes_scratch);
        changes.clear();
        changes.extend(
            allocations
                .into_iter()
                .filter(|(job, _)| self.contains(*job))
                .map(|(job, target)| {
                    let req = self.shard_of(job).store.request(job);
                    (job, target.min(req))
                }),
        );
        // Shrinks first, as in the classic engine.
        changes.sort_by_key(|&(job, target)| {
            let cur = self.shard_of(job).store.allocated(job);
            target > cur
        });
        for &(job, target) in &changes {
            let from_alloc = self.shard_of(job).store.allocated(job);
            if self.apply_one(job, target) {
                self.decisions_applied += 1;
                if self.obs_on {
                    let to_alloc = self.shard_of(job).store.allocated(job);
                    let transition = transitions
                        .iter()
                        .position(|n| n.job == job)
                        .map(|i| transitions.remove(i))
                        .map(|n| (n.from, n.to));
                    self.publish(ObsEvent::Decision {
                        trigger,
                        job,
                        from_alloc,
                        to_alloc,
                        transition,
                    });
                }
            }
        }
        if self.obs_on {
            for n in transitions {
                self.publish(ObsEvent::StateChanged {
                    job: n.job,
                    from: n.from,
                    to: n.to,
                });
            }
        }
        self.changes_scratch = changes;
        let _ = policy;
    }

    /// Applies one resize at the barrier. If advancing the job to the
    /// barrier crossed its final boundary, an immediate prediction is
    /// scheduled so the next round completes it at the barrier time.
    fn apply_one(&mut self, job: JobId, target: usize) -> bool {
        let current = self.machine.allocation(job);
        if current == target {
            return false;
        }
        let now = self.clock;
        self.shard_of_mut(job).store.advance_to(job, now);
        let outcome = self.machine.resize(job, target);
        if outcome.is_noop() {
            return false;
        }
        for cpu in &outcome.gained {
            self.publish_cpu(*cpu, Some(job));
        }
        for cpu in &outcome.lost {
            self.publish_cpu(*cpu, None);
        }
        let penalty = self
            .config
            .cost
            .charge(outcome.gained.len(), outcome.lost.len());
        let new_alloc = self.machine.allocation(job);
        let gained = outcome.gained.len();
        let lost = outcome.lost.len();
        let shard = self.shard_of_mut(job);
        if current > 0 {
            shard.store.charge(job, penalty);
        }
        let eff_before = shard.store.effective_procs(job);
        shard.store.set_allocated(job, new_alloc);
        if current > 0 && shard.store.effective_procs(job) != eff_before {
            shard.store.set_iter_polluted(job, true);
        }
        shard.recompute_rate(job);
        shard.reschedule(job, now);
        if current > 0 && self.obs_on {
            self.publish(ObsEvent::ReallocCost {
                job,
                penalty_secs: penalty.as_secs(),
                gained,
                lost,
            });
        }
        true
    }

    // --- Fault handling (barrier-time globals) ---

    fn drive_capacity_change(&mut self, changed: &[JobId], policy: &mut dyn SchedulingPolicy) {
        if self.obs_on {
            self.publish(ObsEvent::DegradedCapacity {
                alive: self.machine.alive_cpus(),
                total: self.config.cpus,
            });
        }
        self.refresh_views();
        let views = std::mem::take(&mut self.views_scratch);
        let prof = self.prof.lane(0).begin(SpanKind::PolicyDecision);
        let decisions = {
            let _span = Span::start(Arc::clone(&self.decision_hist));
            policy.on_capacity_change(&self.ctx(&views), changed)
        };
        self.prof.lane(0).end(prof);
        self.views_scratch = views;
        self.apply_decisions(decisions, DecisionTrigger::Fault, policy);
    }

    fn on_cpu_fail(&mut self, cpu: CpuId, policy: &mut dyn SchedulingPolicy) {
        if !self.machine.is_alive(cpu) {
            return;
        }
        self.cpu_failures += 1;
        if self.obs_on {
            self.publish(ObsEvent::CpuFailed { cpu });
        }
        let mut changed = Vec::new();
        let victim = self.machine.fail_cpu(cpu);
        if let Some(job) = victim {
            self.publish_cpu(cpu, None);
            let now = self.clock;
            let new_alloc = self.machine.allocation(job);
            let shard = self.shard_of_mut(job);
            shard.store.advance_to(job, now);
            let eff_before = shard.store.effective_procs(job);
            shard.store.set_allocated(job, new_alloc);
            if shard.store.effective_procs(job) != eff_before {
                shard.store.set_iter_polluted(job, true);
            }
            shard.recompute_rate(job);
            shard.reschedule(job, now);
            changed.push(job);
        }
        self.drive_capacity_change(&changed, policy);
    }

    fn on_cpu_recover(&mut self, cpu: CpuId, policy: &mut dyn SchedulingPolicy) {
        if !self.machine.recover_cpu(cpu) {
            return;
        }
        if self.obs_on {
            self.publish(ObsEvent::CpuRecovered { cpu });
        }
        self.drive_capacity_change(&[], policy);
        self.try_admit(policy);
    }

    fn on_job_kill(&mut self, job: JobId, policy: &mut dyn SchedulingPolicy) {
        if !self.contains(job) {
            return;
        }
        let attempt = self.retries.get(&job).copied().unwrap_or(0) + 1;
        let now = self.clock;
        {
            let shard = self.shard_of_mut(job);
            shard.store.advance_to(job, now);
            shard.queue.invalidate_key(u64::from(job.0));
        }
        let released = self.machine.release(job);
        for cpu in released {
            self.publish_cpu(cpu, None);
        }
        let memo = self.shard_of_mut(job).store.remove(job);
        self.memo_hits += memo.hits;
        self.memo_misses += memo.misses;
        self.admit_order.retain(|&id| id != job);
        self.record_ml();

        let retry = self.config.faults.retry;
        if retry.is_some_and(|r| attempt <= r.max_retries) {
            let backoff = retry.expect("checked").backoff_for(attempt);
            self.retries.insert(job, attempt);
            self.job_retries += 1;
            if self.obs_on {
                self.publish(ObsEvent::JobRetried {
                    job,
                    attempt,
                    backoff_secs: backoff.as_secs(),
                });
            }
            self.globals.push(self.clock + backoff, GEv::JobRetry(job));
        } else {
            self.jobs_failed += 1;
            if self.obs_on {
                self.publish(ObsEvent::JobFailed {
                    job,
                    attempts: attempt,
                });
            }
            self.qs.fail_terminal(job);
        }

        self.refresh_views();
        let views = std::mem::take(&mut self.views_scratch);
        let prof = self.prof.lane(0).begin(SpanKind::PolicyDecision);
        let decisions = {
            let _span = Span::start(Arc::clone(&self.decision_hist));
            policy.on_job_completion(&self.ctx(&views), job)
        };
        self.prof.lane(0).end(prof);
        self.views_scratch = views;
        self.apply_decisions(decisions, DecisionTrigger::Fault, policy);
        self.try_admit(policy);
    }

    fn into_result(mut self, policy_name: &str) -> RunResult {
        let completed_all = self.qs.all_done();
        for shard in &self.shards {
            let leftover = shard.store.remaining_memo_stats();
            self.memo_hits += leftover.hits;
            self.memo_misses += leftover.misses;
        }
        let mut sums: HashMap<AppClass, (f64, usize)> = HashMap::new();
        for (class, avg) in &self.completed_allocs {
            let e = sums.entry(*class).or_insert((0.0, 0));
            e.0 += avg;
            e.1 += 1;
        }
        let avg_alloc_by_class = sums
            .into_iter()
            .map(|(c, (sum, n))| (c, sum / n as f64))
            .collect();
        let end = self.clock;
        let events_pushed = self.globals.total_pushed()
            + self
                .shards
                .iter()
                .map(|s| s.queue.total_pushed())
                .sum::<u64>();
        let events_popped = self.globals.total_popped()
            + self
                .shards
                .iter()
                .map(|s| s.queue.total_popped())
                .sum::<u64>();
        let events_stale_dropped = self.globals.stale_drops()
            + self
                .shards
                .iter()
                .map(|s| s.queue.stale_drops())
                .sum::<u64>();
        let shard_events_popped: Vec<u64> =
            self.shards.iter().map(|s| s.queue.total_popped()).collect();
        pdpa_obs::metrics::record_engine_run(&RunCounters {
            events_pushed,
            events_popped,
            events_stale_dropped,
            decisions: self.decisions_applied,
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
        });
        RunResult {
            policy: policy_name.to_string(),
            summary: Summary::new(self.outcomes),
            trace: if self.config.collect_trace {
                Some(self.trace_obs.into_trace(end))
            } else {
                None
            },
            machine_stats: self.machine.stats(),
            timeshare_migrations: 0,
            quantum_rotations: 0,
            ml_series: self.ml_series,
            max_ml: self.max_ml,
            avg_alloc_by_class,
            avg_alloc_by_job: self.completed_alloc_by_job,
            completed_all,
            end_secs: end.as_secs(),
            cpu_seconds_used: self.cpu_seconds_used,
            total_cpus: self.config.cpus,
            events_pushed,
            events_popped,
            events_stale_dropped,
            decisions_applied: self.decisions_applied,
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
            cpu_failures: self.cpu_failures,
            job_retries: self.job_retries,
            jobs_failed: self.jobs_failed,
            watchdog: self.watchdog_diag.take(),
            shard_events_popped,
            profile: self.prof.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_core::Pdpa;
    use pdpa_policies::{EqualEfficiency, Equipartition};
    use pdpa_qs::Workload;

    const POLICY_NAMES: [&str; 3] = ["pdpa", "equip", "equal-eff"];

    fn fresh_policy(name: &str) -> Box<dyn SchedulingPolicy> {
        match name {
            "pdpa" => Box::new(Pdpa::paper_default()),
            "equip" => Box::new(Equipartition::new(4)),
            _ => Box::new(EqualEfficiency::paper_default()),
        }
    }

    fn digest(r: &RunResult) -> (usize, String, u64, u64) {
        let mut ends: Vec<String> = r
            .summary
            .outcomes()
            .iter()
            .map(|o| {
                format!(
                    "{}:{:.9}:{:.9}",
                    o.job.0,
                    o.start.as_secs(),
                    o.end.as_secs()
                )
            })
            .collect();
        ends.sort();
        (
            r.summary.outcomes().len(),
            ends.join(","),
            r.decisions_applied,
            r.jobs_failed,
        )
    }

    #[test]
    fn sharded_runs_complete() {
        let jobs = Workload::W3.build(0.5, 11);
        let engine = Engine::new(EngineConfig::default());
        let r = engine.run_sharded(jobs, Box::new(Pdpa::paper_default()), 2);
        assert!(r.completed_all);
        assert!(!r.summary.outcomes().is_empty());
    }

    #[test]
    fn shard_count_is_invisible() {
        // The tentpole invariant: identical results for every shard
        // count, across policies.
        let engine = Engine::new(EngineConfig::default());
        for name in POLICY_NAMES {
            let base = engine.run_sharded(Workload::W3.build(0.6, 7), fresh_policy(name), 1);
            for shards in [2usize, 3, 4, 8] {
                let r = engine.run_sharded(Workload::W3.build(0.6, 7), fresh_policy(name), shards);
                assert_eq!(
                    digest(&base),
                    digest(&r),
                    "{name} diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn shard_count_is_invisible_under_faults() {
        use pdpa_faults::{FaultPlan, RetryPolicy};
        let mut config = EngineConfig::default();
        let horizon = 9_000.0;
        let mut plan = FaultPlan::none()
            .mtbf(3_000.0, horizon, config.cpus, 99)
            .with_retry(RetryPolicy::default());
        for job in [2u32, 5, 9] {
            plan = plan.fail_job_at(JobId(job), 400.0 * f64::from(job));
        }
        config.faults = plan;
        let engine = Engine::new(config);
        for name in POLICY_NAMES {
            let base = engine.run_sharded(Workload::W3.build(0.6, 13), fresh_policy(name), 1);
            for shards in [2usize, 4] {
                let r = engine.run_sharded(Workload::W3.build(0.6, 13), fresh_policy(name), shards);
                assert_eq!(
                    digest(&base),
                    digest(&r),
                    "{name} diverged at {shards} shards under faults"
                );
            }
        }
    }

    #[test]
    fn epoch_length_changes_batching_not_sanity() {
        let engine = Engine::new(EngineConfig::default());
        for epoch in [1.0, 10.0, 120.0] {
            let r = engine.run_sharded_observed(
                Workload::W3.build(0.5, 3),
                Box::new(Equipartition::new(4)),
                4,
                epoch,
                &mut NullObserver,
            );
            assert!(r.completed_all, "epoch {epoch} failed to complete");
        }
    }

    #[test]
    #[should_panic(expected = "space-sharing")]
    fn time_shared_policies_are_rejected() {
        let engine = Engine::new(EngineConfig::default());
        let _ = engine.run_sharded(
            Workload::W3.build(0.3, 1),
            Box::new(pdpa_policies::IrixLike::paper_default()),
            2,
        );
    }
}
