//! Struct-of-arrays storage for the running-job set.
//!
//! The engine's hot loops — snapshotting `JobView`s for every policy
//! activation, summing allocations, recomputing every rate after a
//! capacity change — scan all running jobs but touch only a few small
//! fields each. The old `HashMap<JobId, RunningJob>` paid a pointer
//! chase and a ~200-byte cache line per job for every one of those
//! scans. [`JobStore`] instead keeps each hot field (remaining work,
//! allocation, progress rate, iteration deadline bookkeeping) in its own
//! dense vector, indexed by a *slot* assigned at admission; a slot map
//! translates [`JobId`]s, and `order` lists live slots in arrival order,
//! which is both the policy-context ordering and the cache-friendly scan
//! order. Cold state (the application spec, the SelfAnalyzer, the
//! speedup memo, the per-job noise stream) lives in a parallel vector of
//! [`JobCold`] records that only the per-iteration paths touch.
//!
//! Slots are recycled through a free list, so long replays with a
//! bounded multiprogramming level run in O(peak ML) memory regardless of
//! trace length.

use pdpa_apps::{ApplicationSpec, PhaseChange, Progress, SpeedupMemo};
use pdpa_perf::{PerfSample, SelfAnalyzer};
use pdpa_policies::JobView;
use pdpa_sim::{JobId, SimDuration, SimRng, SimTime};

/// Sentinel in the slot map for "not running".
const VACANT: u32 = u32::MAX;

/// Cold per-job state: touched once per iteration end, never in the
/// dense scans.
#[derive(Clone, Debug)]
pub struct JobCold {
    /// The application being executed.
    pub spec: ApplicationSpec,
    /// The job's SelfAnalyzer instance.
    pub analyzer: SelfAnalyzer,
    /// When the job started executing.
    pub started_at: SimTime,
    /// Memoized integer points of `spec.speedup`.
    pub speedup_memo: SpeedupMemo,
    /// The job's private timing-noise stream (used by the sharded
    /// engine; the classic engine draws from its global stream).
    pub rng: SimRng,
}

/// Memo statistics harvested when a job leaves the store.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoStats {
    /// Speedup-memo cache hits.
    pub hits: u64,
    /// Speedup-memo cache misses.
    pub misses: u64,
}

/// The running-job set in struct-of-arrays layout.
#[derive(Clone, Debug, Default)]
pub struct JobStore {
    /// `JobId → slot` (job ids are dense submission ranks, so a vector
    /// beats a hash map); `VACANT` marks a job that is not running.
    slot_of: Vec<u32>,
    /// Live slots in arrival order — the scan and policy-view order.
    order: Vec<u32>,
    /// Recycled slots.
    free: Vec<u32>,

    // --- Hot fields, one dense vector each, indexed by slot ---
    /// Job id occupying each slot.
    ids: Vec<JobId>,
    /// Current allocation (processors or threads).
    allocated: Vec<usize>,
    /// Requested processors (`spec.request`, mirrored hot for views).
    request: Vec<usize>,
    /// Progress rate in iterations per second (0 while stalled).
    rate: Vec<f64>,
    /// Remaining work: progress through the iterative region.
    progress: Vec<Progress>,
    /// Last instant progress was advanced to.
    advanced_to: Vec<SimTime>,
    /// Integral of allocated processors over time.
    cpu_seconds: Vec<f64>,
    /// When the current iteration began (the measurement window start).
    iter_started_at: Vec<SimTime>,
    /// True when the in-flight iteration mixes two allocations.
    iter_polluted: Vec<bool>,
    /// The job's most recent performance estimate.
    last_sample: Vec<Option<PerfSample>>,
    /// Sequential seconds of the job's *current* iteration, overhead
    /// included — a hot mirror of `spec.seq_iter_time_at(done)` refreshed
    /// on every rate change so view snapshots never touch cold state.
    seq_iter_secs: Vec<f64>,

    /// Cold remainder, indexed by slot (`None` for free slots).
    cold: Vec<Option<JobCold>>,
}

/// Derives a job's private timing-noise stream from the run seed, the
/// job id, and the retry attempt. Pure — no draw is consumed from any
/// shared stream, so the derivation is identical at every shard count.
pub fn job_noise_rng(seed: u64, job: JobId, attempt: u32) -> SimRng {
    let mix = 0x9E37_79B9_7F4A_7C15u64
        .wrapping_mul(u64::from(job.0) + 1)
        .wrapping_add(u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03));
    SimRng::new(seed ^ mix)
}

impl JobStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        JobStore::default()
    }

    /// Number of running jobs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no jobs are running.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// True when `job` is running.
    pub fn contains(&self, job: JobId) -> bool {
        self.slot_of
            .get(job.0 as usize)
            .is_some_and(|&s| s != VACANT)
    }

    #[inline]
    fn slot(&self, job: JobId) -> usize {
        let s = self.slot_of[job.0 as usize];
        debug_assert!(s != VACANT, "job {} is not running", job.0);
        s as usize
    }

    /// The job occupying arrival-order position `i`.
    pub fn id_at(&self, i: usize) -> JobId {
        self.ids[self.order[i] as usize]
    }

    /// Running job ids in arrival order.
    pub fn ids_in_order(&self) -> impl Iterator<Item = JobId> + '_ {
        self.order.iter().map(|&s| self.ids[s as usize])
    }

    /// Admits a job: assigns a slot (recycling freed ones) and
    /// initializes its runtime state exactly as a fresh start at `now`.
    pub fn start(
        &mut self,
        job: JobId,
        spec: ApplicationSpec,
        analyzer: SelfAnalyzer,
        now: SimTime,
        rng: SimRng,
    ) -> usize {
        let id_idx = job.0 as usize;
        if self.slot_of.len() <= id_idx {
            self.slot_of.resize(id_idx + 1, VACANT);
        }
        assert_eq!(
            self.slot_of[id_idx], VACANT,
            "job {} already running",
            job.0
        );
        let iterations = spec.iterations;
        let request = spec.request;
        let first_iter_secs =
            spec.seq_iter_time_at(0).as_secs() * (1.0 + spec.measurement_overhead);
        let cold = JobCold {
            spec,
            analyzer,
            started_at: now,
            speedup_memo: SpeedupMemo::new(),
            rng,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                let i = s as usize;
                self.ids[i] = job;
                self.allocated[i] = 0;
                self.request[i] = request;
                self.rate[i] = 0.0;
                self.progress[i] = Progress::new(iterations);
                self.advanced_to[i] = now;
                self.cpu_seconds[i] = 0.0;
                self.iter_started_at[i] = now;
                self.iter_polluted[i] = false;
                self.last_sample[i] = None;
                self.seq_iter_secs[i] = first_iter_secs;
                self.cold[i] = Some(cold);
                s
            }
            None => {
                let s = self.ids.len() as u32;
                self.ids.push(job);
                self.allocated.push(0);
                self.request.push(request);
                self.rate.push(0.0);
                self.progress.push(Progress::new(iterations));
                self.advanced_to.push(now);
                self.cpu_seconds.push(0.0);
                self.iter_started_at.push(now);
                self.iter_polluted.push(false);
                self.last_sample.push(None);
                self.seq_iter_secs.push(first_iter_secs);
                self.cold.push(Some(cold));
                s
            }
        };
        self.slot_of[id_idx] = slot;
        self.order.push(slot);
        slot as usize
    }

    /// Removes a job (completion, crash), freeing its slot and returning
    /// the harvested speedup-memo statistics.
    pub fn remove(&mut self, job: JobId) -> MemoStats {
        let slot = self.slot_of[job.0 as usize];
        assert!(slot != VACANT, "job {} is not running", job.0);
        self.slot_of[job.0 as usize] = VACANT;
        self.order.retain(|&s| s != slot);
        let cold = self.cold[slot as usize].take().expect("occupied slot");
        self.free.push(slot);
        let (hits, misses) = cold.speedup_memo.stats();
        MemoStats { hits, misses }
    }

    /// Sum of speedup-memo stats over the jobs still running (harvested
    /// at the simulation bound).
    pub fn remaining_memo_stats(&self) -> MemoStats {
        let mut out = MemoStats::default();
        for &s in &self.order {
            let (h, m) = self.cold[s as usize]
                .as_ref()
                .expect("occupied")
                .speedup_memo
                .stats();
            out.hits += h;
            out.misses += m;
        }
        out
    }

    // --- Dense scans ---

    /// Estimated sequential seconds remaining for the slot: outstanding
    /// iterations (partial current one included) times the current
    /// per-iteration sequential time. Hot lanes only.
    fn remaining_secs_slot(&self, i: usize) -> f64 {
        let p = &self.progress[i];
        let whole = p.iterations_total().saturating_sub(p.iterations_done()) as f64;
        let remaining_iters = (whole - p.current_fraction()).max(0.0);
        remaining_iters * self.seq_iter_secs[i]
    }

    /// Refills `out` with the policy-view snapshot, in arrival order.
    pub fn fill_views(&self, out: &mut Vec<JobView>) {
        out.clear();
        out.extend(self.order.iter().map(|&s| {
            let i = s as usize;
            JobView {
                id: self.ids[i],
                request: self.request[i],
                allocated: self.allocated[i],
                last_sample: self.last_sample[i],
                remaining_secs: self.remaining_secs_slot(i),
            }
        }));
    }

    /// The policy-view snapshot of one job.
    pub fn view_of(&self, job: JobId) -> JobView {
        let i = self.slot(job);
        JobView {
            id: self.ids[i],
            request: self.request[i],
            allocated: self.allocated[i],
            last_sample: self.last_sample[i],
            remaining_secs: self.remaining_secs_slot(i),
        }
    }

    /// Sum of current allocations over all running jobs.
    pub fn total_allocated(&self) -> usize {
        self.order.iter().map(|&s| self.allocated[s as usize]).sum()
    }

    /// Sum of effective processors over all running jobs (time-shared
    /// rate model).
    pub fn total_effective_procs(&self) -> usize {
        self.order
            .iter()
            .map(|&s| self.effective_procs_slot(s as usize))
            .sum()
    }

    // --- Per-job accessors ---

    /// Current allocation.
    pub fn allocated(&self, job: JobId) -> usize {
        self.allocated[self.slot(job)]
    }

    /// Sets the allocation (the caller handles machine/placement state).
    pub fn set_allocated(&mut self, job: JobId, alloc: usize) {
        let s = self.slot(job);
        self.allocated[s] = alloc;
    }

    /// Requested processors.
    pub fn request(&self, job: JobId) -> usize {
        self.request[self.slot(job)]
    }

    /// Current progress rate (iterations per second).
    pub fn rate(&self, job: JobId) -> f64 {
        self.rate[self.slot(job)]
    }

    /// The job's application class (cold read).
    pub fn class(&self, job: JobId) -> pdpa_apps::AppClass {
        self.cold_ref(job).spec.class
    }

    /// The job's phase-change marker, if any.
    pub fn phase_change(&self, job: JobId) -> Option<PhaseChange> {
        self.cold_ref(job).spec.phase_change
    }

    /// When the job started executing.
    pub fn started_at(&self, job: JobId) -> SimTime {
        self.cold_ref(job).started_at
    }

    /// Iterations fully completed so far.
    pub fn iterations_done(&self, job: JobId) -> u32 {
        self.progress[self.slot(job)].iterations_done()
    }

    /// True when the job has crossed its final iteration boundary.
    pub fn is_complete(&self, job: JobId) -> bool {
        self.progress[self.slot(job)].is_complete()
    }

    /// Measurement-window start of the in-flight iteration.
    pub fn iter_started_at(&self, job: JobId) -> SimTime {
        self.iter_started_at[self.slot(job)]
    }

    /// Restarts the measurement window at `now`.
    pub fn set_iter_started_at(&mut self, job: JobId, now: SimTime) {
        let s = self.slot(job);
        self.iter_started_at[s] = now;
    }

    /// True when the in-flight iteration mixes two allocations.
    pub fn iter_polluted(&self, job: JobId) -> bool {
        self.iter_polluted[self.slot(job)]
    }

    /// Marks/clears the mixed-allocation flag.
    pub fn set_iter_polluted(&mut self, job: JobId, polluted: bool) {
        let s = self.slot(job);
        self.iter_polluted[s] = polluted;
    }

    fn cold_ref(&self, job: JobId) -> &JobCold {
        self.cold[self.slot(job)].as_ref().expect("occupied slot")
    }

    /// Mutable access to the job's private noise stream.
    pub fn rng_mut(&mut self, job: JobId) -> &mut SimRng {
        let s = self.slot(job);
        &mut self.cold[s].as_mut().expect("occupied slot").rng
    }

    // --- Runtime arithmetic (the former `RunningJob` methods) ---

    /// Advances progress (and the allocation integral) to `now` at the
    /// current rate. Returns the number of iteration boundaries crossed.
    pub fn advance_to(&mut self, job: JobId, now: SimTime) -> u32 {
        let s = self.slot(job);
        if now <= self.advanced_to[s] {
            return 0;
        }
        let dt = now.since(self.advanced_to[s]);
        self.cpu_seconds[s] += self.allocated[s] as f64 * dt.as_secs();
        self.advanced_to[s] = now;
        self.progress[s].advance(dt, self.rate[s])
    }

    /// The processors the application actually uses right now (the
    /// SelfAnalyzer restrains to the baseline processors during the
    /// baseline phase, §3.1).
    pub fn effective_procs(&self, job: JobId) -> usize {
        self.effective_procs_slot(self.slot(job))
    }

    fn effective_procs_slot(&self, s: usize) -> usize {
        self.cold[s]
            .as_ref()
            .expect("occupied slot")
            .analyzer
            .effective_procs(self.allocated[s])
    }

    /// Charges a reallocation penalty as progress debt.
    pub fn charge(&mut self, job: JobId, penalty: SimDuration) {
        let s = self.slot(job);
        self.progress[s].add_debt(penalty);
    }

    /// Time until the current iteration ends at the current rate.
    pub fn time_to_iteration_end(&self, job: JobId) -> Option<SimDuration> {
        let s = self.slot(job);
        self.progress[s].time_to_iteration_end(self.rate[s])
    }

    /// Average processors held over the job's lifetime so far.
    pub fn average_allocation(&self, job: JobId, now: SimTime) -> f64 {
        let s = self.slot(job);
        let lifetime = now
            .since(self.cold[s].as_ref().expect("occupied").started_at)
            .as_secs();
        if lifetime <= 0.0 {
            return self.allocated[s] as f64;
        }
        // Include the un-integrated tail at the current allocation.
        let tail = now.since(self.advanced_to[s]).as_secs();
        (self.cpu_seconds[s] + self.allocated[s] as f64 * tail) / lifetime
    }

    /// Feeds a measured iteration to the job's SelfAnalyzer, updating
    /// `last_sample` when an estimate comes back.
    pub fn record_iteration(
        &mut self,
        job: JobId,
        procs: usize,
        measured: SimDuration,
    ) -> Option<PerfSample> {
        let s = self.slot(job);
        let sample = self.cold[s]
            .as_mut()
            .expect("occupied slot")
            .analyzer
            .record_iteration(procs, measured);
        if let Some(sample) = sample {
            self.last_sample[s] = Some(sample);
        }
        sample
    }

    /// Resets the job's SelfAnalyzer (working-set phase change, §3.1)
    /// and clears its last estimate.
    pub fn reset_analyzer(&mut self, job: JobId) {
        let s = self.slot(job);
        self.cold[s]
            .as_mut()
            .expect("occupied slot")
            .analyzer
            .reset();
        self.last_sample[s] = None;
    }

    /// Recomputes the job's progress rate from `eff` effective
    /// processors and a sharing-model throughput `factor` (1.0 under
    /// space sharing). The speedup curve is evaluated through the job's
    /// memo; the current iteration's sequential time honours working-set
    /// phase changes.
    pub fn set_rate_from(&mut self, job: JobId, eff: f64, factor: f64) {
        let s = self.slot(job);
        let cold = self.cold[s].as_mut().expect("occupied slot");
        let speedup = cold
            .speedup_memo
            .fractional(cold.spec.speedup.as_ref(), eff);
        let iter_secs = cold
            .spec
            .seq_iter_time_at(self.progress[s].iterations_done())
            .as_secs()
            * (1.0 + cold.spec.measurement_overhead);
        // Keep the hot mirror current: working-set phase changes move the
        // per-iteration time, and every such move passes through here.
        self.seq_iter_secs[s] = iter_secs;
        self.rate[s] = if speedup > 0.0 {
            speedup * factor / iter_secs
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::paper::apsi;
    use pdpa_perf::SelfAnalyzerConfig;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn store_with_job() -> (JobStore, JobId) {
        let mut store = JobStore::new();
        let job = JobId(0);
        store.start(
            job,
            apsi(),
            SelfAnalyzer::new(SelfAnalyzerConfig::default()),
            t(10.0),
            job_noise_rng(1, job, 0),
        );
        (store, job)
    }

    #[test]
    fn starts_stalled() {
        let (store, job) = store_with_job();
        assert_eq!(store.allocated(job), 0);
        assert_eq!(store.rate(job), 0.0);
        assert!(store.time_to_iteration_end(job).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn advance_integrates_cpu_seconds() {
        let (mut store, job) = store_with_job();
        store.set_allocated(job, 4);
        store.set_rate_from(job, 4.0, 1.0);
        // Pin the rate for arithmetic clarity.
        let s = store.slot(job);
        store.rate[s] = 0.5;
        assert_eq!(store.advance_to(job, t(12.0)), 1);
        assert_eq!(store.cpu_seconds[s], 8.0);
        assert_eq!(store.iterations_done(job), 1);
        // Idempotent at the same instant.
        assert_eq!(store.advance_to(job, t(12.0)), 0);
        assert_eq!(store.cpu_seconds[s], 8.0);
    }

    #[test]
    fn baseline_restrains_effective_procs() {
        let (mut store, job) = store_with_job();
        store.set_allocated(job, 30);
        assert_eq!(store.effective_procs(job), 2);
    }

    #[test]
    fn average_allocation_counts_tail() {
        let (mut store, job) = store_with_job();
        store.set_allocated(job, 6);
        assert!((store.average_allocation(job, t(20.0)) - 6.0).abs() < 1e-12);
        store.advance_to(job, t(20.0));
        store.set_allocated(job, 2);
        assert!((store.average_allocation(job, t(30.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn charge_adds_debt() {
        let (mut store, job) = store_with_job();
        store.set_allocated(job, 2);
        let s = store.slot(job);
        store.rate[s] = 1.0;
        store.charge(job, SimDuration::from_secs(3.0));
        let eta = store.time_to_iteration_end(job).unwrap();
        assert!((eta.as_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn slots_recycle_and_order_tracks_arrivals() {
        let mut store = JobStore::new();
        for i in 0..3u32 {
            store.start(
                JobId(i),
                apsi(),
                SelfAnalyzer::default(),
                t(0.0),
                job_noise_rng(1, JobId(i), 0),
            );
        }
        assert_eq!(store.ids_in_order().collect::<Vec<_>>().len(), 3);
        store.remove(JobId(1));
        assert_eq!(
            store.ids_in_order().map(|j| j.0).collect::<Vec<_>>(),
            vec![0, 2]
        );
        // The freed slot is reused; arrival order puts the newcomer last.
        store.start(
            JobId(7),
            apsi(),
            SelfAnalyzer::default(),
            t(5.0),
            job_noise_rng(1, JobId(7), 0),
        );
        assert_eq!(
            store.ids_in_order().map(|j| j.0).collect::<Vec<_>>(),
            vec![0, 2, 7]
        );
        assert!(store.contains(JobId(7)));
        assert!(!store.contains(JobId(1)));
        // Views snapshot in the same order.
        let mut views = Vec::new();
        store.fill_views(&mut views);
        assert_eq!(views.iter().map(|v| v.id.0).collect::<Vec<_>>(), [0, 2, 7]);
    }

    #[test]
    fn views_estimate_remaining_sequential_work() {
        let (mut store, job) = store_with_job();
        let spec = apsi();
        let per_iter = spec.seq_iter_time_at(0).as_secs() * (1.0 + spec.measurement_overhead);
        let total = spec.iterations as f64;
        let v0 = store.view_of(job);
        assert!(
            (v0.remaining_secs - total * per_iter).abs() < 1e-9,
            "fresh job owes all iterations: {} vs {}",
            v0.remaining_secs,
            total * per_iter
        );
        // Run one iteration's worth of progress: the estimate shrinks by
        // exactly one per-iteration quantum.
        store.set_allocated(job, 2);
        store.set_rate_from(job, 2.0, 1.0);
        let eta = store.time_to_iteration_end(job).unwrap();
        store.advance_to(job, t(10.0 + eta.as_secs()));
        let v1 = store.view_of(job);
        assert!(
            (v1.remaining_secs - (total - 1.0) * per_iter).abs() < 1e-6,
            "one iteration done: {} vs {}",
            v1.remaining_secs,
            (total - 1.0) * per_iter
        );
        assert!(v1.remaining_secs < v0.remaining_secs);
        // Both view paths agree.
        let mut views = Vec::new();
        store.fill_views(&mut views);
        assert_eq!(views[0].remaining_secs, v1.remaining_secs);
    }

    #[test]
    fn noise_rng_is_pure_and_decorrelated() {
        let mut a = job_noise_rng(42, JobId(3), 0);
        let mut b = job_noise_rng(42, JobId(3), 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = job_noise_rng(42, JobId(4), 0);
        let mut d = job_noise_rng(42, JobId(3), 1);
        let base = job_noise_rng(42, JobId(3), 0).next_u64();
        assert_ne!(base, c.next_u64());
        assert_ne!(base, d.next_u64());
    }
}
