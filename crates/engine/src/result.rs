//! Results of one workload execution.

use std::collections::HashMap;

use pdpa_apps::AppClass;
use pdpa_metrics::Summary;
use pdpa_sim::MachineStats;
use pdpa_trace::Trace;

/// Everything measured during one workload execution under one policy.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The policy's display name.
    pub policy: String,
    /// Per-job outcomes, aggregated.
    pub summary: Summary,
    /// The per-CPU activity trace, when collection was enabled.
    pub trace: Option<Trace>,
    /// Machine counters (space-shared migrations, reallocations).
    pub machine_stats: MachineStats,
    /// Migrations counted by the time-shared placement model (IRIX runs
    /// with trace collection; 0 otherwise).
    pub timeshare_migrations: u64,
    /// Gang-mode occupant hand-offs at slot rotations (traced gang runs;
    /// 0 otherwise). Rotation reclaims the same footprint every slot, so
    /// Table 2 does not bill it as migration — but the decision-event
    /// stream shows the churn, and the analyzer's replay counts it. Kept
    /// separate so `analyzer == total_migrations() + quantum_rotations`
    /// holds for every sharing model.
    pub quantum_rotations: u64,
    /// `(time_secs, running_jobs)` at every multiprogramming-level change —
    /// the Fig. 8 series.
    pub ml_series: Vec<(f64, usize)>,
    /// The maximum multiprogramming level reached.
    pub max_ml: usize,
    /// Average processors held per application class (over each job's
    /// lifetime, then averaged over jobs of the class).
    pub avg_alloc_by_class: HashMap<AppClass, f64>,
    /// Average processors held by each individual job over its lifetime.
    pub avg_alloc_by_job: HashMap<pdpa_sim::JobId, f64>,
    /// True when every submitted job completed within the simulation bound.
    pub completed_all: bool,
    /// Final simulated time (the workload makespan when `completed_all`).
    pub end_secs: f64,
    /// Total CPU-seconds held by jobs over the run (the integral of each
    /// job's allocation over its lifetime).
    pub cpu_seconds_used: f64,
    /// Machine size, for utilization computations.
    pub total_cpus: usize,
    /// Simulation events scheduled over the run (engine throughput input).
    pub events_pushed: u64,
    /// Simulation events drained over the run, stale ones included (the
    /// bench harness reports `events_popped / wall_time` as events/sec).
    pub events_popped: u64,
    /// Stale events (bumped epoch, completed job) dropped by the queue's
    /// validity filter without dispatch.
    pub events_stale_dropped: u64,
    /// Policy allocation decisions the engine applied (no-op resizes
    /// excluded).
    pub decisions_applied: u64,
    /// Speedup-memo cache hits over every job in the run.
    pub memo_hits: u64,
    /// Speedup-memo cache misses (actual model evaluations).
    pub memo_misses: u64,
    /// Injected CPU failures that actually took a processor down.
    pub cpu_failures: u64,
    /// Job retries scheduled after injected crashes.
    pub job_retries: u64,
    /// Jobs that crashed terminally (retries exhausted or none allowed).
    pub jobs_failed: u64,
    /// `Some(diagnostic)` when the zero-progress watchdog aborted the run:
    /// the simulated clock stopped advancing for the configured number of
    /// steps (a livelock). `completed_all` is false for such runs.
    pub watchdog: Option<String>,
    /// Events popped per shard, in shard order — the input to the
    /// load-imbalance figure in profiles and bench trajectories. Empty on
    /// the classic (unsharded) engine.
    pub shard_events_popped: Vec<u64>,
    /// The self-profile collected when the run was instrumented with an
    /// enabled profiler; `None` otherwise.
    pub profile: Option<pdpa_prof::Profile>,
}

impl RunResult {
    /// Total migrations: machine counter plus the time-shared model's.
    pub fn total_migrations(&self) -> u64 {
        self.machine_stats.migrations + self.timeshare_migrations
    }

    /// The maximum multiprogramming level in the series (sanity accessor).
    pub fn peak_ml(&self) -> usize {
        self.ml_series.iter().map(|&(_, ml)| ml).max().unwrap_or(0)
    }

    /// Fraction of machine capacity held by jobs over the run — the paper's
    /// §5.4 observation is that PDPA does the same work at ≈ 70 % of the
    /// CPU time Equipartition burns at ≈ 100 %.
    pub fn utilization(&self) -> f64 {
        let capacity = self.end_secs * self.total_cpus as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            self.cpu_seconds_used / capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_ml_matches_series() {
        let r = RunResult {
            policy: "PDPA".into(),
            summary: Summary::new(Vec::new()),
            trace: None,
            machine_stats: MachineStats::default(),
            timeshare_migrations: 0,
            quantum_rotations: 0,
            ml_series: vec![(0.0, 1), (5.0, 4), (9.0, 2)],
            max_ml: 4,
            avg_alloc_by_class: HashMap::new(),
            avg_alloc_by_job: HashMap::new(),
            completed_all: true,
            end_secs: 10.0,
            cpu_seconds_used: 300.0,
            total_cpus: 60,
            events_pushed: 0,
            events_popped: 0,
            events_stale_dropped: 0,
            decisions_applied: 0,
            memo_hits: 0,
            memo_misses: 0,
            cpu_failures: 0,
            job_retries: 0,
            jobs_failed: 0,
            watchdog: None,
            shard_events_popped: Vec::new(),
            profile: None,
        };
        assert_eq!(r.peak_ml(), 4);
        assert_eq!(r.peak_ml(), r.max_ml);
        assert_eq!(r.total_migrations(), 0);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }
}
