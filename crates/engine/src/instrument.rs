//! Optional runtime instrumentation for engine runs.
//!
//! [`Instrumentation`] bundles the health/introspection knobs from
//! `pdpa-prof` — span profiling, the zero-progress watchdog, periodic
//! heartbeat snapshots, and the live-observability sinks behind
//! `pdpa replay --serve` — behind one parameter so the engines need a
//! single `*_instrumented` entry point each. The default is everything
//! off, which is what [`Engine::run_observed`](crate::Engine::run_observed)
//! and friends pass: those paths stay inside the same ≤2% overhead bound
//! as `NullObserver`, because disabled lanes and absent monitors cost one
//! branch per touch point.

use std::fmt;
use std::sync::Arc;

use pdpa_prof::{HeartbeatConfig, HeartbeatSink, ProgressSink, WatchdogConfig};

/// What to measure and guard during one run. All off by default.
#[derive(Clone, Default)]
pub struct Instrumentation {
    /// Record hierarchical wall-clock spans; the result lands in
    /// `RunResult::profile`.
    pub profile: bool,
    /// Abort the run with a structured diagnostic (in
    /// `RunResult::watchdog`) when the simulated clock stops advancing
    /// for this many consecutive steps.
    pub watchdog: Option<WatchdogConfig>,
    /// Emit periodic health snapshots during the run.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Where heartbeat lines go. `None` with a heartbeat configured means
    /// stderr (the classic behaviour).
    pub heartbeat_sink: Option<Arc<dyn HeartbeatSink>>,
    /// A live-progress mirror (e.g. `pdpa_watch::LiveTap`), fed a
    /// `HealthSnapshot` on the amortized instrumentation cadence whether
    /// or not a heartbeat is due, and notified when the watchdog trips.
    pub tap: Option<Arc<dyn ProgressSink>>,
}

impl fmt::Debug for Instrumentation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instrumentation")
            .field("profile", &self.profile)
            .field("watchdog", &self.watchdog)
            .field("heartbeat", &self.heartbeat)
            .field("heartbeat_sink", &self.heartbeat_sink.is_some())
            .field("tap", &self.tap.is_some())
            .finish()
    }
}

impl Instrumentation {
    /// Everything off — the zero-cost default.
    pub fn none() -> Self {
        Self::default()
    }

    /// Enables span profiling.
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enables the zero-progress watchdog with the given threshold.
    pub fn with_watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// Enables heartbeat snapshots at the given cadence.
    pub fn with_heartbeat(mut self, cfg: HeartbeatConfig) -> Self {
        self.heartbeat = Some(cfg);
        self
    }

    /// Routes heartbeat lines to `sink` instead of stderr.
    pub fn with_heartbeat_sink(mut self, sink: Arc<dyn HeartbeatSink>) -> Self {
        self.heartbeat_sink = Some(sink);
        self
    }

    /// Attaches a live-progress mirror.
    pub fn with_tap(mut self, tap: Arc<dyn ProgressSink>) -> Self {
        self.tap = Some(tap);
        self
    }
}
