//! Optional runtime instrumentation for engine runs.
//!
//! [`Instrumentation`] bundles the three health/introspection knobs from
//! `pdpa-prof` — span profiling, the zero-progress watchdog, and periodic
//! heartbeat snapshots — behind one parameter so the engines need a single
//! `*_instrumented` entry point each. The default is everything off, which
//! is what [`Engine::run_observed`](crate::Engine::run_observed) and
//! friends pass: those paths stay inside the same ≤2% overhead bound as
//! `NullObserver`, because disabled lanes and absent monitors cost one
//! branch per touch point.

use pdpa_prof::{HeartbeatConfig, WatchdogConfig};

/// What to measure and guard during one run. All off by default.
#[derive(Clone, Copy, Debug, Default)]
pub struct Instrumentation {
    /// Record hierarchical wall-clock spans; the result lands in
    /// `RunResult::profile`.
    pub profile: bool,
    /// Abort the run with a structured diagnostic (in
    /// `RunResult::watchdog`) when the simulated clock stops advancing
    /// for this many consecutive steps.
    pub watchdog: Option<WatchdogConfig>,
    /// Emit periodic health snapshots to stderr during the run.
    pub heartbeat: Option<HeartbeatConfig>,
}

impl Instrumentation {
    /// Everything off — the zero-cost default.
    pub fn none() -> Self {
        Self::default()
    }

    /// Enables span profiling.
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enables the zero-progress watchdog with the given threshold.
    pub fn with_watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// Enables heartbeat snapshots at the given cadence.
    pub fn with_heartbeat(mut self, cfg: HeartbeatConfig) -> Self {
        self.heartbeat = Some(cfg);
        self
    }
}
