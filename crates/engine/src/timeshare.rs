//! The time-shared execution model (IRIX baseline).
//!
//! Under the native IRIX configuration every application keeps `request`
//! kernel threads and the operating system multiplexes all threads over the
//! processors. The model captures the three effects the paper blames for
//! IRIX's results (§5.1.1):
//!
//! 1. **Proportional slowdown** — a job's effective processors are its
//!    thread count scaled by the machine's overcommit ratio;
//! 2. **Time-slicing overhead** — an overcommitted machine loses a fixed
//!    fraction of throughput to context switches, cache pollution, and
//!    inopportune preemption;
//! 3. **Migrations** — each quantum, a thread stays on its processor only
//!    with the affinity probability; failed affinity means a migration and
//!    a new burst in the trace.

use pdpa_apps::SpeedupModel;
use pdpa_sim::{CpuId, JobId, SimRng};

/// Effective (possibly fractional) processors of a job with `threads`
/// kernel threads when `total_threads` compete for `cpus`.
pub fn effective_procs(threads: usize, total_threads: usize, cpus: usize) -> f64 {
    if threads == 0 || total_threads == 0 {
        return 0.0;
    }
    let share = if total_threads > cpus {
        cpus as f64 / total_threads as f64
    } else {
        1.0
    };
    threads as f64 * share
}

/// Throughput factor under time sharing: the base placement/affinity loss
/// applies whenever any thread runs; the overcommit loss stacks on top when
/// more threads than processors compete.
pub fn throughput_factor(
    total_threads: usize,
    cpus: usize,
    base_overhead: f64,
    overcommit_overhead: f64,
) -> f64 {
    let base = 1.0 - base_overhead;
    if total_threads > cpus {
        base * (1.0 - overcommit_overhead)
    } else {
        base
    }
}

/// Speedup at a fractional processor count, by linear interpolation between
/// the integer points of the curve.
///
/// Counts past the curve's last defined point (measured curves only define
/// speedups up to their final control point) clamp to that point instead of
/// interpolating into extrapolated territory.
pub fn fractional_speedup(model: &dyn SpeedupModel, procs: f64) -> f64 {
    if procs <= 0.0 {
        return 0.0;
    }
    let procs = match model.max_defined_procs() {
        Some(max) => procs.min(max as f64),
        None => procs,
    };
    let lo = procs.floor() as usize;
    let hi = procs.ceil() as usize;
    if lo == hi {
        return model.speedup(lo);
    }
    let t = procs - lo as f64;
    model.speedup(lo) * (1.0 - t) + model.speedup(hi) * t
}

/// Per-quantum processor placement for the trace and migration accounting.
///
/// Each CPU holds (at most) one job per quantum. Across a quantum boundary
/// the CPU keeps its job with probability `affinity` (if that job is still
/// running); otherwise it picks a job at random weighted by thread count —
/// a migration.
#[derive(Clone, Debug)]
pub struct QuantumPlacement {
    /// Current occupant of each CPU.
    assignment: Vec<Option<JobId>>,
    /// Whether each CPU is operational; dead CPUs never receive threads.
    alive: Vec<bool>,
    /// Total migrations so far.
    pub migrations: u64,
}

impl QuantumPlacement {
    /// Creates an empty placement for `cpus` processors.
    pub fn new(cpus: usize) -> Self {
        QuantumPlacement {
            assignment: vec![None; cpus],
            alive: vec![true; cpus],
            migrations: 0,
        }
    }

    /// The current occupant of a CPU.
    pub fn occupant(&self, cpu: CpuId) -> Option<JobId> {
        self.assignment[cpu.index()]
    }

    /// Operational CPUs.
    pub fn alive_cpus(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Whether a CPU is operational.
    pub fn is_alive(&self, cpu: CpuId) -> bool {
        self.alive[cpu.index()]
    }

    /// Marks a CPU failed or recovered. Failing a CPU evicts whatever thread
    /// was placed there (returned so the caller can trace the displacement);
    /// the scheduler re-places it on the next quantum boundary.
    pub fn set_alive(&mut self, cpu: CpuId, alive: bool) -> Option<JobId> {
        self.alive[cpu.index()] = alive;
        if alive {
            None
        } else {
            self.assignment[cpu.index()].take()
        }
    }

    /// Advances one quantum. `jobs` is the running set as `(job, threads)`;
    /// `affinity` is the keep probability. Returns the CPUs whose occupant
    /// changed, as `(cpu, new_occupant)`.
    pub fn advance(
        &mut self,
        jobs: &[(JobId, usize)],
        affinity: f64,
        rng: &mut SimRng,
    ) -> Vec<(CpuId, Option<JobId>)> {
        let total_threads: usize = jobs.iter().map(|&(_, t)| t).sum();
        let mut changes = Vec::new();
        for i in 0..self.assignment.len() {
            if !self.alive[i] {
                continue;
            }
            let cpu = CpuId(i as u16);
            let current = self.assignment[i];
            let current_runs = current
                .map(|j| jobs.iter().any(|&(id, t)| id == j && t > 0))
                .unwrap_or(false);
            let keep = current_runs && rng.chance(affinity);
            let next = if keep {
                current
            } else if total_threads == 0 {
                None
            } else {
                // Weighted pick by thread count.
                let mut pick = rng.below(total_threads);
                let mut chosen = None;
                for &(id, t) in jobs {
                    if pick < t {
                        chosen = Some(id);
                        break;
                    }
                    pick -= t;
                }
                chosen
            };
            if next != current {
                if current.is_some() && next.is_some() {
                    // A different job's thread displaced the old one — the
                    // old thread migrated away.
                    self.migrations += 1;
                } else if current.is_none() && next.is_some() {
                    // Thread placed on a previously idle CPU: it came from
                    // somewhere (or is starting); count placements onto idle
                    // CPUs as migrations only if the job already ran
                    // elsewhere — approximated by counting them at half
                    // weight is overkill; we simply do not count them.
                }
                self.assignment[i] = next;
                changes.push((cpu, next));
            }
        }
        changes
    }

    /// Clears CPUs occupied by a completed job.
    pub fn evict(&mut self, job: JobId) -> Vec<CpuId> {
        let mut cleared = Vec::new();
        for (i, slot) in self.assignment.iter_mut().enumerate() {
            if *slot == Some(job) {
                *slot = None;
                cleared.push(CpuId(i as u16));
            }
        }
        cleared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::Amdahl;

    #[test]
    fn effective_procs_not_overcommitted() {
        assert_eq!(effective_procs(30, 32, 60), 30.0);
        assert_eq!(effective_procs(0, 10, 60), 0.0);
    }

    #[test]
    fn effective_procs_overcommitted_scales() {
        // 90 threads on 60 CPUs: each job gets 2/3 of its threads.
        assert!((effective_procs(30, 90, 60) - 20.0).abs() < 1e-12);
        assert!((effective_procs(2, 90, 60) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_factor_base_loss_always_applies() {
        assert!((throughput_factor(60, 60, 0.15, 0.30) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn throughput_factor_overcommit_stacks() {
        let f = throughput_factor(61, 60, 0.15, 0.30);
        assert!((f - 0.85 * 0.70).abs() < 1e-12);
    }

    #[test]
    fn fractional_speedup_interpolates() {
        let m = Amdahl::new(0.0); // S(p) = p
        assert!((fractional_speedup(&m, 4.5) - 4.5).abs() < 1e-12);
        assert_eq!(fractional_speedup(&m, 4.0), 4.0);
        assert_eq!(fractional_speedup(&m, 0.0), 0.0);
        // Sub-unit allocations interpolate between S(0) = 0 and S(1) = 1.
        assert!((fractional_speedup(&m, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractional_speedup_clamps_past_the_curve_end() {
        use pdpa_apps::PiecewiseLinear;
        // Regression: ceil() past the last control point used to interpolate
        // with extrapolated values; the curve must hold its final speedup.
        let m = PiecewiseLinear::new(vec![(4, 4.0), (8, 6.0)]);
        assert_eq!(fractional_speedup(&m, 8.0), 6.0);
        assert_eq!(fractional_speedup(&m, 8.4), 6.0, "clamped to S(8)");
        assert_eq!(fractional_speedup(&m, 64.0), 6.0);
        assert!((fractional_speedup(&m, 6.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dead_cpus_never_receive_threads() {
        let mut p = QuantumPlacement::new(8);
        let jobs = vec![(JobId(0), 8)];
        let mut rng = SimRng::new(7);
        p.advance(&jobs, 0.5, &mut rng);
        let displaced = p.set_alive(CpuId(3), false);
        assert!(displaced.is_some(), "occupied CPU evicts on failure");
        assert_eq!(p.alive_cpus(), 7);
        for _ in 0..50 {
            p.advance(&jobs, 0.5, &mut rng);
            assert!(p.occupant(CpuId(3)).is_none(), "dead CPU stays empty");
        }
        assert_eq!(p.set_alive(CpuId(3), true), None);
        assert_eq!(p.alive_cpus(), 8);
        let mut seen = false;
        for _ in 0..50 {
            p.advance(&jobs, 0.5, &mut rng);
            seen |= p.occupant(CpuId(3)).is_some();
        }
        assert!(seen, "recovered CPU rejoins the placement");
    }

    #[test]
    fn placement_with_full_affinity_is_stable() {
        let mut p = QuantumPlacement::new(8);
        let jobs = vec![(JobId(0), 4), (JobId(1), 4)];
        let mut rng = SimRng::new(1);
        p.advance(&jobs, 1.0, &mut rng); // initial placement
        let before: Vec<Option<JobId>> = (0..8).map(|i| p.occupant(CpuId(i))).collect();
        let changes = p.advance(&jobs, 1.0, &mut rng);
        assert!(changes.is_empty(), "full affinity never migrates");
        let after: Vec<Option<JobId>> = (0..8).map(|i| p.occupant(CpuId(i))).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn placement_with_low_affinity_churns() {
        let mut p = QuantumPlacement::new(32);
        let jobs = vec![(JobId(0), 30), (JobId(1), 30)];
        let mut rng = SimRng::new(2);
        p.advance(&jobs, 0.2, &mut rng);
        let m0 = p.migrations;
        for _ in 0..100 {
            p.advance(&jobs, 0.2, &mut rng);
        }
        assert!(
            p.migrations - m0 > 1_000,
            "low affinity migrates constantly: {}",
            p.migrations - m0
        );
    }

    #[test]
    fn evict_clears_the_job() {
        let mut p = QuantumPlacement::new(8);
        let jobs = vec![(JobId(0), 8)];
        let mut rng = SimRng::new(3);
        p.advance(&jobs, 0.5, &mut rng);
        let cleared = p.evict(JobId(0));
        assert_eq!(cleared.len(), 8);
        assert!((0..8).all(|i| p.occupant(CpuId(i)).is_none()));
    }
}
