//! Engine configuration.

use pdpa_faults::FaultPlan;
use pdpa_perf::SelfAnalyzerConfig;
use pdpa_sim::CostModel;

/// Configuration of one workload execution.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Processors in the machine (the paper uses 60 of the Origin 2000's
    /// 64).
    pub cpus: usize,
    /// Reallocation cost model.
    pub cost: CostModel,
    /// Relative standard deviation of iteration-time measurement noise.
    pub noise_sigma: f64,
    /// SelfAnalyzer configuration applied to every application.
    pub analyzer: SelfAnalyzerConfig,
    /// RNG seed (noise, time-shared placement).
    pub seed: u64,
    /// Record the per-CPU activity trace (needed for Fig. 5 / Table 2;
    /// costs memory and, under time sharing, per-quantum work).
    pub collect_trace: bool,
    /// Safety bound on simulated time; the run aborts (with
    /// `completed_all = false`) if the workload has not drained by then.
    pub max_sim_secs: f64,
    /// Reset each application's SelfAnalyzer when it crosses a working-set
    /// change (§3.1: with compiler-inserted instrumentation "this situation
    /// could be avoided by resetting data"). Disable to reproduce the
    /// binary-only failure mode where stale baselines corrupt estimates.
    pub reset_analyzer_on_phase_change: bool,
    /// Scan the whole queue for an admissible job instead of only the FCFS
    /// head (EASY-style backfilling without reservations). The paper's
    /// NANOS QS is strict FCFS — backfilling mainly rescues *rigid*
    /// policies, whose head job can block the queue behind a large request.
    pub backfill: bool,
    /// Deterministic fault-injection schedule replayed alongside the
    /// workload (CPU failures/recoveries, job crashes, retry policy).
    /// Empty by default.
    pub faults: FaultPlan,
}

impl Default for EngineConfig {
    /// The paper's setup: 60 processors, Origin-2000 reallocation costs,
    /// 2 % measurement noise, default SelfAnalyzer, no trace collection.
    fn default() -> Self {
        EngineConfig {
            cpus: 60,
            cost: CostModel::origin2000(),
            noise_sigma: 0.02,
            analyzer: SelfAnalyzerConfig::default(),
            seed: 0x5EED,
            collect_trace: false,
            max_sim_secs: 100_000.0,
            reset_analyzer_on_phase_change: true,
            backfill: false,
            faults: FaultPlan::none(),
        }
    }
}

impl EngineConfig {
    /// Enables trace collection.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the machine size.
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }

    /// Enables queue backfilling.
    pub fn with_backfill(mut self) -> Self {
        self.backfill = true;
        self
    }

    /// Attaches a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cpus == 0 {
            return Err("machine needs processors".into());
        }
        if !(0.0..0.5).contains(&self.noise_sigma) {
            return Err(format!("noise sigma {} out of [0, 0.5)", self.noise_sigma));
        }
        if self.max_sim_secs.is_nan() || self.max_sim_secs <= 0.0 {
            return Err("max_sim_secs must be positive".into());
        }
        for f in &self.faults.cpu_faults {
            if f.cpu.index() >= self.cpus {
                return Err(format!(
                    "fault plan targets cpu {} but the machine has {}",
                    f.cpu.index(),
                    self.cpus
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_setup() {
        let c = EngineConfig::default();
        assert_eq!(c.cpus, 60);
        assert!(!c.collect_trace);
        c.validate().unwrap();
    }

    #[test]
    fn builders() {
        let c = EngineConfig::default()
            .with_trace()
            .with_seed(7)
            .with_cpus(8);
        assert!(c.collect_trace);
        assert_eq!(c.seed, 7);
        assert_eq!(c.cpus, 8);
    }

    #[test]
    fn validation() {
        let c = EngineConfig {
            cpus: 0,
            ..EngineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = EngineConfig {
            noise_sigma: 0.9,
            ..EngineConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn fault_plan_must_fit_the_machine() {
        use pdpa_sim::CpuId;
        let c = EngineConfig::default()
            .with_cpus(8)
            .with_faults(FaultPlan::none().fail_cpu_at(CpuId(8), 10.0));
        assert!(c.validate().is_err(), "cpu 8 does not exist on 8 CPUs");
        let c = EngineConfig::default()
            .with_cpus(8)
            .with_faults(FaultPlan::none().fail_cpu_at(CpuId(7), 10.0));
        c.validate().unwrap();
    }
}
