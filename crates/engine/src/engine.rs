//! The event loop: executes a workload under a scheduling policy.

use std::collections::HashMap;
use std::sync::Arc;

use pdpa_apps::{AppClass, NoiseModel};
use pdpa_metrics::{JobOutcome, Summary};
use pdpa_obs::metrics::{Histogram, Registry, RunCounters, Span};
use pdpa_obs::{DecisionTrigger, NullObserver, ObsEvent, Observer};
use pdpa_perf::SelfAnalyzer;
use pdpa_policies::{Decisions, JobView, PolicyCtx, SchedulingPolicy, SharingModel};
use pdpa_prof::{
    HealthSnapshot, Heartbeat, Lane, LaneProfile, Profile, SpanKind, StderrHeartbeat, Watchdog,
};
use pdpa_qs::{JobSpec, QueueSystem};
use pdpa_sim::{AdaptiveQueue, CpuId, JobId, Machine, SimRng, SimTime};
use pdpa_trace::TraceObserver;

use crate::config::EngineConfig;
use crate::instrument::Instrumentation;
use crate::result::RunResult;
use crate::store::{job_noise_rng, JobStore};
use crate::timeshare::{effective_procs, throughput_factor, QuantumPlacement};

/// The observer slot of a [`Sim`]: a run borrows the caller's observer
/// for the duration of `run_instrumented`, while a long-lived
/// [`EngineSession`](crate::session::EngineSession) owns its sink outright
/// so the simulation state can outlive any one call stack.
pub(crate) enum ObsSink<'a> {
    /// The classic batch path: the observer outlives the run.
    Borrowed(&'a mut dyn Observer),
    /// The session path: the simulation owns its sink (`Sim<'static>`).
    Owned(Box<dyn Observer>),
}

impl ObsSink<'_> {
    fn is_enabled(&self) -> bool {
        match self {
            ObsSink::Borrowed(o) => o.is_enabled(),
            ObsSink::Owned(o) => o.is_enabled(),
        }
    }

    fn on_event(&mut self, at: SimTime, event: &ObsEvent) {
        match self {
            ObsSink::Borrowed(o) => o.on_event(at, event),
            ObsSink::Owned(o) => o.on_event(at, event),
        }
    }
}

impl std::fmt::Debug for ObsSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsSink::Borrowed(_) => f.write_str("ObsSink::Borrowed(..)"),
            ObsSink::Owned(_) => f.write_str("ObsSink::Owned(..)"),
        }
    }
}

/// What a cancellation request (`Sim::cancel_at`, surfaced through
/// [`crate::EngineSession::cancel`]) found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still waiting in the queue; it was removed and failed
    /// terminally without ever starting.
    Queued,
    /// The job was running; it was killed (no retry) and its processors
    /// released.
    Running,
    /// The job is unknown, already finished, or already failed — nothing
    /// to cancel.
    NotFound,
}

/// Engine events.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A job's submission instant passed: it joins the queue.
    Arrival(JobId),
    /// A job's current iteration is predicted to end. Scheduled under the
    /// job's queue key, so rescheduling or removing the job lazily
    /// invalidates the pending prediction inside the event queue.
    IterEnd { job: JobId },
    /// Time-shared placement quantum (only scheduled for time-shared runs
    /// with trace collection).
    Tick,
    /// A CPU fails per the fault plan.
    CpuFail(CpuId),
    /// A failed CPU comes back per the fault plan.
    CpuRecover(CpuId),
    /// A job crashes per the fault plan (a no-op unless it is running).
    JobKill(JobId),
    /// A crashed job's backoff elapsed: it rejoins the queue.
    JobRetry(JobId),
}

/// Executes workloads under a [`SchedulingPolicy`].
#[derive(Clone, Debug)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: EngineConfig) -> Self {
        config.validate().expect("invalid engine configuration");
        Engine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs `jobs` to completion under `policy` and returns the measured
    /// result. Deterministic for a given configuration seed.
    pub fn run(&self, jobs: Vec<JobSpec>, policy: Box<dyn SchedulingPolicy>) -> RunResult {
        self.run_observed(jobs, policy, &mut NullObserver)
    }

    /// Like [`run`](Engine::run), but publishes every decision event to
    /// `observer`. With a disabled observer (`is_enabled()` false) the
    /// extra cost is one dead branch per publish site — events are not even
    /// constructed.
    pub fn run_observed(
        &self,
        jobs: Vec<JobSpec>,
        policy: Box<dyn SchedulingPolicy>,
        observer: &mut dyn Observer,
    ) -> RunResult {
        self.run_instrumented(jobs, policy, observer, Instrumentation::none())
    }

    /// Like [`run_observed`](Engine::run_observed), with optional runtime
    /// instrumentation: span profiling (`RunResult::profile`), a
    /// zero-progress watchdog that aborts a livelocked run with a
    /// diagnostic (`RunResult::watchdog`), and periodic heartbeat lines on
    /// stderr. With [`Instrumentation::none`] every touch point is a dead
    /// branch — the event stream is bit-identical either way.
    pub fn run_instrumented(
        &self,
        jobs: Vec<JobSpec>,
        mut policy: Box<dyn SchedulingPolicy>,
        observer: &mut dyn Observer,
        instr: Instrumentation,
    ) -> RunResult {
        let lane = if instr.profile {
            Lane::enabled(std::time::Instant::now())
        } else {
            Lane::disabled()
        };
        let mut watchdog = instr.watchdog.map(Watchdog::new);
        let mut heartbeat = instr.heartbeat.map(Heartbeat::new);
        // Heartbeat lines take exactly one typed path; stderr is just the
        // default sink.
        let heartbeat_sink = instr
            .heartbeat_sink
            .clone()
            .unwrap_or_else(|| Arc::new(StderrHeartbeat));
        let tap = instr.tap.clone();
        let mut watchdog_diag = None;
        let mut sim = Sim::new(
            &self.config,
            jobs,
            policy.sharing(),
            ObsSink::Borrowed(observer),
            lane,
        );
        sim.schedule_arrivals();
        let replay = sim.lane.begin(SpanKind::Replay);
        let mut steps: u64 = 0;
        // Stale iteration events (their job rescheduled, completed, or
        // crashed) are invalidated by key and discarded inside the queue,
        // so handlers only ever see live events.
        while let Some((t, ev)) = sim.events.pop() {
            if t.as_secs() > self.config.max_sim_secs {
                break;
            }
            sim.clock = t;
            steps += 1;
            if let Some(wd) = watchdog.as_mut() {
                if wd.observe(t.as_secs()) {
                    let diag = wd.diagnostic(&format!(
                        "classic engine: running={}, waiting={}, qlen={}, stale_drops={}",
                        sim.store.len(),
                        sim.qs.waiting_count(),
                        sim.events.len(),
                        sim.events.stale_drops(),
                    ));
                    if let Some(tap) = tap.as_deref() {
                        tap.watchdog_fired(&diag);
                    }
                    watchdog_diag = Some(diag);
                    break;
                }
            }
            // Amortized: snapshot building, the heartbeat due-check, and
            // the live-tap refresh all run every 64k events.
            if steps & 0xFFFF == 0 && (heartbeat.is_some() || tap.is_some()) {
                let hb_due = heartbeat.as_ref().is_some_and(Heartbeat::due);
                if hb_due || tap.is_some() {
                    let stats = sim.events.stats();
                    let snap = HealthSnapshot {
                        sim_clock_secs: t.as_secs(),
                        events_popped: stats.popped,
                        queue_len: stats.len,
                        running: sim.store.len(),
                        waiting: sim.qs.waiting_count(),
                        shard_events: Vec::new(),
                    };
                    if let Some(tap) = tap.as_deref() {
                        tap.progress(&snap);
                    }
                    if hb_due {
                        if let Some(line) = heartbeat.as_mut().and_then(|hb| hb.tick(&snap)) {
                            heartbeat_sink.emit(&line, &snap);
                        }
                    }
                }
            }
            sim.dispatch(ev, policy.as_mut());
        }
        sim.lane.add_events(steps);
        sim.lane.end(replay);
        if let Some(tap) = tap.as_deref() {
            // Final refresh so the mirror's counters reflect the whole run.
            let stats = sim.events.stats();
            tap.progress(&HealthSnapshot {
                sim_clock_secs: sim.clock.as_secs(),
                events_popped: stats.popped,
                queue_len: stats.len,
                running: sim.store.len(),
                waiting: sim.qs.waiting_count(),
                shard_events: Vec::new(),
            });
        }
        let profile = if instr.profile {
            Some(Profile::from_lanes(vec![LaneProfile {
                name: "coordinator".to_string(),
                spans: sim.lane.spans().to_vec(),
                events: sim.lane.events(),
            }]))
        } else {
            None
        };
        let mut result = sim.into_result(policy.name());
        result.watchdog = watchdog_diag;
        result.profile = profile;
        result
    }
}

/// All mutable state of one run.
///
/// `Sim<'a>` borrows its observer on the classic batch path; with an
/// [`ObsSink::Owned`] sink it is `Sim<'static>` — a fully self-owned
/// simulation that a long-running [`EngineSession`](crate::session)
/// drives incrementally.
pub(crate) struct Sim<'a> {
    config: EngineConfig,
    sharing: SharingModel,
    qs: QueueSystem,
    machine: Machine,
    /// The event queue: heap-backed while small, migrating to a calendar
    /// (bucketed) backend once the backlog crosses the upgrade threshold.
    events: AdaptiveQueue<Ev>,
    rng: SimRng,
    noise: NoiseModel,
    clock: SimTime,
    /// Running jobs in struct-of-arrays layout (hot fields dense, arrival
    /// order preserved for policy context ordering).
    store: JobStore,
    /// Reused buffer for policy-call snapshots — refilled by
    /// `refresh_views` instead of allocating a fresh `Vec` per policy call.
    views_scratch: Vec<JobView>,
    outcomes: Vec<JobOutcome>,
    /// `(class, average allocation)` of completed jobs.
    completed_allocs: Vec<(AppClass, f64)>,
    /// Average allocation per completed job.
    completed_alloc_by_job: HashMap<JobId, f64>,
    /// Total CPU-seconds held by completed jobs.
    cpu_seconds_used: f64,
    /// The one subscription point for CPU-occupancy tracing: placement
    /// mutations publish [`ObsEvent::CpuAssigned`] and this bridge rebuilds
    /// the per-CPU burst trace from the stream.
    trace_obs: TraceObserver,
    /// `config.collect_trace`, cached where the publish sites branch on it.
    trace_on: bool,
    /// The external event sink, when one is attached.
    obs: ObsSink<'a>,
    /// `obs.is_enabled()`, cached at run start: publish sites skip event
    /// construction entirely when false.
    obs_on: bool,
    /// Reused buffer for decision batches — `apply_decisions` refills it
    /// instead of allocating a fresh `Vec` per policy activation.
    changes_scratch: Vec<(JobId, usize)>,
    /// Allocation changes applied (no-op resizes excluded).
    decisions_applied: u64,
    /// Speedup-memo stats harvested from completed jobs.
    memo_hits: u64,
    memo_misses: u64,
    /// Wall-time histogram for policy activations (`decision_ns`).
    decision_hist: Arc<Histogram>,
    /// Span buffer for self-profiling; a disabled lane (the default) costs
    /// one branch per touch point.
    lane: Lane,
    placement: QuantumPlacement,
    ml_series: Vec<(f64, usize)>,
    max_ml: usize,
    /// Current row of the gang matrix (gang mode only).
    gang_slot: usize,
    /// Previous occupant of every CPU as published on the decision-event
    /// bus (gang mode only) — the state needed to count occupant churn.
    gang_prev: Vec<Option<JobId>>,
    /// Gang-mode occupant hand-offs: a CPU passing directly from one job
    /// to another at a slot rotation. Mirrors the analyzer's replayed
    /// hand-off rule, so engine and replay agree on every policy.
    quantum_rotations: u64,
    /// Retries consumed so far by each crashed job.
    retries: HashMap<JobId, u32>,
    /// CPU failures injected (events that actually took a CPU down).
    cpu_failures: u64,
    /// Job retries scheduled.
    job_retries: u64,
    /// Jobs that failed terminally.
    jobs_failed: u64,
}

impl<'a> Sim<'a> {
    pub(crate) fn new(
        config: &EngineConfig,
        jobs: Vec<JobSpec>,
        sharing: SharingModel,
        obs: ObsSink<'a>,
        lane: Lane,
    ) -> Self {
        let trace_obs = if config.collect_trace {
            TraceObserver::new(config.cpus)
        } else {
            TraceObserver::disabled(config.cpus)
        };
        let obs_on = obs.is_enabled();
        Sim {
            config: config.clone(),
            sharing,
            qs: QueueSystem::new(jobs),
            machine: Machine::new(config.cpus),
            events: AdaptiveQueue::new(),
            rng: SimRng::new(config.seed),
            noise: if config.noise_sigma == 0.0 {
                NoiseModel::none()
            } else {
                NoiseModel::new(config.noise_sigma)
            },
            clock: SimTime::ZERO,
            store: JobStore::new(),
            views_scratch: Vec::new(),
            outcomes: Vec::new(),
            completed_allocs: Vec::new(),
            completed_alloc_by_job: HashMap::new(),
            cpu_seconds_used: 0.0,
            trace_on: config.collect_trace,
            trace_obs,
            obs,
            obs_on,
            changes_scratch: Vec::new(),
            decisions_applied: 0,
            memo_hits: 0,
            memo_misses: 0,
            decision_hist: Registry::global().histogram("decision_ns"),
            lane,
            placement: QuantumPlacement::new(config.cpus),
            ml_series: vec![(0.0, 0)],
            max_ml: 0,
            gang_slot: 0,
            gang_prev: vec![None; config.cpus],
            quantum_rotations: 0,
            retries: HashMap::new(),
            cpu_failures: 0,
            job_retries: 0,
            jobs_failed: 0,
        }
    }

    /// True when allocations are thread/gang counts rather than dedicated
    /// cpusets (the machine model is bypassed and every membership change
    /// shifts every job's rate).
    fn is_time_shared(&self) -> bool {
        matches!(
            self.sharing,
            SharingModel::TimeShared(_) | SharingModel::Gang(_)
        )
    }

    /// The trace/placement quantum of the current sharing model, if any.
    fn quantum(&self) -> Option<pdpa_sim::SimDuration> {
        match self.sharing {
            SharingModel::SpaceShared => None,
            SharingModel::TimeShared(p) => Some(p.quantum),
            SharingModel::Gang(p) => Some(p.quantum),
        }
    }

    fn schedule_arrivals(&mut self) {
        // One O(n) batch insertion instead of n heap sifts — on a 10k-job
        // replay trace this is the difference between a linear and an
        // n log n startup. Sequence numbers are assigned in submission
        // order, so pop order is identical to one-by-one pushes.
        let subs: Vec<(SimTime, Ev)> = self
            .qs
            .submissions()
            .map(|(id, spec)| (spec.submit, Ev::Arrival(id)))
            .collect();
        let prof = self.lane.begin(SpanKind::QueueOps);
        self.events.push_batch(subs);
        self.lane.end(prof);
        // Kick off the time-shared/gang quantum clock when tracing.
        if self.config.collect_trace {
            if let Some(q) = self.quantum() {
                self.events.push(SimTime::ZERO + q, Ev::Tick);
            }
        }
        // The fault plan is data: every failure, recovery, and crash is
        // scheduled up front, which is what makes chaos runs reproducible.
        for f in &self.config.faults.cpu_faults {
            self.events.push(f.at, Ev::CpuFail(f.cpu));
            if let Some(r) = f.recover_at {
                self.events.push(r, Ev::CpuRecover(f.cpu));
            }
        }
        for f in &self.config.faults.job_faults {
            self.events.push(f.at, Ev::JobKill(f.job));
        }
    }

    /// Refills the reusable snapshot of the running jobs for a policy call.
    /// Read the result via `self.views_scratch`.
    fn refresh_views(&mut self) {
        self.store.fill_views(&mut self.views_scratch);
    }

    /// Operational processors right now (total minus injected failures) —
    /// the capacity every policy decision is framed in.
    fn alive_cpus(&self) -> usize {
        if self.is_time_shared() {
            self.placement.alive_cpus()
        } else {
            self.machine.alive_cpus()
        }
    }

    fn free_cpus(&self) -> usize {
        if self.is_time_shared() {
            let total = self.store.total_allocated();
            self.alive_cpus().saturating_sub(total)
        } else {
            self.machine.free_cpus()
        }
    }

    /// The queue head's processor request (what admission is asked about).
    fn next_request(&self) -> Option<usize> {
        self.qs.head().map(|id| self.qs.spec(id).app.request)
    }

    fn record_ml(&mut self) {
        let ml = self.store.len();
        self.max_ml = self.max_ml.max(ml);
        self.ml_series.push((self.clock.as_secs(), ml));
        if self.obs_on {
            // The O(n) allocation sum runs only with a live observer.
            let total_alloc = self.store.total_allocated();
            self.publish(ObsEvent::MplChanged {
                running: ml,
                total_alloc,
            });
        }
    }

    // --- Event publication ---

    /// Publishes to the trace bridge and the external observer. Call sites
    /// guard with `obs_on` (or `trace_on` for CPU events) so disabled runs
    /// never construct events.
    #[inline]
    fn publish(&mut self, ev: ObsEvent) {
        if self.trace_on {
            self.trace_obs.on_event(self.clock, &ev);
        }
        if self.obs_on {
            self.obs.on_event(self.clock, &ev);
        }
    }

    /// Publishes a CPU-occupancy change (the high-volume event class); one
    /// branch and out when neither sink is live.
    #[inline]
    fn publish_cpu(&mut self, cpu: CpuId, job: Option<JobId>) {
        if let SharingModel::Gang(_) = self.sharing {
            // Gang rotation bypasses both the machine model and the quantum
            // placement's migration counter, so occupant churn is counted
            // here, at the single point every occupancy change flows
            // through — with exactly the analyzer's replay rule: a direct
            // occupied → occupied hand-off is one rotation switch.
            let prev = &mut self.gang_prev[cpu.index()];
            if let (Some(old), Some(new)) = (*prev, job) {
                if old != new {
                    self.quantum_rotations += 1;
                }
            }
            *prev = job;
        }
        if self.trace_on || self.obs_on {
            self.publish(ObsEvent::CpuAssigned { cpu, job });
        }
    }

    // --- Rates ---

    /// Recomputes a job's progress rate from its current effective
    /// processors. The job must already be advanced to `self.clock`.
    fn recompute_rate(&mut self, job: JobId) {
        let (eff, factor) = match self.sharing {
            SharingModel::SpaceShared => (self.store.effective_procs(job) as f64, 1.0),
            SharingModel::TimeShared(p) => {
                // Threads compete for operational processors only.
                let cpus = self.placement.alive_cpus();
                let total = self.store.total_effective_procs();
                let eff = effective_procs(self.store.effective_procs(job), total, cpus);
                let factor = throughput_factor(total, cpus, p.base_overhead, p.overcommit_overhead);
                (eff, factor)
            }
            SharingModel::Gang(p) => {
                // Full coscheduled width for a 1/n duty cycle, minus the
                // whole-machine switch overhead. A degraded machine caps
                // the width at the surviving processors.
                let n = self.store.len().max(1) as f64;
                let cpus = self.placement.alive_cpus();
                let eff = self.store.effective_procs(job).min(cpus) as f64;
                (eff, (1.0 - p.switch_overhead) / n)
            }
        };
        // The speedup curve goes through the job's memo; the current
        // iteration's sequential time honours working-set changes (§3.1).
        self.store.set_rate_from(job, eff, factor);
    }

    /// Invalidates the job's pending iteration event and schedules a fresh
    /// one at the current rate.
    ///
    /// If the job is already complete (its final boundary was crossed by an
    /// `advance_to` inside a decision application rather than by its own
    /// iteration event), an immediate event is scheduled so the completion
    /// path still runs.
    fn reschedule(&mut self, job: JobId) {
        let key = u64::from(job.0);
        self.events.invalidate_key(key);
        if self.store.is_complete(job) {
            self.events.push_keyed(self.clock, key, Ev::IterEnd { job });
        } else if let Some(dt) = self.store.time_to_iteration_end(job) {
            // `dt` is positive but can be sub-ULP at a large clock, making
            // `clock + dt` round back onto `clock` — the event would then
            // advance nothing and reschedule itself forever. The next
            // representable instant still covers the true boundary.
            let mut at = self.clock + dt;
            if at == self.clock {
                at = self.clock.next_up();
            }
            self.events.push_keyed(at, key, Ev::IterEnd { job });
        }
    }

    /// Recomputes every running job's rate (time-shared: any membership or
    /// thread-count change shifts every share).
    fn recompute_all_rates(&mut self) {
        // Indexed loop instead of cloning the order: nothing below touches
        // the membership, only per-job rates and the event queue.
        for i in 0..self.store.len() {
            let id = self.store.id_at(i);
            self.store.advance_to(id, self.clock);
            self.recompute_rate(id);
            self.reschedule(id);
        }
    }

    // --- Decisions ---

    /// Applies a policy's allocation decisions. Shrinks run before grows so
    /// released processors are available for reassignment within the same
    /// decision batch.
    fn apply_decisions(&mut self, decisions: Decisions, trigger: DecisionTrigger) {
        if decisions.is_empty() {
            return;
        }
        let Decisions {
            allocations,
            mut transitions,
        } = decisions;
        let mut changes = std::mem::take(&mut self.changes_scratch);
        changes.clear();
        changes.extend(
            allocations
                .into_iter()
                .filter(|(job, _)| self.store.contains(*job))
                .map(|(job, target)| {
                    // Cap at the request; a zero target is honored (a job
                    // can be stalled by capacity loss and re-granted later)
                    // rather than rounded up, which would overcommit a full
                    // machine.
                    let req = self.store.request(job);
                    (job, target.min(req))
                }),
        );
        // Shrinks first.
        changes.sort_by_key(|&(job, target)| {
            let cur = self.store.allocated(job);
            target > cur
        });
        let mut any_change = false;
        for &(job, target) in &changes {
            let from_alloc = self.store.allocated(job);
            if self.apply_one(job, target) {
                any_change = true;
                self.decisions_applied += 1;
                if self.obs_on {
                    let to_alloc = self.store.allocated(job);
                    // Pair the decision with the state move that caused it.
                    let transition = transitions
                        .iter()
                        .position(|n| n.job == job)
                        .map(|i| transitions.remove(i))
                        .map(|n| (n.from, n.to));
                    self.publish(ObsEvent::Decision {
                        trigger,
                        job,
                        from_alloc,
                        to_alloc,
                        transition,
                    });
                }
            }
        }
        if self.obs_on {
            // State moves that kept the allocation still matter (e.g.
            // INC → STABLE at the held width).
            for n in transitions {
                self.publish(ObsEvent::StateChanged {
                    job: n.job,
                    from: n.from,
                    to: n.to,
                });
            }
        }
        self.changes_scratch = changes;
        if any_change && self.is_time_shared() {
            self.recompute_all_rates();
        }
    }

    /// Applies one job's new target allocation. Returns true if anything
    /// changed.
    fn apply_one(&mut self, job: JobId, target: usize) -> bool {
        match self.sharing {
            SharingModel::SpaceShared => {
                let current = self.machine.allocation(job);
                if current == target {
                    return false;
                }
                // Advance progress at the old rate before the change.
                let now = self.clock;
                self.store.advance_to(job, now);
                let outcome = self.machine.resize(job, target);
                if outcome.is_noop() {
                    return false;
                }
                for cpu in &outcome.gained {
                    self.publish_cpu(*cpu, Some(job));
                }
                for cpu in &outcome.lost {
                    self.publish_cpu(*cpu, None);
                }
                let penalty = self
                    .config
                    .cost
                    .charge(outcome.gained.len(), outcome.lost.len());
                let new_alloc = self.machine.allocation(job);
                // Initial placement is free; reallocations of a running job
                // cost cache and page-migration time.
                if current > 0 {
                    self.store.charge(job, penalty);
                }
                let eff_before = self.store.effective_procs(job);
                self.store.set_allocated(job, new_alloc);
                if current > 0 && self.store.effective_procs(job) != eff_before {
                    // The in-flight iteration now mixes two allocations; its
                    // timing must not reach the policy. (Initial placement
                    // starts the first iteration fresh — nothing in flight.)
                    self.store.set_iter_polluted(job, true);
                }
                if current > 0 && self.obs_on {
                    self.publish(ObsEvent::ReallocCost {
                        job,
                        penalty_secs: penalty.as_secs(),
                        gained: outcome.gained.len(),
                        lost: outcome.lost.len(),
                    });
                }
                self.recompute_rate(job);
                self.reschedule(job);
                true
            }
            SharingModel::TimeShared(_) | SharingModel::Gang(_) => {
                if self.store.allocated(job) == target {
                    return false;
                }
                let now = self.clock;
                self.store.advance_to(job, now);
                let was_running = self.store.allocated(job) > 0;
                self.store.set_allocated(job, target);
                if was_running {
                    self.store.set_iter_polluted(job, true);
                }
                // Rates for everyone are refreshed by the caller.
                true
            }
        }
    }

    // --- Event handlers ---

    /// Routes one popped event to its handler.
    fn dispatch(&mut self, ev: Ev, policy: &mut dyn SchedulingPolicy) {
        match ev {
            Ev::Arrival(job) => self.on_arrival(job, policy),
            Ev::IterEnd { job } => self.on_iter_end(job, policy),
            Ev::Tick => self.on_tick(),
            Ev::CpuFail(cpu) => self.on_cpu_fail(cpu, policy),
            Ev::CpuRecover(cpu) => self.on_cpu_recover(cpu, policy),
            Ev::JobKill(job) => self.on_job_kill(job, policy),
            Ev::JobRetry(job) => self.on_job_retry(job, policy),
        }
    }

    // --- Incremental session support ---
    //
    // A long-lived `EngineSession` drives the same state machine as the
    // batch loop above, but in slices: ops (submit, cancel) carry an
    // instant `at`, and every op first processes all events at or before
    // `at` *before* mutating anything. Event-queue sequence numbers —
    // and therefore pop order on ties — are then a pure function of the
    // op sequence, which is what makes journal replay (snapshot/restore)
    // reproduce a live run exactly.

    /// Processes every event due at or before `barrier` (clamped to
    /// `max_sim_secs`); returns the number of events handled.
    pub(crate) fn run_due(&mut self, barrier: SimTime, policy: &mut dyn SchedulingPolicy) -> u64 {
        let max = SimTime::from_secs(self.config.max_sim_secs);
        let barrier = if barrier > max { max } else { barrier };
        let mut steps = 0;
        while let Some((t, ev)) = self.events.pop_due(barrier) {
            self.clock = t;
            steps += 1;
            self.dispatch(ev, policy);
        }
        self.lane.add_events(steps);
        steps
    }

    /// Admits a job submitted online: appends it to the queue system and
    /// schedules its arrival at `at`. The caller must have processed all
    /// events up to `at` first (see [`run_due`](Self::run_due)) and keep
    /// submission instants nondecreasing.
    pub(crate) fn submit_at(
        &mut self,
        at: SimTime,
        app: pdpa_apps::ApplicationSpec,
        policy: &mut dyn SchedulingPolicy,
    ) -> JobId {
        self.run_due(at, policy);
        let job = self.qs.push_job(JobSpec::new(at, app));
        self.events.push(at, Ev::Arrival(job));
        job
    }

    /// Cancels a job at instant `at`: a still-queued job is removed and
    /// failed terminally; a running job is killed with retries forbidden.
    pub(crate) fn cancel_at(
        &mut self,
        at: SimTime,
        job: JobId,
        policy: &mut dyn SchedulingPolicy,
    ) -> CancelOutcome {
        self.run_due(at, policy);
        let max = SimTime::from_secs(self.config.max_sim_secs);
        let at = if at > max { max } else { at };
        if self.clock < at {
            self.clock = at;
        }
        if job.index() >= self.qs.total_jobs() {
            return CancelOutcome::NotFound;
        }
        if self.qs.remove_waiting(job) {
            self.jobs_failed += 1;
            if self.obs_on {
                self.publish(ObsEvent::JobFailed { job, attempts: 0 });
            }
            self.qs.fail_terminal(job);
            // Removing the queue head can unblock the job behind it.
            self.try_admit(policy);
            CancelOutcome::Queued
        } else if self.store.contains(job) {
            self.kill_job(job, policy, false);
            CancelOutcome::Running
        } else {
            CancelOutcome::NotFound
        }
    }

    pub(crate) fn clock(&self) -> SimTime {
        self.clock
    }

    pub(crate) fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub(crate) fn queue_stats(&self) -> pdpa_sim::QueueStats {
        self.events.stats()
    }

    pub(crate) fn qs(&self) -> &QueueSystem {
        &self.qs
    }

    pub(crate) fn running_count(&self) -> usize {
        self.store.len()
    }

    fn on_arrival(&mut self, job: JobId, policy: &mut dyn SchedulingPolicy) {
        self.qs.arrive(job);
        if self.obs_on {
            self.publish(ObsEvent::JobSubmitted { job });
        }
        self.try_admit(policy);
    }

    /// Picks the job to admit: the FCFS head, or — with backfilling — the
    /// first waiting job the policy accepts.
    fn pick_admissible(&self, policy: &dyn SchedulingPolicy, views: &[JobView]) -> Option<JobId> {
        let candidates: Vec<JobId> = if self.config.backfill {
            self.qs.waiting().collect()
        } else {
            self.qs.head().into_iter().collect()
        };
        for job in candidates {
            let ctx = PolicyCtx {
                now: self.clock,
                total_cpus: self.alive_cpus(),
                free_cpus: self.free_cpus(),
                jobs: views,
                queued_jobs: self.qs.waiting_count(),
                next_request: Some(self.qs.spec(job).app.request),
            };
            if policy.may_start_new_job(&ctx) {
                return Some(job);
            }
        }
        None
    }

    fn try_admit(&mut self, policy: &mut dyn SchedulingPolicy) {
        loop {
            self.refresh_views();
            let Some(job) = self.pick_admissible(policy, &self.views_scratch) else {
                return;
            };
            assert!(self.qs.start_specific(job), "picked job is waiting");
            if self.obs_on {
                // The queue → start hand-off: queue-wait time is the span
                // from submit (or a retry's backoff expiry) to this event.
                self.publish(ObsEvent::JobDequeued { job });
            }
            let spec = self.qs.spec(job).app.clone();
            let request = spec.request;
            let analyzer = SelfAnalyzer::new(self.config.analyzer);
            // The per-job noise stream is derived, not drawn from the shared
            // rng, so admission order does not perturb other jobs' noise.
            // (The classic engine perturbs from the shared stream; the
            // private stream drives the sharded engine.)
            let attempt = self.retries.get(&job).copied().unwrap_or(0);
            let rng = job_noise_rng(self.config.seed, job, attempt);
            self.store.start(job, spec, analyzer, self.clock, rng);
            if self.obs_on {
                self.publish(ObsEvent::JobStarted { job, request });
            }
            self.record_ml();
            self.refresh_views();
            let ctx = PolicyCtx {
                now: self.clock,
                total_cpus: self.alive_cpus(),
                free_cpus: self.free_cpus(),
                jobs: &self.views_scratch,
                queued_jobs: self.qs.waiting_count(),
                next_request: self.next_request(),
            };
            let prof = self.lane.begin(SpanKind::PolicyDecision);
            let decisions = {
                let _span = Span::start(Arc::clone(&self.decision_hist));
                policy.on_job_arrival(&ctx, job)
            };
            self.lane.end(prof);
            self.apply_decisions(decisions, DecisionTrigger::Arrival);
            if self.is_time_shared() {
                self.recompute_all_rates();
            }
        }
    }

    fn on_iter_end(&mut self, job: JobId, policy: &mut dyn SchedulingPolicy) {
        // Stale events (completed job, bumped generation) never reach here:
        // the queue discards invalidated keys inside `pop`.
        let crossed = self.store.advance_to(job, self.clock);
        let mut sample = None;
        // `(procs, measured_secs)` of a clean iteration, kept for the
        // observer.
        let mut iter_meta: Option<(usize, f64)> = None;
        if crossed > 0 {
            if self.store.iter_polluted(job) {
                // The finished iteration straddled an allocation change; its
                // wall time mixes two rates. Restart the measurement window
                // and report nothing — the next full iteration is clean.
                self.store.set_iter_polluted(job, false);
                self.store.set_iter_started_at(job, self.clock);
            } else {
                // Measure the finished iteration (wall time since the
                // iteration started, with timing noise) and feed the
                // SelfAnalyzer.
                let truth = self.clock.since(self.store.iter_started_at(job));
                let per_iter = truth / crossed as f64;
                self.store.set_iter_started_at(job, self.clock);
                let procs_used = self.store.effective_procs(job);
                let measured = self.noise.perturb(per_iter, &mut self.rng);
                sample = self.store.record_iteration(job, procs_used, measured);
                if self.obs_on {
                    iter_meta = Some((procs_used, measured.as_secs()));
                }
            }
            // Crossing into a new working-set phase invalidates the
            // baseline; compiler-inserted instrumentation resets the
            // analyzer (§3.1). The reset comes *after* recording the
            // iteration that just finished — it belongs to the old phase.
            if self.config.reset_analyzer_on_phase_change {
                if let Some(pc) = self.store.phase_change(job) {
                    let done = self.store.iterations_done(job);
                    if done >= pc.at_iteration && done - crossed < pc.at_iteration {
                        self.store.reset_analyzer(job);
                        sample = None;
                    }
                }
            }
        }

        let complete = self.store.is_complete(job);
        if let Some((procs, iter_secs)) = iter_meta {
            // Published after `j`'s borrow ends, before any JobFinished.
            self.publish(ObsEvent::IterationMeasured {
                job,
                procs,
                iter_secs,
                speedup: sample.as_ref().map_or(0.0, |s| s.speedup),
                efficiency: sample.as_ref().map_or(0.0, |s| s.efficiency),
                estimated: sample.is_some(),
            });
        }
        if complete {
            self.complete_job(job, policy);
            return;
        }
        if crossed == 0 {
            // Numerical corner: the boundary was not quite reached. Refresh
            // the schedule and move on.
            self.reschedule(job);
            return;
        }

        if let Some(s) = sample {
            self.refresh_views();
            let ctx = PolicyCtx {
                now: self.clock,
                total_cpus: self.alive_cpus(),
                free_cpus: self.free_cpus(),
                jobs: &self.views_scratch,
                queued_jobs: self.qs.waiting_count(),
                next_request: self.next_request(),
            };
            let prof = self.lane.begin(SpanKind::PolicyDecision);
            let decisions = {
                let _span = Span::start(Arc::clone(&self.decision_hist));
                policy.on_performance_report(&ctx, job, s)
            };
            self.lane.end(prof);
            self.apply_decisions(decisions, DecisionTrigger::Report);
            // A report can settle the system and unblock admission (PDPA's
            // coordination path).
            self.try_admit(policy);
        }
        if self.store.contains(job) {
            // The analyzer phase may have flipped (baseline → measuring), so
            // refresh the rate either way.
            self.recompute_rate(job);
            self.reschedule(job);
        }
    }

    fn complete_job(&mut self, job: JobId, policy: &mut dyn SchedulingPolicy) {
        let class = self.store.class(job);
        let avg_alloc = self.store.average_allocation(job, self.clock);
        let started_at = self.store.started_at(job);
        self.completed_allocs.push((class, avg_alloc));
        self.completed_alloc_by_job.insert(job, avg_alloc);
        self.cpu_seconds_used += avg_alloc * self.clock.since(started_at).as_secs();
        self.outcomes.push(JobOutcome {
            job,
            class,
            submit: self.qs.spec(job).submit,
            start: started_at,
            end: self.clock,
        });

        if self.obs_on {
            self.publish(ObsEvent::JobFinished { job });
        }

        // Release processors.
        match self.sharing {
            SharingModel::SpaceShared => {
                let released = self.machine.release(job);
                for cpu in released {
                    self.publish_cpu(cpu, None);
                }
            }
            SharingModel::TimeShared(_) | SharingModel::Gang(_) => {
                for cpu in self.placement.evict(job) {
                    self.publish_cpu(cpu, None);
                }
            }
        }
        // Removing the job harvests its speedup-memo stats.
        let memo = self.store.remove(job);
        self.memo_hits += memo.hits;
        self.memo_misses += memo.misses;
        // The pending iteration prediction (if any) dies with the job.
        self.events.invalidate_key(u64::from(job.0));
        self.qs.complete(job);
        self.record_ml();

        self.refresh_views();
        let ctx = PolicyCtx {
            now: self.clock,
            total_cpus: self.alive_cpus(),
            free_cpus: self.free_cpus(),
            jobs: &self.views_scratch,
            queued_jobs: self.qs.waiting_count(),
            next_request: self.next_request(),
        };
        let prof = self.lane.begin(SpanKind::PolicyDecision);
        let decisions = {
            let _span = Span::start(Arc::clone(&self.decision_hist));
            policy.on_job_completion(&ctx, job)
        };
        self.lane.end(prof);
        self.apply_decisions(decisions, DecisionTrigger::Completion);
        if self.is_time_shared() {
            self.recompute_all_rates();
        }
        self.try_admit(policy);
    }

    fn on_tick(&mut self) {
        match self.sharing {
            SharingModel::SpaceShared => return,
            SharingModel::TimeShared(p) => {
                let store = &self.store;
                let jobs: Vec<(JobId, usize)> = store
                    .ids_in_order()
                    .map(|id| (id, store.allocated(id)))
                    .collect();
                let changes = self.placement.advance(&jobs, p.affinity, &mut self.rng);
                for (cpu, occupant) in changes {
                    self.publish_cpu(cpu, occupant);
                }
            }
            SharingModel::Gang(_) => {
                // Rotate the matrix: the next gang owns the machine for this
                // slot; everything beyond its width idles. Dead processors
                // never host a gang member.
                if !self.store.is_empty() {
                    self.gang_slot = (self.gang_slot + 1) % self.store.len();
                    let job = self.store.id_at(self.gang_slot);
                    let width = self.store.allocated(job).min(self.placement.alive_cpus());
                    let mut granted = 0;
                    for c in 0..self.config.cpus {
                        let cpu = CpuId(c as u16);
                        let occupant = if self.placement.is_alive(cpu) && granted < width {
                            granted += 1;
                            Some(job)
                        } else {
                            None
                        };
                        self.publish_cpu(cpu, occupant);
                    }
                }
            }
        }
        // Keep ticking while work remains.
        if !self.qs.all_done() {
            let q = self.quantum().expect("ticks only under a quantum model");
            self.events.push(self.clock + q, Ev::Tick);
        }
    }

    // --- Fault handlers ---

    /// Publishes the new capacity level and re-drives the policy after a
    /// CPU failure or recovery. `changed` lists the jobs whose allocations
    /// the failure cut.
    fn drive_capacity_change(&mut self, changed: &[JobId], policy: &mut dyn SchedulingPolicy) {
        if self.obs_on {
            self.publish(ObsEvent::DegradedCapacity {
                alive: self.alive_cpus(),
                total: self.config.cpus,
            });
        }
        self.refresh_views();
        let ctx = PolicyCtx {
            now: self.clock,
            total_cpus: self.alive_cpus(),
            free_cpus: self.free_cpus(),
            jobs: &self.views_scratch,
            queued_jobs: self.qs.waiting_count(),
            next_request: self.next_request(),
        };
        let prof = self.lane.begin(SpanKind::PolicyDecision);
        let decisions = {
            let _span = Span::start(Arc::clone(&self.decision_hist));
            policy.on_capacity_change(&ctx, changed)
        };
        self.lane.end(prof);
        self.apply_decisions(decisions, DecisionTrigger::Fault);
        if self.is_time_shared() {
            self.recompute_all_rates();
        }
    }

    fn on_cpu_fail(&mut self, cpu: CpuId, policy: &mut dyn SchedulingPolicy) {
        let was_alive = if self.is_time_shared() {
            self.placement.is_alive(cpu)
        } else {
            self.machine.is_alive(cpu)
        };
        if !was_alive {
            // Overlapping plan elements: the CPU is already down.
            return;
        }
        self.cpu_failures += 1;
        if self.obs_on {
            self.publish(ObsEvent::CpuFailed { cpu });
        }
        let mut changed = Vec::new();
        match self.sharing {
            SharingModel::SpaceShared => {
                let victim = self.machine.fail_cpu(cpu);
                if let Some(job) = victim {
                    self.publish_cpu(cpu, None);
                    let now = self.clock;
                    let new_alloc = self.machine.allocation(job);
                    // Bank progress at the old rate before the revocation.
                    self.store.advance_to(job, now);
                    let eff_before = self.store.effective_procs(job);
                    self.store.set_allocated(job, new_alloc);
                    if self.store.effective_procs(job) != eff_before {
                        self.store.set_iter_polluted(job, true);
                    }
                    changed.push(job);
                    self.recompute_rate(job);
                    self.reschedule(job);
                }
            }
            SharingModel::TimeShared(_) | SharingModel::Gang(_) => {
                if self.placement.set_alive(cpu, false).is_some() {
                    self.publish_cpu(cpu, None);
                }
                // Thread counts are unchanged but every share shrank.
                self.recompute_all_rates();
            }
        }
        self.drive_capacity_change(&changed, policy);
    }

    fn on_cpu_recover(&mut self, cpu: CpuId, policy: &mut dyn SchedulingPolicy) {
        let was_dead = if self.is_time_shared() {
            let dead = !self.placement.is_alive(cpu);
            if dead {
                self.placement.set_alive(cpu, true);
                self.recompute_all_rates();
            }
            dead
        } else {
            self.machine.recover_cpu(cpu)
        };
        if !was_dead {
            return;
        }
        if self.obs_on {
            self.publish(ObsEvent::CpuRecovered { cpu });
        }
        self.drive_capacity_change(&[], policy);
        // Restored supply may unblock admission.
        self.try_admit(policy);
    }

    fn on_job_kill(&mut self, job: JobId, policy: &mut dyn SchedulingPolicy) {
        if !self.store.contains(job) {
            // You cannot crash what is not there (queued, done, or between
            // retries). The fault is dropped.
            return;
        }
        self.kill_job(job, policy, true);
    }

    /// Tears down a running job: releases its processors, removes it from
    /// the store, and either schedules a retry (fault-plan crashes, when
    /// the budget allows) or fails it terminally. `allow_retry` is false
    /// for explicit cancellation — a cancelled job never comes back.
    fn kill_job(&mut self, job: JobId, policy: &mut dyn SchedulingPolicy, allow_retry: bool) {
        let attempt = self.retries.get(&job).copied().unwrap_or(0) + 1;
        // Free the crashed job's resources — like a completion, but with no
        // outcome record: a retried job restarts from scratch.
        self.store.advance_to(job, self.clock);
        match self.sharing {
            SharingModel::SpaceShared => {
                let released = self.machine.release(job);
                for cpu in released {
                    self.publish_cpu(cpu, None);
                }
            }
            SharingModel::TimeShared(_) | SharingModel::Gang(_) => {
                for cpu in self.placement.evict(job) {
                    self.publish_cpu(cpu, None);
                }
            }
        }
        let memo = self.store.remove(job);
        self.memo_hits += memo.hits;
        self.memo_misses += memo.misses;
        // Invalidate the crashed incarnation's pending iteration event by
        // key: a retried job reuses its id, and generations never reset, so
        // the old prediction can never be mistaken for the new one.
        self.events.invalidate_key(u64::from(job.0));
        self.record_ml();

        let retry = self.config.faults.retry;
        if allow_retry && retry.is_some_and(|r| attempt <= r.max_retries) {
            let backoff = retry.expect("checked").backoff_for(attempt);
            self.retries.insert(job, attempt);
            self.job_retries += 1;
            if self.obs_on {
                self.publish(ObsEvent::JobRetried {
                    job,
                    attempt,
                    backoff_secs: backoff.as_secs(),
                });
            }
            self.events.push(self.clock + backoff, Ev::JobRetry(job));
        } else {
            self.jobs_failed += 1;
            if self.obs_on {
                self.publish(ObsEvent::JobFailed {
                    job,
                    attempts: attempt,
                });
            }
            self.qs.fail_terminal(job);
        }

        // The job departed: let the policy redistribute, then refill the
        // multiprogramming slot it vacated.
        self.refresh_views();
        let ctx = PolicyCtx {
            now: self.clock,
            total_cpus: self.alive_cpus(),
            free_cpus: self.free_cpus(),
            jobs: &self.views_scratch,
            queued_jobs: self.qs.waiting_count(),
            next_request: self.next_request(),
        };
        let prof = self.lane.begin(SpanKind::PolicyDecision);
        let decisions = {
            let _span = Span::start(Arc::clone(&self.decision_hist));
            policy.on_job_completion(&ctx, job)
        };
        self.lane.end(prof);
        self.apply_decisions(decisions, DecisionTrigger::Fault);
        if self.is_time_shared() {
            self.recompute_all_rates();
        }
        self.try_admit(policy);
    }

    fn on_job_retry(&mut self, job: JobId, policy: &mut dyn SchedulingPolicy) {
        self.qs.requeue(job);
        self.try_admit(policy);
    }

    pub(crate) fn into_result(mut self, policy_name: &str) -> RunResult {
        let completed_all = self.qs.all_done();
        // Memo stats of jobs still running at the simulation bound.
        let leftover = self.store.remaining_memo_stats();
        self.memo_hits += leftover.hits;
        self.memo_misses += leftover.misses;
        // Average allocation per class.
        let mut sums: HashMap<AppClass, (f64, usize)> = HashMap::new();
        for (class, avg) in &self.completed_allocs {
            let e = sums.entry(*class).or_insert((0.0, 0));
            e.0 += avg;
            e.1 += 1;
        }
        let avg_alloc_by_class = sums
            .into_iter()
            .map(|(c, (sum, n))| (c, sum / n as f64))
            .collect();
        let end = self.clock;
        let events_pushed = self.events.total_pushed();
        let events_popped = self.events.total_popped();
        let events_stale_dropped = self.events.stale_drops();
        pdpa_obs::metrics::record_engine_run(&RunCounters {
            events_pushed,
            events_popped,
            events_stale_dropped,
            decisions: self.decisions_applied,
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
        });
        RunResult {
            policy: policy_name.to_string(),
            summary: Summary::new(self.outcomes),
            trace: if self.config.collect_trace {
                Some(self.trace_obs.into_trace(end))
            } else {
                None
            },
            machine_stats: self.machine.stats(),
            timeshare_migrations: self.placement.migrations,
            quantum_rotations: self.quantum_rotations,
            ml_series: self.ml_series,
            max_ml: self.max_ml,
            avg_alloc_by_class,
            avg_alloc_by_job: self.completed_alloc_by_job,
            completed_all,
            end_secs: end.as_secs(),
            cpu_seconds_used: self.cpu_seconds_used,
            total_cpus: self.config.cpus,
            events_pushed,
            events_popped,
            events_stale_dropped,
            decisions_applied: self.decisions_applied,
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
            cpu_failures: self.cpu_failures,
            job_retries: self.job_retries,
            jobs_failed: self.jobs_failed,
            watchdog: None,
            shard_events_popped: Vec::new(),
            profile: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::paper::{apsi, bt_a, hydro2d};
    use pdpa_core::Pdpa;
    use pdpa_policies::Equipartition;
    use pdpa_qs::JobSpec;
    use pdpa_sim::CostModel;

    fn quiet_config() -> EngineConfig {
        EngineConfig {
            noise_sigma: 0.0,
            cost: CostModel::free(),
            ..EngineConfig::default()
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_job_completes_in_ideal_time_under_equip() {
        // One bt.A alone on the machine under Equipartition: it gets its
        // full request immediately and runs at the ideal rate, except for
        // the baseline iterations, which run at 2 processors.
        let jobs = vec![JobSpec::new(t(0.0), bt_a())];
        let r = Engine::new(quiet_config()).run(jobs, Box::new(Equipartition::default()));
        assert!(r.completed_all);
        let s = r.summary.class_averages(AppClass::BtA).unwrap();
        let spec = bt_a();
        // Ideal: all but the baseline iterations at S(30), the baseline
        // iterations at S(2).
        let baseline = 2.0;
        let ideal = spec.iter_time(30).unwrap().as_secs() * (spec.iterations as f64 - baseline)
            + spec.iter_time(2).unwrap().as_secs() * baseline;
        let got = s.avg_execution_secs;
        assert!(
            (got - ideal).abs() / ideal < 0.01,
            "got {got}, ideal {ideal}"
        );
    }

    #[test]
    fn two_jobs_split_under_equipartition() {
        let jobs = vec![JobSpec::new(t(0.0), bt_a()), JobSpec::new(t(0.0), bt_a())];
        let mut cfg = quiet_config();
        cfg.cpus = 40; // force contention: 2 × 30 > 40
        let r = Engine::new(cfg).run(jobs, Box::new(Equipartition::default()));
        assert!(r.completed_all);
        let avg = r.avg_alloc_by_class[&AppClass::BtA];
        assert!(
            (avg - 20.0).abs() < 1.5,
            "each job should average ≈ 20 processors, got {avg}"
        );
    }

    #[test]
    fn pdpa_shrinks_hydro2d_to_its_knee() {
        let jobs = vec![JobSpec::new(t(0.0), hydro2d())];
        let r = Engine::new(quiet_config()).run(jobs, Box::new(Pdpa::paper_default()));
        assert!(r.completed_all);
        let avg = r.avg_alloc_by_class[&AppClass::Hydro2d];
        // Starts at 30 (NO_REF), walks down to ≈ 10 and stays: the average
        // must land well below 30 and near the knee.
        assert!(avg < 20.0, "hydro2d average allocation {avg}");
    }

    #[test]
    fn pdpa_keeps_apsi_at_two() {
        let jobs = vec![JobSpec::new(t(0.0), apsi())];
        let r = Engine::new(quiet_config()).run(jobs, Box::new(Pdpa::paper_default()));
        assert!(r.completed_all);
        let avg = r.avg_alloc_by_class[&AppClass::Apsi];
        assert!((avg - 2.0).abs() < 0.2, "apsi stays at its request: {avg}");
    }

    #[test]
    fn response_time_includes_queue_wait() {
        // Five bt jobs, ML 1: strictly sequential.
        let jobs: Vec<JobSpec> = (0..3).map(|_| JobSpec::new(t(0.0), bt_a())).collect();
        let r = Engine::new(quiet_config()).run(jobs, Box::new(Equipartition::new(1)));
        assert!(r.completed_all);
        let s = r.summary.class_averages(AppClass::BtA).unwrap();
        assert!(
            s.avg_response_secs > s.avg_execution_secs + 10.0,
            "queued jobs wait: response {} vs exec {}",
            s.avg_response_secs,
            s.avg_execution_secs
        );
        assert_eq!(r.max_ml, 1);
    }

    #[test]
    fn determinism() {
        let make = || {
            vec![
                JobSpec::new(t(0.0), bt_a()),
                JobSpec::new(t(5.0), hydro2d()),
                JobSpec::new(t(9.0), apsi()),
            ]
        };
        let cfg = EngineConfig {
            seed: 1234,
            ..EngineConfig::default()
        };
        let a = Engine::new(cfg.clone()).run(make(), Box::new(Pdpa::paper_default()));
        let b = Engine::new(cfg).run(make(), Box::new(Pdpa::paper_default()));
        assert_eq!(a.end_secs, b.end_secs);
        assert_eq!(a.max_ml, b.max_ml);
        let ra: Vec<f64> = a
            .summary
            .outcomes()
            .iter()
            .map(|o| o.response_time().as_secs())
            .collect();
        let rb: Vec<f64> = b
            .summary
            .outcomes()
            .iter()
            .map(|o| o.response_time().as_secs())
            .collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn trace_collection_records_bursts() {
        let jobs = vec![JobSpec::new(t(0.0), apsi())];
        let cfg = quiet_config().with_trace();
        let r = Engine::new(cfg).run(jobs, Box::new(Equipartition::default()));
        let trace = r.trace.expect("trace enabled");
        assert!(!trace.records.is_empty());
        // apsi requests 2 processors: exactly 2 CPUs saw work.
        let busy_cpus: std::collections::HashSet<u16> =
            trace.records.iter().map(|rec| rec.cpu.0).collect();
        assert_eq!(busy_cpus.len(), 2);
    }

    #[test]
    fn machine_invariants_hold_throughout() {
        // A mixed workload under PDPA with reallocation churn; afterwards
        // the machine must be fully free.
        let jobs = vec![
            JobSpec::new(t(0.0), bt_a()),
            JobSpec::new(t(1.0), hydro2d()),
            JobSpec::new(t(2.0), apsi()),
            JobSpec::new(t(3.0), hydro2d()),
        ];
        let r = Engine::new(quiet_config()).run(jobs, Box::new(Pdpa::paper_default()));
        assert!(r.completed_all);
        assert_eq!(r.summary.jobs(), 4);
    }

    #[test]
    fn recording_observer_sees_the_job_lifecycle() {
        use pdpa_obs::RecordingObserver;
        let jobs = vec![JobSpec::new(t(0.0), hydro2d())];
        let mut rec = RecordingObserver::new();
        let r = Engine::new(quiet_config()).run_observed(
            jobs,
            Box::new(Pdpa::paper_default()),
            &mut rec,
        );
        assert!(r.completed_all);
        let events = rec.take_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
        // The lifecycle backbone, in order.
        let submit = kinds.iter().position(|&k| k == "submit").unwrap();
        let start = kinds.iter().position(|&k| k == "start").unwrap();
        let finish = kinds.iter().position(|&k| k == "finish").unwrap();
        assert!(submit < start && start < finish);
        // PDPA shrinks hydro2d: decisions with transitions are on the bus.
        assert!(events.iter().any(|e| matches!(
            e.event,
            ObsEvent::Decision {
                transition: Some(_),
                ..
            }
        )));
        assert!(kinds.contains(&"iter"));
        assert!(kinds.contains(&"mpl"));
        // Sequence numbers are strictly increasing (per-run monotonic).
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        // Engine counters made it into the result.
        assert!(r.decisions_applied > 0);
        assert!(r.memo_misses > 0);
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        use pdpa_obs::RecordingObserver;
        let make = || {
            vec![
                JobSpec::new(t(0.0), bt_a()),
                JobSpec::new(t(2.0), hydro2d()),
            ]
        };
        let a = Engine::new(quiet_config()).run(make(), Box::new(Pdpa::paper_default()));
        let mut rec = RecordingObserver::new();
        let b = Engine::new(quiet_config()).run_observed(
            make(),
            Box::new(Pdpa::paper_default()),
            &mut rec,
        );
        assert_eq!(a.end_secs, b.end_secs);
        assert_eq!(a.decisions_applied, b.decisions_applied);
        assert_eq!(a.events_popped, b.events_popped);
        assert_eq!(a.events_stale_dropped, b.events_stale_dropped);
        assert!(!rec.events().is_empty());
    }

    #[test]
    fn ml_series_tracks_admissions() {
        let jobs = vec![JobSpec::new(t(0.0), apsi()), JobSpec::new(t(0.0), apsi())];
        let r = Engine::new(quiet_config()).run(jobs, Box::new(Equipartition::default()));
        assert!(r.completed_all);
        assert_eq!(r.peak_ml(), 2);
        // The series starts at 0 and returns to 0.
        assert_eq!(r.ml_series.first().unwrap().1, 0);
        assert_eq!(r.ml_series.last().unwrap().1, 0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use pdpa_apps::paper::{apsi, bt_a, hydro2d};
    use pdpa_core::Pdpa;
    use pdpa_faults::{FaultPlan, RetryPolicy};
    use pdpa_policies::Equipartition;
    use pdpa_qs::JobSpec;
    use pdpa_sim::CostModel;

    fn quiet() -> EngineConfig {
        EngineConfig {
            noise_sigma: 0.0,
            cost: CostModel::free(),
            ..EngineConfig::default()
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn permanent_cpu_failure_shrinks_the_run() {
        // bt.A holds all 30 of its processors; losing 10 of the machine's 60
        // mid-run must not panic, and the run still drains.
        let mut plan = FaultPlan::none();
        for c in 0..10 {
            plan = plan.fail_cpu_at(CpuId(c), 50.0);
        }
        let jobs = vec![JobSpec::new(t(0.0), bt_a()), JobSpec::new(t(0.0), bt_a())];
        let mut cfg = quiet().with_faults(plan);
        cfg.cpus = 40; // 2 × 30 > 40: contention plus capacity loss
        let r = Engine::new(cfg).run(jobs, Box::new(Equipartition::default()));
        assert!(r.completed_all);
        assert_eq!(r.cpu_failures, 10);
    }

    #[test]
    fn failure_revokes_the_owners_cpu_and_policy_rebalances() {
        // One bt.A on a small machine: every CPU is owned, so the failure
        // dislodges the job. Equipartition's capacity hook re-deals over the
        // survivors and the job finishes on 7 processors.
        let plan = FaultPlan::none().fail_cpu_at(CpuId(3), 100.0);
        let jobs = vec![JobSpec::new(t(0.0), bt_a())];
        let cfg = quiet().with_cpus(8).with_faults(plan);
        let r = Engine::new(cfg).run(jobs, Box::new(Equipartition::default()));
        assert!(r.completed_all);
        assert_eq!(r.cpu_failures, 1);
    }

    #[test]
    fn recovery_restores_capacity() {
        let plan = FaultPlan::none().fail_cpu_between(CpuId(0), 50.0, 200.0);
        let jobs = vec![JobSpec::new(t(0.0), hydro2d())];
        let r = Engine::new(quiet().with_faults(plan)).run(jobs, Box::new(Pdpa::paper_default()));
        assert!(r.completed_all);
        assert_eq!(r.cpu_failures, 1);
    }

    #[test]
    fn job_crash_without_retry_is_terminal() {
        let plan = FaultPlan::none().fail_job_at(JobId(0), 100.0);
        let jobs = vec![JobSpec::new(t(0.0), bt_a()), JobSpec::new(t(0.0), apsi())];
        let r = Engine::new(quiet().with_faults(plan)).run(jobs, Box::new(Pdpa::paper_default()));
        // The workload drains: the crashed job counts as done (failed).
        assert!(r.completed_all);
        assert_eq!(r.jobs_failed, 1);
        assert_eq!(r.job_retries, 0);
        assert_eq!(r.summary.jobs(), 1, "only the survivor has an outcome");
    }

    #[test]
    fn job_crash_with_retry_restarts_and_completes() {
        let plan = FaultPlan::none()
            .fail_job_at(JobId(0), 100.0)
            .with_retry(RetryPolicy::default());
        let jobs = vec![JobSpec::new(t(0.0), apsi())];
        let r = Engine::new(quiet().with_faults(plan)).run(jobs, Box::new(Pdpa::paper_default()));
        assert!(r.completed_all);
        assert_eq!(r.job_retries, 1);
        assert_eq!(r.jobs_failed, 0);
        assert_eq!(r.summary.jobs(), 1, "the retried job completed");
        // The restart threw away 100 s of progress plus 30 s of backoff.
        assert!(r.end_secs > 130.0, "end at {:.0}s", r.end_secs);
    }

    #[test]
    fn repeated_crashes_exhaust_retries() {
        // Crash job 0 on every attempt: first run at 100 s, the two retries
        // at later instants (backoff 30 s then 60 s — crash right after each
        // restart). After max_retries = 2, the third crash is terminal.
        let plan = FaultPlan::none()
            .fail_job_at(JobId(0), 100.0)
            .fail_job_at(JobId(0), 140.0)
            .fail_job_at(JobId(0), 210.0)
            .with_retry(RetryPolicy::default());
        let jobs = vec![JobSpec::new(t(0.0), bt_a())];
        let r = Engine::new(quiet().with_faults(plan)).run(jobs, Box::new(Pdpa::paper_default()));
        assert!(r.completed_all, "terminal failure still drains the run");
        assert_eq!(r.job_retries, 2);
        assert_eq!(r.jobs_failed, 1);
        assert_eq!(r.summary.jobs(), 0);
    }

    #[test]
    fn crashing_a_queued_job_is_a_noop() {
        // Job 1 waits behind an ML-1 policy when the fault fires: nothing to
        // kill, the fault is dropped, and the job later runs to completion.
        let plan = FaultPlan::none().fail_job_at(JobId(1), 10.0);
        let jobs = vec![JobSpec::new(t(0.0), bt_a()), JobSpec::new(t(0.0), bt_a())];
        let r = Engine::new(quiet().with_faults(plan)).run(jobs, Box::new(Equipartition::new(1)));
        assert!(r.completed_all);
        assert_eq!(r.jobs_failed, 0);
        assert_eq!(r.summary.jobs(), 2);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        use pdpa_obs::RecordingObserver;
        let make = || {
            vec![
                JobSpec::new(t(0.0), bt_a()),
                JobSpec::new(t(5.0), hydro2d()),
                JobSpec::new(t(9.0), apsi()),
            ]
        };
        let plan = FaultPlan::none()
            .fail_cpu_between(CpuId(2), 60.0, 300.0)
            .fail_cpu_at(CpuId(40), 120.0)
            .fail_job_at(JobId(0), 70.0) // bt.A: long-running, still alive
            .with_retry(RetryPolicy::default());
        let cfg = quiet().with_faults(plan);
        let mut rec_a = RecordingObserver::new();
        let a = Engine::new(cfg.clone()).run_observed(
            make(),
            Box::new(Pdpa::paper_default()),
            &mut rec_a,
        );
        let mut rec_b = RecordingObserver::new();
        let b = Engine::new(cfg).run_observed(make(), Box::new(Pdpa::paper_default()), &mut rec_b);
        assert_eq!(a.end_secs, b.end_secs);
        assert_eq!(a.cpu_failures, b.cpu_failures);
        let lines_a: Vec<String> = rec_a.take_events().iter().map(|e| e.to_line()).collect();
        let lines_b: Vec<String> = rec_b.take_events().iter().map(|e| e.to_line()).collect();
        assert_eq!(lines_a, lines_b, "identical seeds, identical streams");
        let kinds: std::collections::HashSet<&str> = Vec::leak(lines_a)
            .iter()
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        assert!(kinds.contains("cpu_failed"));
        assert!(kinds.contains("cpu_recovered"));
        assert!(kinds.contains("degraded"));
        assert!(kinds.contains("retry"));
    }

    #[test]
    fn time_shared_capacity_loss_slows_but_completes() {
        use pdpa_policies::IrixLike;
        let mut plan = FaultPlan::none();
        for c in 0..20 {
            plan = plan.fail_cpu_at(CpuId(c), 100.0);
        }
        let jobs = vec![JobSpec::new(t(0.0), bt_a()), JobSpec::new(t(0.0), bt_a())];
        let degraded = Engine::new(quiet().with_faults(plan))
            .run(jobs.clone(), Box::new(IrixLike::paper_default()));
        let healthy = Engine::new(quiet()).run(
            vec![JobSpec::new(t(0.0), bt_a()), JobSpec::new(t(0.0), bt_a())],
            Box::new(IrixLike::paper_default()),
        );
        assert!(degraded.completed_all);
        assert!(
            degraded.end_secs > healthy.end_secs,
            "40 CPUs for 60 threads is slower than 60: {:.0} vs {:.0}",
            degraded.end_secs,
            healthy.end_secs
        );
    }

    #[test]
    fn gang_capacity_loss_slows_but_completes() {
        use pdpa_policies::GangScheduler;
        let mut plan = FaultPlan::none();
        for c in 0..30 {
            plan = plan.fail_cpu_at(CpuId(c), 50.0);
        }
        let jobs = vec![JobSpec::new(t(0.0), bt_a())];
        let r = Engine::new(quiet().with_faults(plan))
            .run(jobs, Box::new(GangScheduler::paper_comparable()));
        assert!(r.completed_all);
        assert_eq!(r.cpu_failures, 30);
    }

    #[test]
    fn every_policy_survives_a_chaos_plan() {
        use pdpa_policies::{GangScheduler, IrixLike, RigidFirstFit};
        let plan = || {
            FaultPlan::none()
                .fail_cpu_at(CpuId(0), 40.0)
                .fail_cpu_between(CpuId(10), 80.0, 400.0)
                .fail_job_at(JobId(0), 120.0)
                .with_retry(RetryPolicy::default())
        };
        let jobs = || {
            vec![
                JobSpec::new(t(0.0), bt_a()),
                JobSpec::new(t(3.0), hydro2d()),
                JobSpec::new(t(6.0), apsi()),
            ]
        };
        let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
            Box::new(Pdpa::paper_default()),
            Box::new(Equipartition::default()),
            Box::new(pdpa_policies::EqualEfficiency::paper_default()),
            Box::new(IrixLike::paper_default()),
            Box::new(GangScheduler::paper_comparable()),
            Box::new(RigidFirstFit::new(8)),
        ];
        for policy in policies {
            let name = policy.name();
            let cfg = quiet().with_faults(plan());
            let r = Engine::new(cfg).run(jobs(), policy);
            assert!(r.completed_all, "{name} drains under chaos");
            assert_eq!(r.cpu_failures, 2, "{name}");
        }
    }
}

#[cfg(test)]
mod phase_change_tests {
    use super::*;
    use pdpa_apps::{AppClass, ApplicationSpec, PiecewiseLinear};
    use pdpa_core::Pdpa;
    use pdpa_sim::{CostModel, SimDuration};
    use std::sync::Arc;

    /// An application with a clean efficiency knee at 12 processors whose
    /// iterations become 2.5× heavier halfway through the run.
    fn phased_app() -> ApplicationSpec {
        let curve =
            PiecewiseLinear::new(vec![(4, 3.8), (8, 7.2), (12, 9.5), (16, 10.5), (30, 11.0)]);
        ApplicationSpec::new(
            AppClass::Hydro2d,
            60,
            SimDuration::from_secs(4.0),
            30,
            Arc::new(curve),
            0.0,
        )
        .with_phase_change(30, 2.5)
    }

    fn run(reset: bool) -> crate::result::RunResult {
        let config = EngineConfig {
            noise_sigma: 0.0,
            cost: CostModel::free(),
            reset_analyzer_on_phase_change: reset,
            ..EngineConfig::default()
        };
        let jobs = vec![pdpa_qs::JobSpec::new(SimTime::ZERO, phased_app())];
        Engine::new(config).run(jobs, Box::new(Pdpa::paper_default()))
    }

    #[test]
    fn analyzer_reset_preserves_the_allocation_across_a_phase_change() {
        // With the reset, the analyzer re-baselines in the heavy phase and
        // keeps estimating correctly: the allocation stays near the knee.
        let with_reset = run(true);
        assert!(with_reset.completed_all);
        let alloc = with_reset.avg_alloc_by_class[&AppClass::Hydro2d];
        assert!(
            alloc > 8.0,
            "allocation should stay near the 12-processor knee, got {alloc:.1}"
        );
    }

    #[test]
    fn stale_baseline_misleads_pdpa_without_the_reset() {
        // Without the reset, the heavy phase looks like a 2.5× slowdown to
        // the stale baseline: estimated speedups collapse and PDPA shrinks
        // the application far below its true knee — the §3.1 failure mode.
        let without = run(false);
        assert!(without.completed_all);
        let with_reset = run(true);
        let a_without = without.avg_alloc_by_class[&AppClass::Hydro2d];
        let a_with = with_reset.avg_alloc_by_class[&AppClass::Hydro2d];
        assert!(
            a_without < a_with,
            "stale baseline should cost processors: {a_without:.1} vs {a_with:.1}"
        );
        // And the misallocation costs real time.
        assert!(without.end_secs > with_reset.end_secs);
    }
}

#[cfg(test)]
mod gang_tests {
    use super::*;
    use pdpa_apps::paper::{apsi, bt_a};
    use pdpa_policies::GangScheduler;
    use pdpa_qs::JobSpec;
    use pdpa_sim::CostModel;

    fn quiet() -> EngineConfig {
        EngineConfig {
            noise_sigma: 0.0,
            cost: CostModel::free(),
            ..EngineConfig::default()
        }
    }

    #[test]
    fn lone_gang_runs_at_nearly_full_speed() {
        let jobs = vec![JobSpec::new(SimTime::ZERO, bt_a())];
        let r = Engine::new(quiet()).run(jobs, Box::new(GangScheduler::paper_comparable()));
        assert!(r.completed_all);
        let spec = bt_a();
        let ideal = spec.iter_time(30).unwrap().as_secs() * (spec.iterations as f64 - 2.0)
            + spec.iter_time(2).unwrap().as_secs() * 2.0;
        let got = r.summary.outcomes()[0].execution_time().as_secs();
        // One gang: only the 5 % switch overhead on top of the ideal.
        let expected = ideal / 0.95;
        assert!(
            (got - expected).abs() / expected < 0.01,
            "got {got:.1}s, expected {expected:.1}s"
        );
    }

    #[test]
    fn two_gangs_halve_the_duty_cycle() {
        let jobs = vec![
            JobSpec::new(SimTime::ZERO, apsi()),
            JobSpec::new(SimTime::ZERO, apsi()),
        ];
        let r = Engine::new(quiet()).run(jobs, Box::new(GangScheduler::paper_comparable()));
        assert!(r.completed_all);
        // Each job runs half the time: execution roughly doubles vs a lone
        // run (apsi at its 2-processor width).
        let spec = apsi();
        let lone = spec.iter_time(2).unwrap().as_secs() * spec.iterations as f64;
        for o in r.summary.outcomes() {
            let got = o.execution_time().as_secs();
            let expected = lone * 2.0 / 0.95;
            assert!(
                (got - expected).abs() / expected < 0.1,
                "got {got:.1}s, expected ≈{expected:.1}s"
            );
        }
    }

    #[test]
    fn gang_trace_shows_whole_machine_rotation() {
        let jobs = vec![
            JobSpec::new(SimTime::ZERO, bt_a()),
            JobSpec::new(SimTime::ZERO, bt_a()),
        ];
        let config = quiet().with_trace();
        let r = Engine::new(config).run(jobs, Box::new(GangScheduler::paper_comparable()));
        assert!(r.completed_all);
        let trace = r.trace.expect("traced");
        // Rotation at the 2 s quantum: bursts are short and plentiful, and
        // both jobs appear on cpu0 over time.
        let jobs_on_cpu0: std::collections::HashSet<u32> = trace
            .records
            .iter()
            .filter(|rec| rec.cpu.0 == 0)
            .map(|rec| rec.job.0)
            .collect();
        assert_eq!(jobs_on_cpu0.len(), 2, "both gangs rotate through cpu0");
        let avg_burst: f64 = trace.records.iter().map(|r| r.duration_secs()).sum::<f64>()
            / trace.records.len() as f64;
        assert!(
            avg_burst < 10.0,
            "gang bursts are quantum-scale, got {avg_burst:.1}s"
        );
    }
}

#[cfg(test)]
mod backfill_tests {
    use super::*;
    use pdpa_apps::paper::{apsi, bt_a};
    use pdpa_policies::RigidFirstFit;
    use pdpa_qs::JobSpec;
    use pdpa_sim::CostModel;

    fn quiet() -> EngineConfig {
        // A 40-CPU machine: one 30-processor bt leaves 10 free, so the
        // second bt cannot start and blocks the queue.
        let mut c = EngineConfig::default().with_cpus(40);
        c.noise_sigma = 0.0;
        c.cost = CostModel::free();
        c
    }

    /// One 30-processor bt runs; a second bt (30) waits; a 2-processor apsi
    /// sits behind it. Strict FCFS strands 10 processors until the first bt
    /// finishes; backfilling slips the apsi through immediately.
    fn blocked_queue() -> Vec<JobSpec> {
        vec![
            JobSpec::new(SimTime::ZERO, bt_a()),
            JobSpec::new(SimTime::from_secs(1.0), bt_a()),
            JobSpec::new(SimTime::from_secs(2.0), apsi()),
        ]
    }

    #[test]
    fn strict_fcfs_blocks_the_small_job() {
        let r = Engine::new(quiet()).run(blocked_queue(), Box::new(RigidFirstFit::new(8)));
        assert!(r.completed_all);
        let apsi_outcome = r
            .summary
            .outcomes()
            .iter()
            .find(|o| o.class == AppClass::Apsi)
            .unwrap();
        // apsi waits behind the second bt, which waits for the first.
        assert!(
            apsi_outcome.wait_time().as_secs() > 50.0,
            "apsi waited only {:.1}s",
            apsi_outcome.wait_time().as_secs()
        );
    }

    #[test]
    fn backfilling_slips_the_small_job_through() {
        let config = quiet().with_backfill();
        let r = Engine::new(config).run(blocked_queue(), Box::new(RigidFirstFit::new(8)));
        assert!(r.completed_all);
        let apsi_outcome = r
            .summary
            .outcomes()
            .iter()
            .find(|o| o.class == AppClass::Apsi)
            .unwrap();
        assert!(
            apsi_outcome.wait_time().as_secs() < 5.0,
            "apsi backfilled, waited {:.1}s",
            apsi_outcome.wait_time().as_secs()
        );
        // The bypassed bt is not starved: it still completes.
        let bts = r
            .summary
            .outcomes()
            .iter()
            .filter(|o| o.class == AppClass::BtA)
            .count();
        assert_eq!(bts, 2);
    }

    #[test]
    fn backfill_is_a_noop_for_malleable_policies() {
        // Dynamic space sharing starts the head on whatever is free, so the
        // scan never reaches past it; results match strict FCFS.
        use pdpa_core::Pdpa;
        let a = Engine::new(quiet()).run(blocked_queue(), Box::new(Pdpa::paper_default()));
        let b = Engine::new(quiet().with_backfill())
            .run(blocked_queue(), Box::new(Pdpa::paper_default()));
        assert_eq!(a.end_secs, b.end_secs);
    }
}
