//! Incremental engine sessions: the admission API behind `pdpad`.
//!
//! [`Engine::run`](crate::Engine::run) executes a fixed workload to
//! completion in one call. A resident daemon needs the opposite shape —
//! an engine that *stays alive*, admits jobs as they arrive over the
//! wire, and advances simulated time in slices paced against the wall
//! clock. [`EngineSession`] is that shape: it owns the full simulation
//! state (`Sim<'static>` with an owned observer), and exposes three
//! primitives:
//!
//! - [`submit`](EngineSession::submit) — admit a job at instant `at`;
//! - [`cancel`](EngineSession::cancel) — remove a queued or running job;
//! - [`run_until`](EngineSession::run_until) — process every event due
//!   at or before a barrier.
//!
//! # Determinism contract
//!
//! Every op carries a monotone instant, and the session processes all
//! events at or before that instant *before* applying the op. Event-queue
//! sequence numbers (the FIFO tie-breaker) are then a pure function of
//! the op sequence, so re-applying a journal of `(at, op)` pairs to a
//! fresh session — followed by `run_until(barrier)` — reconstructs the
//! exact simulation state, decision stream included. That is the whole
//! snapshot/restore story of the daemon: a snapshot is the op journal
//! plus the barrier, not a serialized heap. Intermediate `run_until`
//! barriers need no journaling: state depends only on which events have
//! been processed, and that set is determined by the furthest barrier.
//!
//! Sessions refuse fault plans and CPU-trace collection — both schedule
//! events at construction time, which has no meaning for an initially
//! empty, open-ended workload.

use pdpa_apps::ApplicationSpec;
use pdpa_obs::Observer;
use pdpa_policies::SchedulingPolicy;
use pdpa_prof::{HealthSnapshot, Lane};
use pdpa_sim::{JobId, QueueStats, SimTime};

use crate::config::EngineConfig;
use crate::engine::{ObsSink, Sim};
use crate::result::RunResult;

pub use crate::engine::CancelOutcome;

/// A long-lived, incrementally driven engine run.
///
/// See the [module docs](self) for the determinism contract.
pub struct EngineSession {
    sim: Sim<'static>,
    policy: Box<dyn SchedulingPolicy>,
    policy_name: String,
    /// The furthest instant the session has been driven to — op instants
    /// and `run_until` barriers are clamped up to it, so session time
    /// never flows backwards.
    cursor: SimTime,
}

impl std::fmt::Debug for EngineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSession")
            .field("policy", &self.policy_name)
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl EngineSession {
    /// Opens a session: an empty workload under `policy`, publishing all
    /// decision events to `observer`.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations, fault plans, and trace collection.
    pub fn new(
        config: EngineConfig,
        policy: Box<dyn SchedulingPolicy>,
        observer: Box<dyn Observer>,
    ) -> Result<EngineSession, String> {
        config.validate()?;
        if !config.faults.is_empty() || config.faults.retry.is_some() {
            return Err("an engine session cannot run a fault plan".to_string());
        }
        if config.collect_trace {
            return Err("an engine session cannot collect a CPU trace".to_string());
        }
        let sharing = policy.sharing();
        let policy_name = policy.name().to_string();
        let sim = Sim::new(
            &config,
            Vec::new(),
            sharing,
            ObsSink::Owned(observer),
            Lane::disabled(),
        );
        Ok(EngineSession {
            sim,
            policy,
            policy_name,
            cursor: SimTime::ZERO,
        })
    }

    /// Submits `app` at instant `at` and returns `(effective_at, id)`.
    /// The instant is clamped up to the session cursor so submissions are
    /// always nondecreasing; the caller journals the *effective* instant,
    /// which makes replay a fixed point.
    pub fn submit(&mut self, at: SimTime, app: ApplicationSpec) -> (SimTime, JobId) {
        let at = self.advance_cursor(at);
        let job = self.sim.submit_at(at, app, self.policy.as_mut());
        (at, job)
    }

    /// Cancels `job` at instant `at` (clamped like [`submit`]); returns
    /// what the cancellation found, plus the effective instant.
    ///
    /// [`submit`]: EngineSession::submit
    pub fn cancel(&mut self, at: SimTime, job: JobId) -> (SimTime, CancelOutcome) {
        let at = self.advance_cursor(at);
        let outcome = self.sim.cancel_at(at, job, self.policy.as_mut());
        (at, outcome)
    }

    /// Processes every event due at or before `t` (no-op when `t` is
    /// behind the cursor); returns the number of events handled.
    pub fn run_until(&mut self, t: SimTime) -> u64 {
        let t = self.advance_cursor(t);
        self.sim.run_due(t, self.policy.as_mut())
    }

    /// Runs the session to quiescence: every event up to the configured
    /// `max_sim_secs` horizon. Returns the number of events handled.
    pub fn drain(&mut self) -> u64 {
        self.run_until(SimTime::from_secs(self.sim.config().max_sim_secs))
    }

    fn advance_cursor(&mut self, at: SimTime) -> SimTime {
        if at > self.cursor {
            self.cursor = at;
        }
        self.cursor
    }

    /// The furthest instant the session has been driven to — the barrier
    /// a snapshot must record.
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// The simulation clock (the instant of the last processed event).
    pub fn clock(&self) -> SimTime {
        self.sim.clock()
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        self.sim.config()
    }

    /// The scheduling policy's display name.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Event-queue traffic counters — part of a snapshot's integrity
    /// check: a restored session must reproduce them exactly.
    pub fn queue_stats(&self) -> QueueStats {
        self.sim.queue_stats()
    }

    /// Jobs submitted over the session's lifetime.
    pub fn total_jobs(&self) -> usize {
        self.sim.qs().total_jobs()
    }

    /// Jobs waiting in the admission queue.
    pub fn waiting_count(&self) -> usize {
        self.sim.qs().waiting_count()
    }

    /// Jobs currently running.
    pub fn running_count(&self) -> usize {
        self.sim.running_count()
    }

    /// Jobs completed.
    pub fn completed_count(&self) -> usize {
        self.sim.qs().completed_count()
    }

    /// Jobs failed terminally (cancellations included).
    pub fn failed_count(&self) -> usize {
        self.sim.qs().failed_count()
    }

    /// True when every submitted job has completed or failed.
    pub fn all_done(&self) -> bool {
        self.sim.qs().all_done()
    }

    /// A health snapshot in the same shape the batch engine feeds to
    /// heartbeats and live taps.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let stats = self.queue_stats();
        HealthSnapshot {
            sim_clock_secs: self.clock().as_secs(),
            events_popped: stats.popped,
            queue_len: stats.len,
            running: self.running_count(),
            waiting: self.waiting_count(),
            shard_events: Vec::new(),
        }
    }

    /// Closes the session and returns the run result over everything
    /// processed so far.
    pub fn finish(self) -> RunResult {
        self.sim.into_result(&self.policy_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::paper::{apsi, bt_a};
    use pdpa_core::Pdpa;
    use pdpa_obs::RecordingObserver;
    use pdpa_policies::Equipartition;
    use pdpa_qs::JobSpec;
    use pdpa_sim::CostModel;

    fn quiet_config() -> EngineConfig {
        EngineConfig {
            noise_sigma: 0.0,
            cost: CostModel::free(),
            ..EngineConfig::default()
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn session_rejects_faults_and_traces() {
        let mut cfg = quiet_config();
        cfg.faults.job_faults.push(pdpa_faults::JobFault {
            at: t(1.0),
            job: JobId(0),
        });
        assert!(EngineSession::new(
            cfg,
            Box::new(Equipartition::default()),
            Box::new(RecordingObserver::new()),
        )
        .is_err());
        let cfg = quiet_config().with_trace();
        assert!(EngineSession::new(
            cfg,
            Box::new(Equipartition::default()),
            Box::new(RecordingObserver::new()),
        )
        .is_err());
    }

    #[test]
    fn incremental_session_matches_batch_run() {
        // The tentpole invariant, at unit scale: a session fed the same
        // jobs at the same instants as a batch workload produces the
        // same outcome summary.
        let jobs = vec![
            JobSpec::new(t(0.0), bt_a()),
            JobSpec::new(t(50.0), apsi()),
            JobSpec::new(t(120.0), bt_a()),
        ];
        let batch =
            crate::Engine::new(quiet_config()).run(jobs.clone(), Box::new(Pdpa::paper_default()));

        let mut session = EngineSession::new(
            quiet_config(),
            Box::new(Pdpa::paper_default()),
            Box::new(RecordingObserver::new()),
        )
        .expect("valid session");
        for job in &jobs {
            session.submit(job.submit, job.app.clone());
        }
        session.drain();
        assert!(session.all_done());
        let live = session.finish();
        assert_eq!(
            live.summary.overall_avg_response_secs(),
            batch.summary.overall_avg_response_secs()
        );
        assert_eq!(live.decisions_applied, batch.decisions_applied);
    }

    #[test]
    fn submits_interleaved_with_run_until_are_order_stable() {
        // Driving the clock between submissions must not change the
        // outcome relative to submitting everything up front: the
        // determinism contract behind journal replay.
        let build = |interleave: bool| {
            let mut session = EngineSession::new(
                quiet_config(),
                Box::new(Pdpa::paper_default()),
                Box::new(RecordingObserver::new()),
            )
            .expect("valid session");
            session.submit(t(0.0), bt_a());
            if interleave {
                session.run_until(t(10.0));
                session.run_until(t(40.0));
            }
            session.submit(t(50.0), apsi());
            if interleave {
                session.run_until(t(60.0));
            }
            session.submit(t(120.0), bt_a());
            session.drain();
            session.finish()
        };
        let a = build(false);
        let b = build(true);
        assert_eq!(
            a.summary.overall_avg_response_secs(),
            b.summary.overall_avg_response_secs()
        );
        assert_eq!(a.decisions_applied, b.decisions_applied);
        assert_eq!(a.events_popped, b.events_popped);
    }

    #[test]
    fn cancel_covers_queued_running_and_unknown() {
        let mut session = EngineSession::new(
            quiet_config(),
            // ML 1: one job runs, the rest queue.
            Box::new(Equipartition::new(1)),
            Box::new(RecordingObserver::new()),
        )
        .expect("valid session");
        let (_, running) = session.submit(t(0.0), bt_a());
        let (_, queued) = session.submit(t(0.0), bt_a());
        session.run_until(t(1.0));
        assert_eq!(session.running_count(), 1);
        assert_eq!(session.waiting_count(), 1);

        let (_, outcome) = session.cancel(t(2.0), queued);
        assert_eq!(outcome, CancelOutcome::Queued);
        let (_, outcome) = session.cancel(t(3.0), running);
        assert_eq!(outcome, CancelOutcome::Running);
        let (_, outcome) = session.cancel(t(4.0), running);
        assert_eq!(outcome, CancelOutcome::NotFound, "already cancelled");
        let (_, outcome) = session.cancel(t(4.0), JobId(99));
        assert_eq!(outcome, CancelOutcome::NotFound, "never submitted");

        assert_eq!(session.failed_count(), 2);
        assert!(session.all_done());
        let result = session.finish();
        assert_eq!(
            result.jobs_failed, 2,
            "both cancellations are terminal failures"
        );
    }

    #[test]
    fn cursor_is_monotone_and_clamps_backdated_ops() {
        let mut session = EngineSession::new(
            quiet_config(),
            Box::new(Equipartition::default()),
            Box::new(RecordingObserver::new()),
        )
        .expect("valid session");
        session.run_until(t(100.0));
        assert_eq!(session.cursor(), t(100.0));
        let (at, _) = session.submit(t(5.0), apsi());
        assert_eq!(at, t(100.0), "backdated submit lands at the cursor");
        session.run_until(t(50.0));
        assert_eq!(session.cursor(), t(100.0), "barriers never move back");
    }
}
