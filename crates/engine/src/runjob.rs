//! Per-job runtime state inside the engine.

use pdpa_apps::{ApplicationSpec, Progress, SpeedupMemo};
use pdpa_perf::{PerfSample, SelfAnalyzer};
use pdpa_sim::{SimDuration, SimTime};

/// One running application instance.
#[derive(Clone, Debug)]
pub struct RunningJob {
    /// The application being executed.
    pub spec: ApplicationSpec,
    /// Progress through the iterative region.
    pub progress: Progress,
    /// The job's SelfAnalyzer instance.
    pub analyzer: SelfAnalyzer,
    /// Current allocation: dedicated processors under space sharing, kernel
    /// threads under time sharing.
    pub allocated: usize,
    /// Progress rate in iterations per second under the current effective
    /// processors (0 while stalled).
    pub rate: f64,
    /// When the job started executing.
    pub started_at: SimTime,
    /// When the current iteration began (for the timing measurement).
    pub iter_started_at: SimTime,
    /// Last instant `progress` was advanced to.
    pub advanced_to: SimTime,
    /// Integral of allocated processors over time (for average-allocation
    /// reporting).
    pub cpu_seconds: f64,
    /// The job's most recent performance estimate.
    pub last_sample: Option<PerfSample>,
    /// True when the current iteration's timing is polluted: the job's
    /// effective processor count changed mid-iteration, so the measured
    /// wall time mixes two allocations and must not drive policy decisions.
    pub iter_polluted: bool,
    /// Memoized integer points of `spec.speedup` — rate recomputation
    /// evaluates the curve at the same few allocations thousands of times.
    pub speedup_memo: SpeedupMemo,
}

impl RunningJob {
    /// Creates the runtime state for a job starting now.
    pub fn start(spec: ApplicationSpec, analyzer: SelfAnalyzer, now: SimTime) -> Self {
        let iterations = spec.iterations;
        RunningJob {
            spec,
            progress: Progress::new(iterations),
            analyzer,
            allocated: 0,
            rate: 0.0,
            started_at: now,
            iter_started_at: now,
            advanced_to: now,
            cpu_seconds: 0.0,
            last_sample: None,
            iter_polluted: false,
            speedup_memo: SpeedupMemo::new(),
        }
    }

    /// Advances progress (and the allocation integral) to `now` at the
    /// current rate. Returns the number of iteration boundaries crossed.
    pub fn advance_to(&mut self, now: SimTime) -> u32 {
        if now <= self.advanced_to {
            return 0;
        }
        let dt = now.since(self.advanced_to);
        self.cpu_seconds += self.allocated as f64 * dt.as_secs();
        self.advanced_to = now;
        self.progress.advance(dt, self.rate)
    }

    /// The processors the application actually uses right now: the
    /// SelfAnalyzer restrains the runtime to the baseline processors during
    /// the baseline phase (§3.1).
    pub fn effective_procs(&self) -> usize {
        self.analyzer.effective_procs(self.allocated)
    }

    /// Charges a reallocation penalty as progress debt.
    pub fn charge(&mut self, penalty: SimDuration) {
        self.progress.add_debt(penalty);
    }

    /// Time until the current iteration ends at the current rate.
    pub fn time_to_iteration_end(&self) -> Option<SimDuration> {
        self.progress.time_to_iteration_end(self.rate)
    }

    /// Average processors held over the job's lifetime so far.
    pub fn average_allocation(&self, now: SimTime) -> f64 {
        let lifetime = now.since(self.started_at).as_secs();
        if lifetime <= 0.0 {
            return self.allocated as f64;
        }
        // Include the un-integrated tail at the current allocation.
        let tail = now.since(self.advanced_to).as_secs();
        (self.cpu_seconds + self.allocated as f64 * tail) / lifetime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::paper::apsi;
    use pdpa_perf::SelfAnalyzerConfig;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn job() -> RunningJob {
        RunningJob::start(
            apsi(),
            SelfAnalyzer::new(SelfAnalyzerConfig::default()),
            t(10.0),
        )
    }

    #[test]
    fn starts_stalled() {
        let j = job();
        assert_eq!(j.allocated, 0);
        assert_eq!(j.rate, 0.0);
        assert!(j.time_to_iteration_end().is_none());
    }

    #[test]
    fn advance_integrates_cpu_seconds() {
        let mut j = job();
        j.allocated = 4;
        j.rate = 0.5;
        j.advance_to(t(12.0));
        assert_eq!(j.cpu_seconds, 8.0);
        assert_eq!(j.progress.iterations_done(), 1);
    }

    #[test]
    fn advance_is_idempotent_for_same_instant() {
        let mut j = job();
        j.allocated = 4;
        j.rate = 0.5;
        j.advance_to(t(12.0));
        assert_eq!(j.advance_to(t(12.0)), 0);
        assert_eq!(j.cpu_seconds, 8.0);
    }

    #[test]
    fn baseline_restrains_effective_procs() {
        let mut j = job();
        j.allocated = 30;
        assert_eq!(j.effective_procs(), 2, "baseline procs during baseline");
    }

    #[test]
    fn average_allocation_counts_tail() {
        let mut j = job();
        j.allocated = 6;
        // No advance calls: the whole lifetime is tail.
        assert!((j.average_allocation(t(20.0)) - 6.0).abs() < 1e-12);
        j.advance_to(t(20.0));
        j.allocated = 2;
        // 10 s at 6 procs + 10 s at 2 procs = 4 average.
        assert!((j.average_allocation(t(30.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn charge_adds_debt() {
        let mut j = job();
        j.allocated = 2;
        j.rate = 1.0;
        j.charge(SimDuration::from_secs(3.0));
        let eta = j.time_to_iteration_end().unwrap();
        assert!((eta.as_secs() - 4.0).abs() < 1e-12);
    }
}
