//! The hybrid application model: ranks, distribution strategies, folding.

use std::sync::Arc;

use pdpa_apps::SpeedupModel;
use pdpa_sim::SimDuration;

/// A rigid MPI application with malleable OpenMP parallelism inside each
/// rank.
///
/// One outer iteration is: every rank computes its load in parallel (OpenMP
/// threads on its share of processors), then all ranks synchronize at a
/// message exchange. Iteration time is therefore the *slowest rank* plus
/// the exchange cost — load imbalance directly becomes barrier wait, which
/// is what §6's per-rank processor control attacks.
#[derive(Clone)]
pub struct HybridSpec {
    /// Sequential compute per iteration of each rank (the imbalance lives
    /// here).
    pub rank_seq_time: Vec<SimDuration>,
    /// OpenMP speedup curve of a rank's compute region, as a function of
    /// the processors the rank gets.
    pub inner_speedup: Arc<dyn SpeedupModel>,
    /// Message-exchange (barrier) cost per iteration.
    pub exchange: SimDuration,
}

impl HybridSpec {
    /// Creates a hybrid application.
    ///
    /// # Panics
    ///
    /// Panics with no ranks.
    pub fn new(
        rank_seq_time: Vec<SimDuration>,
        inner_speedup: Arc<dyn SpeedupModel>,
        exchange: SimDuration,
    ) -> Self {
        assert!(!rank_seq_time.is_empty(), "an MPI application needs ranks");
        HybridSpec {
            rank_seq_time,
            inner_speedup,
            exchange,
        }
    }

    /// Number of MPI ranks (rigid).
    pub fn ranks(&self) -> usize {
        self.rank_seq_time.len()
    }

    /// Total sequential compute of one iteration.
    pub fn total_seq(&self) -> SimDuration {
        self.rank_seq_time.iter().copied().sum()
    }
}

/// How a processor grant is split among the ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankStrategy {
    /// Equal split (plain `OMP_NUM_THREADS`): ignores imbalance.
    Even,
    /// §6's first approach: processors follow the load — each additional
    /// processor goes to the rank that is currently the iteration's
    /// bottleneck.
    Balanced,
}

/// Splits `procs` processors among the ranks of `spec`.
///
/// With fewer processors than ranks the split degenerates to folding (see
/// [`iteration_time`]); each rank is assigned at most its fold share and
/// the vector contains zeros for ranks that share a processor.
pub fn distribute(spec: &HybridSpec, procs: usize, strategy: RankStrategy) -> Vec<usize> {
    let n = spec.ranks();
    if procs == 0 {
        return vec![0; n];
    }
    if procs < n {
        // Folding: one processor cannot be split; mark the first `procs`
        // ranks as owners, the rest run folded (handled by iteration_time).
        let mut alloc = vec![0; n];
        for a in alloc.iter_mut().take(procs) {
            *a = 1;
        }
        return alloc;
    }
    match strategy {
        RankStrategy::Even => {
            let base = procs / n;
            let extra = procs % n;
            (0..n).map(|i| base + usize::from(i < extra)).collect()
        }
        RankStrategy::Balanced => {
            // Everybody starts with one processor; each further processor
            // goes to the rank with the longest current compute time.
            let mut alloc = vec![1usize; n];
            let time = |i: usize, a: usize| -> f64 {
                spec.rank_seq_time[i].as_secs() / spec.inner_speedup.speedup(a).max(1e-12)
            };
            for _ in 0..(procs - n) {
                let bottleneck = (0..n)
                    .max_by(|&a, &b| {
                        time(a, alloc[a])
                            .partial_cmp(&time(b, alloc[b]))
                            .expect("times are finite")
                    })
                    .expect("at least one rank");
                alloc[bottleneck] += 1;
            }
            alloc
        }
    }
}

/// Wall-clock time of one iteration when the application holds `procs`
/// processors split per `strategy`.
///
/// With `procs ≥ ranks`, the iteration takes as long as the slowest rank's
/// OpenMP region, plus the exchange. With `procs < ranks` the processes are
/// *folded*: ranks are bound round-robin onto the available processors and
/// run sequentially within each processor (they yield at message reception,
/// so no time is lost spinning — §6's binding mechanism); the iteration
/// takes the most loaded processor's total.
pub fn iteration_time(spec: &HybridSpec, procs: usize, strategy: RankStrategy) -> SimDuration {
    let n = spec.ranks();
    if procs == 0 {
        return SimDuration::from_secs(f64::MAX / 4.0);
    }
    if procs < n {
        // Folding: round-robin binding, sequential execution per processor.
        let mut per_cpu = vec![0.0f64; procs];
        for (i, t) in spec.rank_seq_time.iter().enumerate() {
            per_cpu[i % procs] += t.as_secs();
        }
        let worst = per_cpu.iter().copied().fold(0.0f64, f64::max);
        return SimDuration::from_secs(worst) + spec.exchange;
    }
    let alloc = distribute(spec, procs, strategy);
    let worst = alloc
        .iter()
        .enumerate()
        .map(|(i, &a)| spec.rank_seq_time[i].as_secs() / spec.inner_speedup.speedup(a).max(1e-12))
        .fold(0.0f64, f64::max);
    SimDuration::from_secs(worst) + spec.exchange
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::Amdahl;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    /// Four ranks, one twice as loaded as the others.
    fn imbalanced() -> HybridSpec {
        HybridSpec::new(
            vec![secs(2.0), secs(1.0), secs(1.0), secs(1.0)],
            Arc::new(Amdahl::new(0.0)), // perfect inner scaling
            secs(0.1),
        )
    }

    #[test]
    fn even_split_ignores_imbalance() {
        let spec = imbalanced();
        let alloc = distribute(&spec, 8, RankStrategy::Even);
        assert_eq!(alloc, vec![2, 2, 2, 2]);
        // Iteration bound by the heavy rank: 2.0/2 + 0.1.
        let t = iteration_time(&spec, 8, RankStrategy::Even);
        assert!((t.as_secs() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn balanced_split_follows_the_load() {
        // Ten processors over loads 2:1:1:1 — the optimum is [4, 2, 2, 2]
        // (every rank at 0.5 s); the even split [3, 3, 2, 2] bottlenecks on
        // the heavy rank at 0.667 s.
        let spec = imbalanced();
        let alloc = distribute(&spec, 10, RankStrategy::Balanced);
        assert_eq!(alloc.iter().sum::<usize>(), 10);
        assert!(
            alloc[0] > alloc[1],
            "the heavy rank gets more processors: {alloc:?}"
        );
        let t_even = iteration_time(&spec, 10, RankStrategy::Even);
        let t_bal = iteration_time(&spec, 10, RankStrategy::Balanced);
        assert!(t_bal < t_even, "balanced {t_bal} vs even {t_even}");
        assert!(
            (t_bal.as_secs() - 0.6).abs() < 1e-9,
            "0.5 compute + 0.1 exchange"
        );
    }

    #[test]
    fn balanced_equals_even_when_balanced_already() {
        let spec = HybridSpec::new(vec![secs(1.0); 4], Arc::new(Amdahl::new(0.0)), secs(0.1));
        let t_even = iteration_time(&spec, 12, RankStrategy::Even);
        let t_bal = iteration_time(&spec, 12, RankStrategy::Balanced);
        assert!((t_even.as_secs() - t_bal.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn folding_binds_ranks_round_robin() {
        let spec = imbalanced(); // loads 2,1,1,1
                                 // Two processors: cpu0 gets ranks {0, 2} = 3.0 s, cpu1 gets {1, 3}
                                 // = 2.0 s; the iteration follows the most loaded processor.
        let t = iteration_time(&spec, 2, RankStrategy::Even);
        assert!((t.as_secs() - 3.1).abs() < 1e-12);
        // One processor: everything serializes.
        let t1 = iteration_time(&spec, 1, RankStrategy::Even);
        assert!((t1.as_secs() - 5.1).abs() < 1e-12);
    }

    #[test]
    fn folding_allocation_marks_owners() {
        let spec = imbalanced();
        let alloc = distribute(&spec, 2, RankStrategy::Balanced);
        assert_eq!(alloc, vec![1, 1, 0, 0]);
    }

    #[test]
    fn more_processors_never_hurt() {
        let spec = imbalanced();
        for strategy in [RankStrategy::Even, RankStrategy::Balanced] {
            let mut prev = iteration_time(&spec, 1, strategy);
            for p in 2..=32 {
                let t = iteration_time(&spec, p, strategy);
                assert!(
                    t <= prev + SimDuration::from_secs(1e-12),
                    "{strategy:?}: slower at {p} procs"
                );
                prev = t;
            }
        }
    }

    #[test]
    fn zero_processors_stall() {
        let spec = imbalanced();
        assert!(iteration_time(&spec, 0, RankStrategy::Even).as_secs() > 1e100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pdpa_apps::Amdahl;
    use proptest::prelude::*;

    proptest! {
        /// The distribution always hands out exactly the granted processors
        /// (or one per rank under folding) and never starves a rank when
        /// supply suffices.
        #[test]
        fn distribution_conserves_processors(
            loads in proptest::collection::vec(0.1f64..10.0, 1..12),
            procs in 0usize..64,
            balanced in proptest::bool::ANY,
        ) {
            let n = loads.len();
            let spec = HybridSpec::new(
                loads.iter().map(|&s| SimDuration::from_secs(s)).collect(),
                Arc::new(Amdahl::new(0.05)),
                SimDuration::from_secs(0.01),
            );
            let strategy = if balanced { RankStrategy::Balanced } else { RankStrategy::Even };
            let alloc = distribute(&spec, procs, strategy);
            prop_assert_eq!(alloc.len(), n);
            if procs >= n {
                prop_assert_eq!(alloc.iter().sum::<usize>(), procs);
                prop_assert!(alloc.iter().all(|&a| a >= 1));
            } else {
                prop_assert_eq!(alloc.iter().sum::<usize>(), procs);
            }
        }

        /// Balanced never loses to even: the bottleneck under Balanced is at
        /// most the bottleneck under Even.
        #[test]
        fn balanced_is_at_least_as_good(
            loads in proptest::collection::vec(0.1f64..10.0, 2..10),
            extra in 0usize..40,
        ) {
            let n = loads.len();
            let spec = HybridSpec::new(
                loads.iter().map(|&s| SimDuration::from_secs(s)).collect(),
                Arc::new(Amdahl::new(0.0)),
                SimDuration::ZERO,
            );
            let procs = n + extra;
            let t_even = iteration_time(&spec, procs, RankStrategy::Even);
            let t_bal = iteration_time(&spec, procs, RankStrategy::Balanced);
            prop_assert!(
                t_bal.as_secs() <= t_even.as_secs() + 1e-9,
                "balanced {} worse than even {}",
                t_bal.as_secs(), t_even.as_secs()
            );
        }
    }
}
