//! Adapter: a hybrid application as a [`SpeedupModel`].
//!
//! The scheduler does not need to know about ranks: it hands the
//! application `P` processors and observes iteration times. Wrapping the
//! hybrid model as a speedup curve lets a hybrid application run through
//! the existing engine/SelfAnalyzer/PDPA machinery as an ordinary
//! [`pdpa_apps::ApplicationSpec`] — which is precisely §6's point that
//! OpenMP-inside-MPI restores malleability.

use pdpa_apps::SpeedupModel;

use crate::model::{iteration_time, HybridSpec, RankStrategy};

/// The effective speedup of a hybrid application at any processor grant.
///
/// `S(p) = T(1) / T(p)` where `T` is the modelled iteration time (the
/// slowest rank or, when folded, the most loaded processor, plus the
/// exchange cost).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pdpa_apps::{Amdahl, SpeedupModel};
/// use pdpa_hybrid::{HybridSpec, HybridSpeedup, RankStrategy};
/// use pdpa_sim::SimDuration;
///
/// let spec = HybridSpec::new(
///     vec![SimDuration::from_secs(1.0); 4],
///     Arc::new(Amdahl::new(0.0)),
///     SimDuration::ZERO,
/// );
/// let model = HybridSpeedup::new(spec, RankStrategy::Balanced);
/// assert!((model.speedup(1) - 1.0).abs() < 1e-12);
/// assert!(model.speedup(8) > model.speedup(4));
/// ```
#[derive(Clone)]
pub struct HybridSpeedup {
    spec: HybridSpec,
    strategy: RankStrategy,
    /// Cached `T(1)` (full fold on one processor).
    t1: f64,
}

impl HybridSpeedup {
    /// Wraps `spec` with the given rank-distribution strategy.
    pub fn new(spec: HybridSpec, strategy: RankStrategy) -> Self {
        let t1 = iteration_time(&spec, 1, strategy).as_secs();
        HybridSpeedup { spec, strategy, t1 }
    }

    /// The wrapped specification.
    pub fn spec(&self) -> &HybridSpec {
        &self.spec
    }

    /// The distribution strategy in use.
    pub fn strategy(&self) -> RankStrategy {
        self.strategy
    }
}

impl SpeedupModel for HybridSpeedup {
    fn speedup(&self, p: usize) -> f64 {
        if p == 0 {
            return 0.0;
        }
        let t = iteration_time(&self.spec, p, self.strategy).as_secs();
        if t <= 0.0 {
            return 0.0;
        }
        self.t1 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdpa_apps::Amdahl;
    use pdpa_sim::SimDuration;
    use std::sync::Arc;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn spec() -> HybridSpec {
        HybridSpec::new(
            vec![secs(2.0), secs(1.0), secs(1.0), secs(1.0)],
            Arc::new(Amdahl::new(0.02)),
            secs(0.05),
        )
    }

    #[test]
    fn honors_the_speedup_contract() {
        let m = HybridSpeedup::new(spec(), RankStrategy::Balanced);
        assert_eq!(m.speedup(0), 0.0);
        assert!((m.speedup(1) - 1.0).abs() < 1e-12);
        for p in 1..=60 {
            assert!(m.speedup(p) > 0.0);
        }
    }

    #[test]
    fn folding_region_scales_with_processors() {
        let m = HybridSpeedup::new(spec(), RankStrategy::Even);
        // 1 → 2 → 4 processors inside the folding region: speedup grows.
        assert!(m.speedup(2) > m.speedup(1));
        assert!(m.speedup(4) > m.speedup(2));
    }

    #[test]
    fn balanced_strategy_dominates_even() {
        let even = HybridSpeedup::new(spec(), RankStrategy::Even);
        let balanced = HybridSpeedup::new(spec(), RankStrategy::Balanced);
        for p in 5..=40 {
            assert!(
                balanced.speedup(p) >= even.speedup(p) - 1e-9,
                "at {p} procs: balanced {} vs even {}",
                balanced.speedup(p),
                even.speedup(p)
            );
        }
    }

    #[test]
    fn imbalance_caps_even_efficiency() {
        // With one rank twice as loaded, Even's speedup saturates at
        // total/max·(…): extra processors on light ranks are wasted.
        let even = HybridSpeedup::new(spec(), RankStrategy::Even);
        let e16 = even.efficiency(16);
        let balanced = HybridSpeedup::new(spec(), RankStrategy::Balanced);
        let b16 = balanced.efficiency(16);
        assert!(b16 > e16, "balanced efficiency {b16} vs even {e16}");
    }
}
