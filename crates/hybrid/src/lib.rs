//! MPI+OpenMP hybrid applications — the paper's §6 future work, built out.
//!
//! "MPI are usually tight to a specific number of processors (i.e., the NAS
//! benchmarks). Introducing a second level of parallelism based on OpenMP
//! makes them more malleable. One first approach for MPI+OpenMP
//! applications is to control the number of processors given to each MPI
//! process to run OpenMP threads. This way, one can achieve better load
//! balancing of the work done for each MPI process. A second approach for
//! MPI applications is to limit the number of processors used by such
//! applications by folding their processes on a number of processors using
//! a binding mechanism … suggesting yields of the physical processor at
//! message reception."
//!
//! This crate models both approaches:
//!
//! - [`HybridSpec`] — a rigid set of MPI ranks, each with its own per-
//!   iteration compute load (imbalance is the interesting case) and an
//!   inner OpenMP speedup curve;
//! - [`RankStrategy`] — how a total processor grant is split among ranks:
//!   [`RankStrategy::Even`] (naive), [`RankStrategy::Balanced`] (§6's first
//!   approach: processors follow load to minimize the barrier wait), and
//!   folding (automatic whenever the grant is smaller than the rank count —
//!   §6's second approach);
//! - [`HybridSpeedup`] — an adapter implementing
//!   [`pdpa_apps::SpeedupModel`], so a hybrid application drops into the
//!   existing engine, SelfAnalyzer, and PDPA *unchanged*: the scheduler
//!   hands the application processors, the runtime distributes them among
//!   ranks internally.

pub mod model;
pub mod speedup;

pub use model::{distribute, iteration_time, HybridSpec, RankStrategy};
pub use speedup::HybridSpeedup;
