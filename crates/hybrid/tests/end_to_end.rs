//! Hybrid applications through the full scheduling stack.
//!
//! Section 6's point, demonstrated: wrapping an MPI application's ranks in
//! OpenMP makes it malleable enough that PDPA can schedule it like any
//! other iterative application — no engine or policy changes needed.

use std::sync::Arc;

use pdpa_apps::{Amdahl, AppClass, ApplicationSpec};
use pdpa_core::Pdpa;
use pdpa_engine::{Engine, EngineConfig};
use pdpa_hybrid::{HybridSpec, HybridSpeedup, RankStrategy};
use pdpa_qs::JobSpec;
use pdpa_sim::{SimDuration, SimTime};

/// An 8-rank hybrid application with 2:1 imbalance between the first and
/// the remaining ranks, wrapped as an ordinary ApplicationSpec.
fn hybrid_app(strategy: RankStrategy) -> ApplicationSpec {
    let mut loads = vec![SimDuration::from_secs(2.0)];
    loads.extend(std::iter::repeat_n(SimDuration::from_secs(1.0), 7));
    let spec = HybridSpec::new(
        loads,
        Arc::new(Amdahl::new(0.02)),
        SimDuration::from_millis(20.0),
    );
    let total_seq = spec.total_seq();
    // The outer iterative structure: 40 iterations of the exchange loop.
    // `seq_iter_time` is the one-processor (fully folded) iteration time so
    // that `iter_time(p) = seq / S(p)` reproduces the hybrid model's times.
    let speedup = HybridSpeedup::new(spec, strategy);
    let t1 = total_seq + SimDuration::from_millis(20.0);
    ApplicationSpec::new(
        AppClass::BtA, // class label only (metrics bucketing)
        40,
        t1,
        24,
        Arc::new(speedup),
        0.01,
    )
}

#[test]
fn pdpa_schedules_hybrid_apps_end_to_end() {
    let jobs = vec![
        JobSpec::new(SimTime::ZERO, hybrid_app(RankStrategy::Balanced)),
        JobSpec::new(SimTime::from_secs(5.0), hybrid_app(RankStrategy::Balanced)),
    ];
    let result = Engine::new(EngineConfig::default()).run(jobs, Box::new(Pdpa::paper_default()));
    assert!(result.completed_all, "hybrid jobs drain under PDPA");
    assert_eq!(result.summary.jobs(), 2);
    // PDPA found a non-degenerate allocation (more than the folded minimum,
    // bounded by the request).
    let avg = result.avg_alloc_by_class[&AppClass::BtA];
    assert!((2.0..=24.0).contains(&avg), "average allocation {avg:.1}");
}

#[test]
fn balanced_strategy_finishes_faster_under_the_same_policy() {
    let run = |strategy| {
        let jobs = vec![JobSpec::new(SimTime::ZERO, hybrid_app(strategy))];
        let config = EngineConfig {
            noise_sigma: 0.0,
            ..EngineConfig::default()
        };
        Engine::new(config)
            .run(jobs, Box::new(Pdpa::paper_default()))
            .summary
            .makespan_secs()
    };
    let even = run(RankStrategy::Even);
    let balanced = run(RankStrategy::Balanced);
    assert!(
        balanced <= even * 1.01,
        "balanced {balanced:.1}s vs even {even:.1}s"
    );
}

#[test]
fn folding_lets_a_wide_app_run_on_a_small_machine() {
    // 16 ranks on an 8-CPU machine: without folding this application could
    // not start at all; with folding it completes.
    let loads = vec![SimDuration::from_secs(0.5); 16];
    let spec = HybridSpec::new(
        loads,
        Arc::new(Amdahl::new(0.0)),
        SimDuration::from_millis(10.0),
    );
    let t1 = spec.total_seq() + SimDuration::from_millis(10.0);
    let speedup = HybridSpeedup::new(spec, RankStrategy::Balanced);
    let app = ApplicationSpec::new(AppClass::BtA, 20, t1, 8, Arc::new(speedup), 0.0);
    let jobs = vec![JobSpec::new(SimTime::ZERO, app)];
    let config = EngineConfig {
        cpus: 8,
        ..EngineConfig::default()
    };
    let result = Engine::new(config).run(jobs, Box::new(Pdpa::paper_default()));
    assert!(result.completed_all);
}
