//! Malleable iterative parallel application models.
//!
//! The paper evaluates PDPA with four OpenMP applications chosen for their
//! speedup shapes (Fig. 3):
//!
//! - **swim** (SpecFP95) — superlinear in the 8–16 processor range;
//! - **bt.A** (NAS Parallel Benchmarks) — good, progressive scalability;
//! - **hydro2d** (SpecFP95) — medium scalability, saturating early;
//! - **apsi** (SpecFP95) — does not scale at all.
//!
//! We cannot run the original binaries, so this crate models each one as a
//! *malleable iterative application*: a sequential outer loop whose
//! iterations each take `T1/S(p)` seconds on `p` processors, where `S` is a
//! speedup curve calibrated to the figure and `T1` is the sequential time of
//! one iteration calibrated so that execution times land in the ranges the
//! paper's tables report. The scheduling policies only ever observe measured
//! iteration times — exactly what the NANOS SelfAnalyzer gives them on real
//! hardware — so the substitution exercises identical policy code paths.

pub mod app;
pub mod class;
pub mod noise;
pub mod paper;
pub mod speedup;

pub use app::{ApplicationSpec, PhaseChange, Progress};
pub use class::AppClass;
pub use noise::NoiseModel;
pub use paper::{apsi, bt_a, hydro2d, paper_app, swim};
pub use speedup::{
    Amdahl, Downey, Gustafson, PiecewiseLinear, SpeedupMemo, SpeedupModel, Superlinear,
};
