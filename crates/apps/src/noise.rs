//! Measurement noise model.
//!
//! On real hardware, iteration timings jitter with cache state, page
//! placement, and interference from other jobs. The paper leans on this:
//! Equal_efficiency "is too sensitive to small changes in the efficiency
//! measurements — small variations in the efficiency generate high variances
//! in the processor allocation" (§5.1). A simulator with noiseless timings
//! would hide that failure mode, so measured iteration times are perturbed
//! multiplicatively before any policy sees them.

use pdpa_sim::{SimDuration, SimRng};

/// Multiplicative timing noise: `t_measured = t_true · (1 + ε)` with
/// `ε ~ N(0, σ)`, truncated so the factor stays positive.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    sigma: f64,
}

impl NoiseModel {
    /// Noise with relative standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or ≥ 0.5 (which would make negative
    /// times plausible).
    pub fn new(sigma: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&sigma),
            "noise sigma must be in [0, 0.5), got {sigma}"
        );
        NoiseModel { sigma }
    }

    /// The default calibration: 2 % relative jitter, matching quiet-machine
    /// variance for iteration-scale timings.
    pub fn default_jitter() -> Self {
        NoiseModel::new(0.02)
    }

    /// No noise (for tests that need exact timings).
    pub fn none() -> Self {
        NoiseModel { sigma: 0.0 }
    }

    /// The configured relative standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Perturbs a true duration into a measured one.
    pub fn perturb(&self, truth: SimDuration, rng: &mut SimRng) -> SimDuration {
        if self.sigma == 0.0 {
            return truth;
        }
        // Clamp at ±3σ: keeps the factor positive and avoids pathological
        // single-sample outliers that no real timer would produce.
        let eps = rng
            .normal(0.0, self.sigma)
            .clamp(-3.0 * self.sigma, 3.0 * self.sigma);
        SimDuration::from_secs(truth.as_secs() * (1.0 + eps))
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::default_jitter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let n = NoiseModel::none();
        let mut rng = SimRng::new(1);
        let t = SimDuration::from_secs(5.0);
        assert_eq!(n.perturb(t, &mut rng), t);
    }

    #[test]
    fn noise_is_unbiased_and_bounded() {
        let n = NoiseModel::new(0.05);
        let mut rng = SimRng::new(2);
        let t = SimDuration::from_secs(10.0);
        let k = 20_000;
        let mut sum = 0.0;
        for _ in 0..k {
            let m = n.perturb(t, &mut rng).as_secs();
            assert!(m > 10.0 * (1.0 - 0.16), "measured {m} below -3σ bound");
            assert!(m < 10.0 * (1.0 + 0.16), "measured {m} above +3σ bound");
            sum += m;
        }
        let mean = sum / k as f64;
        assert!((mean - 10.0).abs() < 0.05, "biased mean {mean}");
    }

    #[test]
    #[should_panic(expected = "noise sigma")]
    fn rejects_huge_sigma() {
        let _ = NoiseModel::new(0.5);
    }
}
