//! Speedup models.
//!
//! A speedup model maps a processor count to the factor by which the
//! application runs faster than on one processor. All models satisfy the
//! basic contract `S(0) = 0`, `S(1) = 1`, and `S(p) > 0` for `p ≥ 1`; they
//! are *not* required to be monotone (real applications can slow down past
//! their sweet spot, and apsi in the paper barely moves).

/// A map from processor count to speedup over the sequential execution.
pub trait SpeedupModel: Send + Sync {
    /// Speedup with `p` processors. Must return 0 for `p = 0` and 1 for
    /// `p = 1`.
    fn speedup(&self, p: usize) -> f64;

    /// Efficiency with `p` processors: `S(p)/p` (0 when `p = 0`).
    fn efficiency(&self, p: usize) -> f64 {
        if p == 0 {
            0.0
        } else {
            self.speedup(p) / p as f64
        }
    }

    /// The execution-time ratio `T(p_from)/T(p_to) = S(p_to)/S(p_from)`.
    ///
    /// This is the paper's *RelativeSpeedup* quantity (§4.2.2) computed from
    /// ground truth; the policies compute it from measurements instead.
    fn relative_speedup(&self, p_from: usize, p_to: usize) -> f64 {
        let from = self.speedup(p_from);
        if from == 0.0 {
            return 0.0;
        }
        self.speedup(p_to) / from
    }

    /// The smallest processor count in `1..=max_p` whose efficiency is still
    /// at least `target`, scanning downward from `max_p`; i.e. the largest
    /// allocation an efficiency-targeted policy would settle on.
    fn max_procs_at_efficiency(&self, target: f64, max_p: usize) -> usize {
        (1..=max_p)
            .rev()
            .find(|&p| self.efficiency(p) >= target)
            .unwrap_or(1)
    }

    /// The last processor count at which the curve is *defined* by data
    /// rather than extrapolation, if the model has one. Interpolators clamp
    /// fractional processor counts to this bound instead of reading past
    /// the curve's end. Closed-form models (`None`) are defined everywhere.
    fn max_defined_procs(&self) -> Option<usize> {
        None
    }
}

/// Amdahl's law: `S(p) = 1 / (serial + (1 - serial)/p)`.
#[derive(Clone, Copy, Debug)]
pub struct Amdahl {
    /// Serial fraction of the execution, in `[0, 1]`.
    pub serial_fraction: f64,
}

impl Amdahl {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `serial_fraction` is in `[0, 1]`.
    pub fn new(serial_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&serial_fraction),
            "serial fraction must be in [0, 1]"
        );
        Amdahl { serial_fraction }
    }
}

impl SpeedupModel for Amdahl {
    fn speedup(&self, p: usize) -> f64 {
        if p == 0 {
            return 0.0;
        }
        1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / p as f64)
    }
}

/// Gustafson's law: `S(p) = p - serial * (p - 1)` (scaled speedup).
#[derive(Clone, Copy, Debug)]
pub struct Gustafson {
    /// Serial fraction of the scaled execution, in `[0, 1]`.
    pub serial_fraction: f64,
}

impl Gustafson {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `serial_fraction` is in `[0, 1]`.
    pub fn new(serial_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&serial_fraction),
            "serial fraction must be in [0, 1]"
        );
        Gustafson { serial_fraction }
    }
}

impl SpeedupModel for Gustafson {
    fn speedup(&self, p: usize) -> f64 {
        if p == 0 {
            return 0.0;
        }
        p as f64 - self.serial_fraction * (p as f64 - 1.0)
    }
}

/// Downey's parallel speedup model (Downey, "A model for speedup of
/// parallel programs", 1997): a program is characterized by its *average
/// parallelism* `A` and its *variance of parallelism* `sigma`. For the
/// low-variance case (`sigma ≤ 1`) the speedup is piecewise:
///
/// ```text
/// S(n) = A·n / (A + sigma/2·(n − 1))          for 1 ≤ n ≤ A
/// S(n) = A·n / (sigma·(A − 1/2) + n·(1 − sigma/2))   for A ≤ n ≤ 2A − 1
/// S(n) = A                                     for n ≥ 2A − 1
/// ```
///
/// With `sigma = 0` this is ideal speedup capped at `A`; growing `sigma`
/// rounds the knee. The related-work schedulers (Sevcik, Chiang et al.)
/// characterize applications exactly this way, which is why the model is
/// provided alongside the measured-curve machinery.
#[derive(Clone, Copy, Debug)]
pub struct Downey {
    /// Average parallelism (asymptotic speedup), > 1.
    pub avg_parallelism: f64,
    /// Variance of parallelism, in `[0, 1]` for this implementation.
    pub sigma: f64,
}

impl Downey {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `avg_parallelism > 1` and `sigma` is in `[0, 1]`.
    pub fn new(avg_parallelism: f64, sigma: f64) -> Self {
        assert!(avg_parallelism > 1.0, "average parallelism must exceed 1");
        assert!(
            (0.0..=1.0).contains(&sigma),
            "this implementation covers the low-variance case sigma in [0, 1]"
        );
        Downey {
            avg_parallelism,
            sigma,
        }
    }
}

impl SpeedupModel for Downey {
    fn speedup(&self, p: usize) -> f64 {
        if p == 0 {
            return 0.0;
        }
        let n = p as f64;
        let a = self.avg_parallelism;
        let s = self.sigma;
        if n <= a {
            (a * n) / (a + s / 2.0 * (n - 1.0))
        } else if n <= 2.0 * a - 1.0 {
            (a * n) / (s * (a - 0.5) + n * (1.0 - s / 2.0))
        } else {
            a
        }
    }
}

/// A speedup curve defined by linear interpolation between control points.
///
/// This is how the four paper applications are modelled: control points are
/// read off the shapes of Fig. 3. Outside the last control point the curve
/// is flat (allocating more processors neither helps nor hurts).
#[derive(Clone, Debug)]
pub struct PiecewiseLinear {
    /// `(processors, speedup)` control points, strictly increasing in `p`.
    points: Vec<(usize, f64)>,
}

impl PiecewiseLinear {
    /// Builds the curve from control points.
    ///
    /// The point `(1, 1.0)` is inserted automatically if missing.
    ///
    /// # Panics
    ///
    /// Panics if points are not strictly increasing in `p`, if any speedup
    /// is non-positive, or if no points are given.
    pub fn new(mut points: Vec<(usize, f64)>) -> Self {
        assert!(!points.is_empty(), "need at least one control point");
        if points.first().map(|&(p, _)| p) != Some(1) {
            points.insert(0, (1, 1.0));
        }
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "control points must be strictly increasing in p"
            );
        }
        assert!(
            points.iter().all(|&(_, s)| s > 0.0),
            "speedups must be positive"
        );
        PiecewiseLinear { points }
    }

    /// The control points, including the implicit `(1, 1.0)`.
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }
}

impl SpeedupModel for PiecewiseLinear {
    fn speedup(&self, p: usize) -> f64 {
        if p == 0 {
            return 0.0;
        }
        let pts = &self.points;
        if p <= pts[0].0 {
            // Below the first control point: interpolate from (0, 0).
            return pts[0].1 * p as f64 / pts[0].0 as f64;
        }
        for w in pts.windows(2) {
            let (p0, s0) = w[0];
            let (p1, s1) = w[1];
            if p <= p1 {
                let t = (p - p0) as f64 / (p1 - p0) as f64;
                return s0 + t * (s1 - s0);
            }
        }
        // Beyond the last point the curve is flat.
        pts.last().expect("non-empty").1
    }

    fn max_defined_procs(&self) -> Option<usize> {
        Some(self.points.last().expect("non-empty").0)
    }
}

/// A superlinear curve modelling cache effects: once the working set fits in
/// the aggregate cache of `p` processors, per-processor work speeds up by a
/// cache bonus, producing efficiency above 1 in a processor range — the
/// behaviour the paper describes for swim.
#[derive(Clone, Debug)]
pub struct Superlinear {
    /// Processor count at which the working set starts fitting in cache.
    pub fit_start: usize,
    /// Processor count by which the whole working set is cache resident.
    pub fit_end: usize,
    /// Speedup multiplier once fully cache resident (> 1).
    pub cache_bonus: f64,
    /// Underlying Amdahl serial fraction.
    pub serial_fraction: f64,
}

impl Superlinear {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `fit_start >= fit_end` or `cache_bonus <= 1`.
    pub fn new(fit_start: usize, fit_end: usize, cache_bonus: f64, serial_fraction: f64) -> Self {
        assert!(fit_start < fit_end, "cache fit range is empty");
        assert!(cache_bonus > 1.0, "cache bonus must exceed 1");
        Superlinear {
            fit_start,
            fit_end,
            cache_bonus,
            serial_fraction,
        }
    }

    fn bonus(&self, p: usize) -> f64 {
        if p <= self.fit_start {
            1.0
        } else if p >= self.fit_end {
            self.cache_bonus
        } else {
            let t = (p - self.fit_start) as f64 / (self.fit_end - self.fit_start) as f64;
            1.0 + t * (self.cache_bonus - 1.0)
        }
    }
}

impl SpeedupModel for Superlinear {
    fn speedup(&self, p: usize) -> f64 {
        if p == 0 {
            return 0.0;
        }
        if p == 1 {
            return 1.0;
        }
        let amdahl = Amdahl::new(self.serial_fraction).speedup(p);
        amdahl * self.bonus(p)
    }
}

/// A lazily-filled lookup table over a [`SpeedupModel`]'s integer points.
///
/// The engine evaluates a job's speedup curve on every rate recomputation —
/// thousands of times per job under time sharing, always at the same few
/// integer processor counts (allocations take values `1..=cpus`). Models
/// like [`Downey`] and [`Superlinear`] do real floating-point work per
/// call, so each job carries one of these and pays for every distinct
/// point once.
///
/// `NaN` marks an unfilled slot; no model may return `NaN` for a valid
/// processor count (all built-in models return finite values).
#[derive(Clone, Debug, Default)]
pub struct SpeedupMemo {
    cache: Vec<f64>,
    hits: u64,
    misses: u64,
}

impl SpeedupMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        SpeedupMemo::default()
    }

    /// `model.speedup(p)`, computed at most once per `p`.
    pub fn speedup(&mut self, model: &dyn SpeedupModel, p: usize) -> f64 {
        if p >= self.cache.len() {
            self.cache.resize(p + 1, f64::NAN);
        }
        if self.cache[p].is_nan() {
            self.cache[p] = model.speedup(p);
            self.misses += 1;
        } else {
            self.hits += 1;
        }
        self.cache[p]
    }

    /// Lifetime `(hits, misses)` of the memo — the hit rate is the whole
    /// point of the cache, so it is exported as an engine metric.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Speedup at a fractional processor count, by linear interpolation
    /// between the memoized integer points (the same interpolation as
    /// `pdpa_engine::timeshare::fractional_speedup`). Fractional counts
    /// past the model's last defined point are clamped to it rather than
    /// interpolated into extrapolated territory.
    pub fn fractional(&mut self, model: &dyn SpeedupModel, procs: f64) -> f64 {
        if procs <= 0.0 {
            return 0.0;
        }
        let procs = match model.max_defined_procs() {
            Some(max) => procs.min(max as f64),
            None => procs,
        };
        let lo = procs.floor() as usize;
        let hi = procs.ceil() as usize;
        if lo == hi {
            return self.speedup(model, lo);
        }
        let t = procs - lo as f64;
        self.speedup(model, lo) * (1.0 - t) + self.speedup(model, hi) * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_contract(m: &dyn SpeedupModel) {
        assert_eq!(m.speedup(0), 0.0);
        assert!((m.speedup(1) - 1.0).abs() < 1e-12, "S(1) must be 1");
        for p in 1..=64 {
            assert!(m.speedup(p) > 0.0, "S({p}) must be positive");
        }
    }

    #[test]
    fn amdahl_contract_and_limit() {
        let m = Amdahl::new(0.05);
        check_contract(&m);
        // The asymptote is 1/serial.
        assert!(m.speedup(10_000) < 20.0);
        assert!(m.speedup(10_000) > 19.0);
    }

    #[test]
    fn amdahl_zero_serial_is_linear() {
        let m = Amdahl::new(0.0);
        for p in 1..=32 {
            assert!((m.speedup(p) - p as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn downey_contract_and_shape() {
        let m = Downey::new(16.0, 0.5);
        check_contract(&m);
        // Saturates at the average parallelism.
        assert!((m.speedup(64) - 16.0).abs() < 1e-12);
        // Zero variance is ideal speedup capped at A.
        let ideal = Downey::new(8.0, 0.0);
        for p in 1..=8 {
            assert!((ideal.speedup(p) - p as f64).abs() < 1e-9);
        }
        assert!((ideal.speedup(30) - 8.0).abs() < 1e-12);
        // Higher variance bends the curve down everywhere below saturation.
        let soft = Downey::new(16.0, 1.0);
        let hard = Downey::new(16.0, 0.1);
        for p in 2..=16 {
            assert!(soft.speedup(p) < hard.speedup(p));
        }
    }

    #[test]
    fn downey_is_monotone() {
        for &sigma in &[0.0, 0.3, 0.7, 1.0] {
            let m = Downey::new(12.0, sigma);
            for p in 1..64 {
                assert!(
                    m.speedup(p + 1) >= m.speedup(p) - 1e-9,
                    "sigma {sigma}: S({}) < S({p})",
                    p + 1
                );
            }
        }
    }

    #[test]
    fn gustafson_contract() {
        let m = Gustafson::new(0.1);
        check_contract(&m);
        assert!((m.speedup(10) - 9.1).abs() < 1e-12);
    }

    #[test]
    fn piecewise_interpolates() {
        let m = PiecewiseLinear::new(vec![(4, 4.0), (8, 6.0)]);
        check_contract(&m);
        assert!((m.speedup(6) - 5.0).abs() < 1e-12);
        // Flat beyond the last point.
        assert_eq!(m.speedup(100), 6.0);
        // Below the first explicit point, through (1, 1).
        assert!((m.speedup(2) - 2.0).abs() < 1e-12, "{}", m.speedup(2));
    }

    #[test]
    fn piecewise_inserts_unit_point() {
        let m = PiecewiseLinear::new(vec![(4, 4.0)]);
        assert_eq!(m.points()[0], (1, 1.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_rejects_unordered_points() {
        let _ = PiecewiseLinear::new(vec![(8, 4.0), (4, 2.0)]);
    }

    #[test]
    fn superlinear_exceeds_unit_efficiency_in_fit_range() {
        let m = Superlinear::new(8, 16, 1.6, 0.01);
        check_contract(&m);
        assert!(
            m.efficiency(16) > 1.0,
            "efficiency at 16 procs: {}",
            m.efficiency(16)
        );
        assert!(m.efficiency(2) <= 1.0);
    }

    #[test]
    fn efficiency_definition() {
        let m = Amdahl::new(0.0);
        assert_eq!(m.efficiency(0), 0.0);
        assert!((m.efficiency(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_speedup_matches_time_ratio() {
        let m = Amdahl::new(0.1);
        let rs = m.relative_speedup(4, 8);
        assert!((rs - m.speedup(8) / m.speedup(4)).abs() < 1e-12);
        assert_eq!(m.relative_speedup(0, 8), 0.0);
    }

    #[test]
    fn max_procs_at_efficiency_finds_knee() {
        // Linear speedup: every allocation is 100 % efficient.
        let linear = Amdahl::new(0.0);
        assert_eq!(linear.max_procs_at_efficiency(0.9, 32), 32);
        // A saturating curve: the knee is somewhere in the middle.
        let m = PiecewiseLinear::new(vec![(10, 9.0), (20, 10.0)]);
        let knee = m.max_procs_at_efficiency(0.7, 32);
        assert!(m.efficiency(knee) >= 0.7);
        assert!(knee < 20, "knee {knee} should precede saturation");
        // Impossible target degrades to one processor.
        assert_eq!(m.max_procs_at_efficiency(2.0, 32), 1);
    }

    #[test]
    fn memo_matches_direct_evaluation() {
        let m = Downey::new(12.0, 0.5);
        let mut memo = SpeedupMemo::new();
        for p in 0..=64 {
            assert_eq!(memo.speedup(&m, p), m.speedup(p), "p={p}");
            // Second lookup hits the cache and must agree.
            assert_eq!(memo.speedup(&m, p), m.speedup(p), "p={p} (cached)");
        }
    }

    #[test]
    fn memo_counts_hits_and_misses() {
        let m = Amdahl::new(0.1);
        let mut memo = SpeedupMemo::new();
        memo.speedup(&m, 4);
        memo.speedup(&m, 4);
        memo.speedup(&m, 8);
        assert_eq!(memo.stats(), (1, 2));
    }

    #[test]
    fn memo_fractional_interpolates() {
        let m = Amdahl::new(0.0); // S(p) = p
        let mut memo = SpeedupMemo::new();
        assert_eq!(memo.fractional(&m, 0.0), 0.0);
        assert_eq!(memo.fractional(&m, 4.0), 4.0);
        assert!((memo.fractional(&m, 4.5) - 4.5).abs() < 1e-12);
        assert!((memo.fractional(&m, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_defined_procs_only_for_measured_curves() {
        assert_eq!(Amdahl::new(0.1).max_defined_procs(), None);
        assert_eq!(Downey::new(8.0, 0.5).max_defined_procs(), None);
        let m = PiecewiseLinear::new(vec![(4, 4.0), (8, 6.0)]);
        assert_eq!(m.max_defined_procs(), Some(8));
    }

    #[test]
    fn memo_fractional_clamps_at_the_curve_end() {
        // Regression: fractional counts just past the last control point
        // used to interpolate toward extrapolated values instead of holding
        // the curve's final measured speedup.
        let m = PiecewiseLinear::new(vec![(4, 4.0), (8, 6.0)]);
        let mut memo = SpeedupMemo::new();
        assert_eq!(memo.fractional(&m, 8.0), 6.0);
        assert_eq!(memo.fractional(&m, 8.3), 6.0, "clamped to S(8)");
        assert_eq!(memo.fractional(&m, 100.0), 6.0);
        // Inside the defined range the interpolation is untouched.
        assert!((memo.fractional(&m, 6.0) - 5.0).abs() < 1e-12);
    }
}
