//! The four paper applications, calibrated to Fig. 3 and Tables 3–4.
//!
//! Control points are read off the speedup shapes of Fig. 3; sequential
//! times are chosen so that per-application execution times land in the
//! ranges the paper's tables report (e.g. bt ≈ 100 s under Equipartition
//! with ≈15 processors, apsi ≈ 100 s at its 1.4–1.5 speedup plateau).
//!
//! Calibration anchors:
//!
//! | app | shape | knee at `target_eff` 0.7 | `T1` (sequential) |
//! |---|---|---|---|
//! | swim | superlinear 8–16, flat ≥ 30 | > 30 (efficiency > 1) | 200 s |
//! | bt.A | progressive, eff 0.69 at 30 | ≈ 28 | 2100 s |
//! | hydro2d | saturates at S ≈ 10 | ≈ 10 | 300 s |
//! | apsi | flat at S ≈ 1.5 | 2 | 150 s |

use std::sync::Arc;

use pdpa_sim::SimDuration;

use crate::app::ApplicationSpec;
use crate::class::AppClass;
use crate::speedup::PiecewiseLinear;

/// swim (SpecFP95): superlinear speedup in the 8–16 processor range, peak
/// around 30 processors, flat beyond.
pub fn swim() -> ApplicationSpec {
    let curve = PiecewiseLinear::new(vec![
        (1, 1.0),
        (2, 2.1),
        (4, 4.6),
        (8, 10.0),
        (12, 16.0),
        (16, 22.0),
        (20, 25.5),
        (24, 27.5),
        (28, 29.5),
        (30, 30.5),
        (34, 31.0),
        (40, 31.2),
        (60, 31.2),
    ]);
    ApplicationSpec::new(
        AppClass::Swim,
        50,
        SimDuration::from_secs(4.0),
        AppClass::Swim.tuned_request(),
        Arc::new(curve),
        0.01,
    )
}

/// bt.A (NAS Parallel Benchmarks): good, progressive scalability; the
/// 0.7-efficiency knee sits just below the tuned 30-processor request
/// (eff(30) = 0.69), so PDPA settles bt somewhat under its request — as the
/// paper observed ("bt received more processors [under Equal_efficiency]
/// than under PDPA", §5.3).
pub fn bt_a() -> ApplicationSpec {
    let curve = PiecewiseLinear::new(vec![
        (1, 1.0),
        (2, 1.95),
        (4, 3.8),
        (8, 7.5),
        (12, 11.1),
        (16, 14.5),
        (20, 17.2),
        (24, 19.4),
        (30, 20.7),
        (40, 23.0),
        (50, 25.0),
        (60, 26.5),
    ]);
    ApplicationSpec::new(
        AppClass::BtA,
        150,
        SimDuration::from_secs(14.0),
        AppClass::BtA.tuned_request(),
        Arc::new(curve),
        0.01,
    )
}

/// hydro2d (SpecFP95): medium scalability, saturating at a speedup of ≈ 10.
///
/// The paper notes hydro2d "suffers overhead due to the measurement
/// process" (§5.2); its instrumentation overhead is set higher than the
/// other applications'.
pub fn hydro2d() -> ApplicationSpec {
    let curve = PiecewiseLinear::new(vec![
        (1, 1.0),
        (2, 1.9),
        (4, 3.65),
        (6, 5.2),
        (8, 6.4),
        (10, 7.2),
        (12, 7.9),
        (16, 8.9),
        (20, 9.5),
        (30, 10.0),
        (60, 10.0),
    ]);
    ApplicationSpec::new(
        AppClass::Hydro2d,
        75,
        SimDuration::from_secs(4.0),
        AppClass::Hydro2d.tuned_request(),
        Arc::new(curve),
        0.04,
    )
}

/// apsi (SpecFP95): does not scale — the speedup plateaus at ≈ 1.5.
///
/// At 2 processors the efficiency is 0.71, just above the paper's default
/// `target_eff` of 0.7, which is why PDPA keeps the tuned 2-processor
/// allocation instead of shrinking it to 1 (§5.3).
pub fn apsi() -> ApplicationSpec {
    let curve = PiecewiseLinear::new(vec![(1, 1.0), (2, 1.42), (4, 1.48), (8, 1.5), (60, 1.5)]);
    ApplicationSpec::new(
        AppClass::Apsi,
        60,
        SimDuration::from_secs(2.5),
        AppClass::Apsi.tuned_request(),
        Arc::new(curve),
        0.01,
    )
}

/// The calibrated specification for any paper application class.
pub fn paper_app(class: AppClass) -> ApplicationSpec {
    match class {
        AppClass::Swim => swim(),
        AppClass::BtA => bt_a(),
        AppClass::Hydro2d => hydro2d(),
        AppClass::Apsi => apsi(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swim_is_superlinear_in_fig3_range() {
        let app = swim();
        for p in [10, 12, 16, 20, 24, 30] {
            assert!(
                app.speedup.efficiency(p) > 1.0,
                "swim eff({p}) = {}",
                app.speedup.efficiency(p)
            );
        }
        // Relative speedup flattens past 30: the superlinear bonus is spent.
        let rs = app.speedup.relative_speedup(30, 34);
        assert!(rs < 34.0 / 30.0 * 0.9, "swim relative speedup {rs}");
    }

    #[test]
    fn bt_has_progressive_scalability() {
        let app = bt_a();
        // The 0.7-efficiency knee sits just below the tuned request.
        let knee = app.speedup.max_procs_at_efficiency(0.7, 60);
        assert!((24..30).contains(&knee), "bt knee at {knee}");
        // And the curve keeps climbing — no early saturation.
        assert!(app.speedup.speedup(40) > app.speedup.speedup(30) + 2.0);
    }

    #[test]
    fn hydro2d_knee_is_near_ten_processors() {
        let app = hydro2d();
        let knee = app.speedup.max_procs_at_efficiency(0.7, 60);
        assert!(
            (9..=12).contains(&knee),
            "hydro2d knee at {knee}, efficiency {}",
            app.speedup.efficiency(knee)
        );
    }

    #[test]
    fn apsi_does_not_scale() {
        let app = apsi();
        assert!(app.speedup.speedup(30) < 1.6);
        // Efficiency at the tuned 2-processor request just clears 0.7.
        let eff2 = app.speedup.efficiency(2);
        assert!((0.70..0.75).contains(&eff2), "apsi eff(2) = {eff2}");
    }

    #[test]
    fn monotone_over_machine_range() {
        // None of the paper curves decreases (they saturate, not degrade).
        for class in AppClass::ALL {
            let app = paper_app(class);
            for p in 1..60 {
                assert!(
                    app.speedup.speedup(p + 1) >= app.speedup.speedup(p) - 1e-12,
                    "{class} S({}) < S({p})",
                    p + 1
                );
            }
        }
    }

    #[test]
    fn execution_times_match_table_anchors() {
        // Under Equipartition with ML = 4 on 60 CPUs, jobs see ≈ 15–30
        // processors; the paper's tables put bt ≈ 100 s, apsi ≈ 100 s,
        // hydro2d ≈ 32 s, swim ≈ 6 s in that regime.
        let bt = bt_a();
        let t = bt.ideal_exec_time(28).as_secs();
        assert!((90.0..115.0).contains(&t), "bt exec at 28 procs: {t}");

        let s = swim();
        let t = s.ideal_exec_time(30).as_secs();
        assert!((5.0..9.0).contains(&t), "swim exec at 30 procs: {t}");

        let h = hydro2d();
        let t = h.ideal_exec_time(15).as_secs();
        assert!((28.0..40.0).contains(&t), "hydro exec at 15 procs: {t}");

        let a = apsi();
        let t = a.ideal_exec_time(15).as_secs();
        assert!((90.0..115.0).contains(&t), "apsi exec at 15 procs: {t}");
    }

    #[test]
    fn requests_are_tuned_by_default() {
        assert_eq!(swim().request, 30);
        assert_eq!(apsi().request, 2);
    }
}
