//! Application classes used by the paper's workloads.

use std::fmt;

/// The four application types of the paper's evaluation (Table 1).
///
/// Each class stands for one benchmark and, more importantly, for one
/// scalability shape; the workloads w1–w4 are defined as mixes of these
/// classes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AppClass {
    /// swim (SpecFP95): superlinear speedup in the 8–16 processor range.
    Swim,
    /// bt.A (NAS Parallel Benchmarks): good, progressive scalability.
    BtA,
    /// hydro2d (SpecFP95): medium scalability, saturates early.
    Hydro2d,
    /// apsi (SpecFP95): does not scale at all.
    Apsi,
}

impl AppClass {
    /// All classes, in the paper's order.
    pub const ALL: [AppClass; 4] = [
        AppClass::Swim,
        AppClass::BtA,
        AppClass::Hydro2d,
        AppClass::Apsi,
    ];

    /// The benchmark's short name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            AppClass::Swim => "swim",
            AppClass::BtA => "bt.A",
            AppClass::Hydro2d => "hydro2d",
            AppClass::Apsi => "apsi",
        }
    }

    /// Parses a benchmark name (as written by [`AppClass::name`], case
    /// insensitive; `bt` is accepted for `bt.A`).
    pub fn parse(s: &str) -> Option<AppClass> {
        match s.to_ascii_lowercase().as_str() {
            "swim" => Some(AppClass::Swim),
            "bt.a" | "bt" | "bt_a" => Some(AppClass::BtA),
            "hydro2d" | "hydro" => Some(AppClass::Hydro2d),
            "apsi" => Some(AppClass::Apsi),
            _ => None,
        }
    }

    /// The scalability description the paper gives this class.
    pub fn scalability(self) -> &'static str {
        match self {
            AppClass::Swim => "superlinear",
            AppClass::BtA => "good",
            AppClass::Hydro2d => "medium",
            AppClass::Apsi => "none",
        }
    }

    /// The *tuned* processor request used in the paper's workloads:
    /// "swim, bt, and hydro2d request for 30 processors, and apsi requests
    /// for 2 processors due to its poor scalability" (§5).
    pub fn tuned_request(self) -> usize {
        match self {
            AppClass::Apsi => 2,
            _ => 30,
        }
    }

    /// The *untuned* request used by the Table 3/4 experiments: every
    /// application asks for 30 processors.
    pub fn untuned_request(self) -> usize {
        30
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for class in AppClass::ALL {
            assert_eq!(AppClass::parse(class.name()), Some(class));
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(AppClass::parse("BT"), Some(AppClass::BtA));
        assert_eq!(AppClass::parse("hydro"), Some(AppClass::Hydro2d));
        assert_eq!(AppClass::parse("SWIM"), Some(AppClass::Swim));
        assert_eq!(AppClass::parse("nonesuch"), None);
    }

    #[test]
    fn tuned_requests_match_paper() {
        assert_eq!(AppClass::Swim.tuned_request(), 30);
        assert_eq!(AppClass::BtA.tuned_request(), 30);
        assert_eq!(AppClass::Hydro2d.tuned_request(), 30);
        assert_eq!(AppClass::Apsi.tuned_request(), 2);
    }

    #[test]
    fn untuned_requests_are_all_30() {
        for class in AppClass::ALL {
            assert_eq!(class.untuned_request(), 30);
        }
    }
}
