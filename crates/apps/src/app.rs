//! Malleable iterative application specification and progress accounting.
//!
//! The paper's applications are *iterative parallel regions*: a sequential
//! outer loop whose body is a set of parallel loops. Iterations behave alike,
//! which is what lets the SelfAnalyzer predict future iterations from past
//! ones (§3.1). [`ApplicationSpec`] captures the static shape; [`Progress`]
//! tracks how far a running instance has gotten under a (possibly changing)
//! processor allocation.

use std::fmt;
use std::sync::Arc;

use pdpa_sim::SimDuration;

use crate::class::AppClass;
use crate::speedup::SpeedupModel;

/// A change in an application's per-iteration work partway through the run
/// — the "iterative parallel region with a variable working set" the paper
/// warns about (§3.1): measurements from before the change no longer
/// predict iterations after it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseChange {
    /// First iteration (0-based) of the new phase.
    pub at_iteration: u32,
    /// Multiplier on the sequential iteration time from that point on.
    pub factor: f64,
}

/// The static description of a malleable iterative application.
#[derive(Clone)]
pub struct ApplicationSpec {
    /// Which paper benchmark this models.
    pub class: AppClass,
    /// Number of iterations of the outer sequential loop.
    pub iterations: u32,
    /// Sequential execution time of one iteration (on one processor,
    /// without instrumentation).
    pub seq_iter_time: SimDuration,
    /// Processors the application requests at submission.
    pub request: usize,
    /// True speedup curve — policies never see this; they see measured
    /// iteration times.
    pub speedup: Arc<dyn SpeedupModel>,
    /// Fractional per-iteration instrumentation overhead (the SelfAnalyzer
    /// measurement cost; hydro2d pays noticeably more than the others).
    pub measurement_overhead: f64,
    /// Optional working-set change partway through the run (§3.1).
    pub phase_change: Option<PhaseChange>,
}

impl ApplicationSpec {
    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` or `request` is zero, or if the overhead is
    /// negative.
    pub fn new(
        class: AppClass,
        iterations: u32,
        seq_iter_time: SimDuration,
        request: usize,
        speedup: Arc<dyn SpeedupModel>,
        measurement_overhead: f64,
    ) -> Self {
        assert!(iterations > 0, "application needs at least one iteration");
        assert!(request > 0, "request must be at least one processor");
        assert!(measurement_overhead >= 0.0, "overhead must be non-negative");
        ApplicationSpec {
            class,
            iterations,
            seq_iter_time,
            request,
            speedup,
            measurement_overhead,
            phase_change: None,
        }
    }

    /// Adds a working-set change: from `at_iteration` on, each iteration's
    /// sequential time is multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if the factor is not positive or the boundary is outside the
    /// run.
    pub fn with_phase_change(mut self, at_iteration: u32, factor: f64) -> Self {
        assert!(factor > 0.0, "phase factor must be positive");
        assert!(
            at_iteration > 0 && at_iteration < self.iterations,
            "phase boundary must fall inside the run"
        );
        self.phase_change = Some(PhaseChange {
            at_iteration,
            factor,
        });
        self
    }

    /// Sequential time of iteration `iter` (0-based), accounting for a
    /// phase change.
    pub fn seq_iter_time_at(&self, iter: u32) -> SimDuration {
        match self.phase_change {
            Some(pc) if iter >= pc.at_iteration => self.seq_iter_time * pc.factor,
            _ => self.seq_iter_time,
        }
    }

    /// Replaces the processor request (used by the untuned experiments).
    pub fn with_request(mut self, request: usize) -> Self {
        assert!(request > 0, "request must be at least one processor");
        self.request = request;
        self
    }

    /// Total sequential work, in seconds.
    pub fn total_seq_time(&self) -> SimDuration {
        match self.phase_change {
            Some(pc) => {
                self.seq_iter_time * pc.at_iteration as f64
                    + self.seq_iter_time * pc.factor * (self.iterations - pc.at_iteration) as f64
            }
            None => self.seq_iter_time * self.iterations as f64,
        }
    }

    /// Wall-clock time of one iteration on `p` dedicated processors,
    /// including instrumentation overhead. `None` when `p = 0`.
    /// (First-phase time; see [`iter_time_at`] for phased applications.)
    ///
    /// [`iter_time_at`]: ApplicationSpec::iter_time_at
    pub fn iter_time(&self, p: usize) -> Option<SimDuration> {
        self.iter_time_at(0, p)
    }

    /// Wall-clock time of iteration `iter` on `p` dedicated processors.
    pub fn iter_time_at(&self, iter: u32, p: usize) -> Option<SimDuration> {
        let s = self.speedup.speedup(p);
        if s <= 0.0 {
            return None;
        }
        Some(self.seq_iter_time_at(iter) * ((1.0 + self.measurement_overhead) / s))
    }

    /// Progress rate with `p` processors, in iterations per second
    /// (0 when `p = 0`). First-phase rate; see [`rate_at`].
    ///
    /// [`rate_at`]: ApplicationSpec::rate_at
    pub fn rate(&self, p: usize) -> f64 {
        self.rate_at(0, p)
    }

    /// Progress rate during iteration `iter` with `p` processors.
    pub fn rate_at(&self, iter: u32, p: usize) -> f64 {
        match self.iter_time_at(iter, p) {
            Some(t) => 1.0 / t.as_secs(),
            None => 0.0,
        }
    }

    /// Ideal end-to-end execution time on `p` dedicated processors with no
    /// reallocations.
    pub fn ideal_exec_time(&self, p: usize) -> SimDuration {
        self.iter_time(p)
            .map(|t| t * self.iterations as f64)
            .unwrap_or(SimDuration::from_secs(f64::MAX / 2.0))
    }
}

impl fmt::Debug for ApplicationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ApplicationSpec")
            .field("class", &self.class)
            .field("iterations", &self.iterations)
            .field("seq_iter_time", &self.seq_iter_time)
            .field("request", &self.request)
            .field("measurement_overhead", &self.measurement_overhead)
            .finish_non_exhaustive()
    }
}

/// Progress of one running application instance.
///
/// Progress is measured in iterations; the fraction of the current iteration
/// advances at the application's current rate. Reallocation penalties are
/// modelled as *debt*: time that must elapse before the application makes
/// progress again.
#[derive(Clone, Debug)]
pub struct Progress {
    total: u32,
    done: u32,
    /// Fraction of the current iteration completed, in `[0, 1)`.
    frac: f64,
    /// Outstanding reallocation penalty.
    debt: SimDuration,
}

impl Progress {
    /// Starts tracking an application with `total` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "application needs at least one iteration");
        Progress {
            total,
            done: 0,
            frac: 0.0,
            debt: SimDuration::ZERO,
        }
    }

    /// Iterations fully completed so far.
    pub fn iterations_done(&self) -> u32 {
        self.done
    }

    /// Total iterations in the application.
    pub fn iterations_total(&self) -> u32 {
        self.total
    }

    /// Fraction of the current iteration completed.
    pub fn current_fraction(&self) -> f64 {
        self.frac
    }

    /// True once every iteration has completed.
    pub fn is_complete(&self) -> bool {
        self.done >= self.total
    }

    /// Outstanding reallocation debt.
    pub fn debt(&self) -> SimDuration {
        self.debt
    }

    /// Adds reallocation penalty time that must elapse before further
    /// progress.
    pub fn add_debt(&mut self, penalty: SimDuration) {
        self.debt += penalty;
    }

    /// Time until the current iteration completes at `rate` iterations per
    /// second, including outstanding debt. `None` if the application cannot
    /// progress (`rate` is 0) or is already complete.
    pub fn time_to_iteration_end(&self, rate: f64) -> Option<SimDuration> {
        if self.is_complete() || rate <= 0.0 {
            return None;
        }
        let remaining = (1.0 - self.frac) / rate;
        Some(self.debt + SimDuration::from_secs(remaining))
    }

    /// Advances progress by `dt` at `rate` iterations per second.
    ///
    /// Returns the number of iteration boundaries crossed. Debt is consumed
    /// before any progress is made.
    pub fn advance(&mut self, dt: SimDuration, rate: f64) -> u32 {
        if self.is_complete() {
            return 0;
        }
        let mut remaining = dt;
        // Burn debt first.
        if !self.debt.is_zero() {
            if remaining <= self.debt {
                self.debt -= remaining;
                return 0;
            }
            remaining -= self.debt;
            self.debt = SimDuration::ZERO;
        }
        if rate <= 0.0 {
            return 0;
        }
        let mut crossed = 0;
        let mut progress = self.frac + remaining.as_secs() * rate;
        // Numerical tolerance: an event scheduled exactly at an iteration
        // boundary must cross it despite floating-point rounding.
        const EPS: f64 = 1e-9;
        while progress >= 1.0 - EPS && !self.is_complete() {
            progress -= 1.0;
            self.done += 1;
            crossed += 1;
        }
        self.frac = if self.is_complete() {
            0.0
        } else {
            progress.max(0.0)
        };
        crossed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::Amdahl;

    fn spec() -> ApplicationSpec {
        ApplicationSpec::new(
            AppClass::BtA,
            10,
            SimDuration::from_secs(8.0),
            16,
            Arc::new(Amdahl::new(0.0)),
            0.0,
        )
    }

    #[test]
    fn iter_time_scales_with_processors() {
        let s = spec();
        assert_eq!(s.iter_time(1).unwrap().as_secs(), 8.0);
        assert_eq!(s.iter_time(4).unwrap().as_secs(), 2.0);
        assert!(s.iter_time(0).is_none());
    }

    #[test]
    fn overhead_inflates_iteration_time() {
        let mut s = spec();
        s.measurement_overhead = 0.05;
        assert!((s.iter_time(1).unwrap().as_secs() - 8.4).abs() < 1e-12);
    }

    #[test]
    fn ideal_exec_time_is_iterations_times_iter_time() {
        let s = spec();
        assert_eq!(s.ideal_exec_time(4).as_secs(), 20.0);
        assert_eq!(s.total_seq_time().as_secs(), 80.0);
    }

    #[test]
    fn with_request_overrides() {
        let s = spec().with_request(30);
        assert_eq!(s.request, 30);
    }

    #[test]
    fn phase_change_scales_later_iterations() {
        let s = spec().with_phase_change(4, 2.0);
        assert_eq!(s.seq_iter_time_at(0).as_secs(), 8.0);
        assert_eq!(s.seq_iter_time_at(3).as_secs(), 8.0);
        assert_eq!(s.seq_iter_time_at(4).as_secs(), 16.0);
        assert_eq!(s.seq_iter_time_at(9).as_secs(), 16.0);
        // Total: 4 × 8 + 6 × 16 = 128 s.
        assert_eq!(s.total_seq_time().as_secs(), 128.0);
        // Rates follow.
        assert_eq!(s.rate_at(0, 4), 1.0 / 2.0);
        assert_eq!(s.rate_at(5, 4), 1.0 / 4.0);
    }

    #[test]
    #[should_panic(expected = "phase boundary")]
    fn phase_change_outside_run_is_rejected() {
        let _ = spec().with_phase_change(10, 2.0);
    }

    #[test]
    fn progress_advances_and_completes() {
        let mut p = Progress::new(3);
        // Rate: 1 iteration per 2 seconds.
        assert_eq!(p.advance(SimDuration::from_secs(2.0), 0.5), 1);
        assert_eq!(p.iterations_done(), 1);
        assert_eq!(p.advance(SimDuration::from_secs(5.0), 0.5), 2);
        assert!(p.is_complete());
        // Further advancing is a no-op.
        assert_eq!(p.advance(SimDuration::from_secs(10.0), 0.5), 0);
    }

    #[test]
    fn partial_progress_accumulates() {
        let mut p = Progress::new(2);
        assert_eq!(p.advance(SimDuration::from_secs(1.0), 0.5), 0);
        assert!((p.current_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(p.advance(SimDuration::from_secs(1.0), 0.5), 1);
        assert!(p.current_fraction().abs() < 1e-9);
    }

    #[test]
    fn debt_delays_progress() {
        let mut p = Progress::new(1);
        p.add_debt(SimDuration::from_secs(3.0));
        // The first two seconds only pay debt.
        assert_eq!(p.advance(SimDuration::from_secs(2.0), 1.0), 0);
        assert_eq!(p.debt().as_secs(), 1.0);
        assert_eq!(p.current_fraction(), 0.0);
        // One more second of debt, then half an iteration of progress.
        assert_eq!(p.advance(SimDuration::from_secs(1.5), 1.0), 0);
        assert!(p.debt().is_zero());
        assert!((p.current_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_to_iteration_end_includes_debt() {
        let mut p = Progress::new(2);
        p.advance(SimDuration::from_secs(0.5), 1.0);
        p.add_debt(SimDuration::from_secs(2.0));
        let t = p.time_to_iteration_end(1.0).unwrap();
        assert!((t.as_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn time_to_iteration_end_none_when_stalled_or_done() {
        let mut p = Progress::new(1);
        assert!(p.time_to_iteration_end(0.0).is_none());
        p.advance(SimDuration::from_secs(1.0), 1.0);
        assert!(p.is_complete());
        assert!(p.time_to_iteration_end(1.0).is_none());
    }

    #[test]
    fn boundary_event_crosses_despite_rounding() {
        let mut p = Progress::new(1);
        let rate = 1.0 / 3.0;
        let dt = p.time_to_iteration_end(rate).unwrap();
        assert_eq!(p.advance(dt, rate), 1);
        assert!(p.is_complete());
    }

    #[test]
    fn rate_change_mid_iteration() {
        let mut p = Progress::new(1);
        p.advance(SimDuration::from_secs(1.0), 0.25); // quarter done
                                                      // Four times the processors: remaining 0.75 at rate 1.0.
        let t = p.time_to_iteration_end(1.0).unwrap();
        assert!((t.as_secs() - 0.75).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Progress conservation: chopping a fixed amount of work into any
        /// sequence of advance() calls completes the same number of
        /// iterations as one big call (within float tolerance at the
        /// boundaries).
        #[test]
        fn progress_is_invariant_to_chopping(
            chunks in proptest::collection::vec(0.01f64..5.0, 1..40),
            rate in 0.05f64..4.0,
        ) {
            let total_time: f64 = chunks.iter().sum();
            let mut chopped = Progress::new(1000);
            for &dt in &chunks {
                chopped.advance(SimDuration::from_secs(dt), rate);
            }
            let mut single = Progress::new(1000);
            single.advance(SimDuration::from_secs(total_time), rate);
            let diff = (chopped.iterations_done() as i64
                - single.iterations_done() as i64).abs();
            prop_assert!(diff <= 1, "chopped {} vs single {}",
                chopped.iterations_done(), single.iterations_done());
        }

        /// Debt delays progress by exactly its own duration.
        #[test]
        fn debt_shifts_completion_by_its_duration(
            debt in 0.0f64..10.0,
            rate in 0.1f64..4.0,
        ) {
            let mut clean = Progress::new(5);
            let mut indebted = Progress::new(5);
            indebted.add_debt(SimDuration::from_secs(debt));
            let t_clean = clean.time_to_iteration_end(rate).unwrap().as_secs();
            let t_debt = indebted.time_to_iteration_end(rate).unwrap().as_secs();
            prop_assert!((t_debt - t_clean - debt).abs() < 1e-9);
            // Both complete after their predicted times.
            clean.advance(SimDuration::from_secs(t_clean), rate);
            indebted.advance(SimDuration::from_secs(t_debt), rate);
            prop_assert_eq!(clean.iterations_done(), 1);
            prop_assert_eq!(indebted.iterations_done(), 1);
        }

        /// time_to_iteration_end() is exact: advancing by exactly that span
        /// crosses exactly one boundary.
        #[test]
        fn predicted_boundary_is_exact(
            frac_steps in proptest::collection::vec(0.01f64..0.2, 0..5),
            rate in 0.1f64..4.0,
        ) {
            let mut p = Progress::new(10);
            for &dt in &frac_steps {
                // Stay strictly inside the first iteration.
                if (p.current_fraction() + dt * rate) < 0.95 {
                    p.advance(SimDuration::from_secs(dt), rate);
                }
            }
            let eta = p.time_to_iteration_end(rate).unwrap();
            let crossed = p.advance(eta, rate);
            prop_assert_eq!(crossed, 1);
        }
    }
}
