//! Hand-rolled argument parsing (no external dependencies).

use pdpa_qs::Workload;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `pdpa run` — one workload, one policy.
    Run(Options),
    /// `pdpa compare` — one workload, every policy.
    Compare(Options),
    /// `pdpa analyze` — one recorded run, full derived analytics.
    Analyze(Options),
    /// `pdpa diff` — two recorded runs, first divergence + metric deltas.
    Diff(Options),
    /// `pdpa replay` — replay an SWF trace file through the engine.
    Replay(ReplayOptions),
    /// `pdpa tournament` — race the whole policy zoo and rank by slowdown.
    Tournament(TournamentOptions),
    /// `pdpa watch` — query a live `--serve` replay over TCP.
    Watch(WatchOptions),
    /// `pdpa daemon` — run `pdpad`, the resident scheduler daemon.
    Daemon(DaemonOptions),
    /// `pdpa submit` — submit jobs to a running `pdpad`.
    Submit(SubmitOptions),
    /// `pdpa ctl` — control a running `pdpad` (drain, snapshot, ...).
    Ctl(CtlOptions),
    /// `pdpa curves` — print the Fig. 3 speedup curves.
    Curves,
    /// `pdpa help` / `--help`.
    Help,
}

/// Options of `pdpa replay`.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayOptions {
    /// Path of the SWF trace to replay.
    pub trace_path: String,
    /// Scheduling policy to replay under.
    pub policy: PolicyChoice,
    /// Rescale the trace to this demand fraction (omitted: replay the
    /// trace's intrinsic arrival rate).
    pub load: Option<f64>,
    /// Machine size to replay on; requests are remapped from the trace's
    /// recorded machine size.
    pub cpus: usize,
    /// Replay only the submissions inside `[start, end)` seconds.
    pub window: Option<(f64, f64)>,
    /// Engine seed (timing noise).
    pub seed: u64,
    /// Append a `replay-<policy>` entry to the `BENCH_pdpa.json`
    /// trajectory.
    pub json: bool,
    /// Print a decision-event summary after the metrics.
    pub obs: bool,
    /// Write a Chrome `trace_event` JSON of the decision-event stream here.
    pub trace_out: Option<String>,
    /// Write the `pdpa-analyze/v1` analysis document here.
    pub analyze_out: Option<String>,
    /// Replay through the epoch-parallel sharded engine with this many
    /// shards (omitted: the classic sequential engine).
    pub shards: Option<usize>,
    /// Barrier epoch in simulated seconds for `--shards` (omitted: the
    /// engine default).
    pub epoch: Option<f64>,
    /// Replay a second time with this shard count and diff the two
    /// decision-event streams (requires `--shards`; a divergence is an
    /// error, so CI can gate on the exit status).
    pub diff_shards: Option<usize>,
    /// Fault-injection plan (the `pdpa_faults::FaultPlan` grammar),
    /// applied identically to both replays under `--diff-shards`.
    pub faults: Option<String>,
    /// Enable the span profiler and write its Chrome `trace_event` JSON
    /// here (one lane per shard); also prints the text hot-path report.
    pub profile_out: Option<String>,
    /// Write the recorded decision-event stream to this file.
    pub obs_out: Option<String>,
    /// Serialization of `--obs-out`: line-oriented text or the `PDPAOBS1`
    /// length-prefixed binary framing.
    pub obs_format: ObsFormat,
    /// Abort with a structured diagnostic when the simulated clock stops
    /// advancing (default on for replay; `--no-watchdog` disables).
    pub watchdog: bool,
    /// Emit periodic health snapshots to stderr at this wall-clock cadence
    /// in seconds (`--heartbeat SECS`; off when omitted).
    pub heartbeat: Option<f64>,
    /// Serve live status/metrics queries on this TCP address while the
    /// replay runs (`--serve ADDR`; `127.0.0.1:0` picks an ephemeral port,
    /// printed to stderr at bind time).
    pub serve: Option<String>,
    /// Keep only these comma-separated event kinds in the recorded stream
    /// (`--obs-filter kind1,kind2`; validated against `ObsEvent::KINDS` at
    /// parse time).
    pub obs_filter: Option<String>,
}

/// Options of `pdpa tournament`.
#[derive(Clone, Debug, PartialEq)]
pub struct TournamentOptions {
    /// SWF trace file for the replay leg (omitted: a shaped trace is
    /// generated in process).
    pub trace_path: Option<String>,
    /// Machine size of the replay leg.
    pub cpus: usize,
    /// Seed for trace generation and both legs' engines.
    pub seed: u64,
    /// Rescale the replay leg to this demand fraction.
    pub load: Option<f64>,
    /// Submission window of the generated trace, seconds (only without a
    /// trace file).
    pub duration: Option<f64>,
    /// Append one `tournament-<policy>` entry per entrant to the
    /// `BENCH_pdpa.json` trajectory.
    pub json: bool,
    /// Write the `pdpa-tournament/v1` JSON report here.
    pub out: Option<String>,
}

impl Default for TournamentOptions {
    fn default() -> Self {
        TournamentOptions {
            trace_path: None,
            cpus: 60,
            seed: 42,
            load: None,
            duration: None,
            json: false,
            out: None,
        }
    }
}

/// On-disk encodings of a decision-event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsFormat {
    /// One event per line, the `TimedEvent::to_line` grammar.
    #[default]
    Text,
    /// `PDPAOBS1` magic + uvarint length-prefixed frames.
    Binary,
}

impl ObsFormat {
    /// Parses an `--obs-format` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(ObsFormat::Text),
            "binary" | "bin" => Some(ObsFormat::Binary),
            _ => None,
        }
    }
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            trace_path: String::new(),
            policy: PolicyChoice::Pdpa,
            load: None,
            cpus: 60,
            window: None,
            seed: 42,
            json: false,
            obs: false,
            trace_out: None,
            analyze_out: None,
            shards: None,
            epoch: None,
            diff_shards: None,
            faults: None,
            profile_out: None,
            obs_out: None,
            obs_format: ObsFormat::Text,
            watchdog: true,
            heartbeat: None,
            serve: None,
            obs_filter: None,
        }
    }
}

/// Options of `pdpa watch`.
#[derive(Clone, Debug, PartialEq)]
pub struct WatchOptions {
    /// TCP address of the `--serve` replay to query.
    pub addr: String,
    /// Poll until the run reaches a terminal state instead of querying
    /// once.
    pub follow: bool,
    /// Print the raw protocol response lines (NDJSON) instead of the
    /// human rendering.
    pub json: bool,
    /// Also fetch the newest N observer events.
    pub tail: Option<usize>,
    /// Poll cadence for `--follow`, in seconds.
    pub interval: f64,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            addr: String::new(),
            follow: false,
            json: false,
            tail: None,
            interval: 1.0,
        }
    }
}

/// Options of `pdpa daemon`.
#[derive(Clone, Debug, PartialEq)]
pub struct DaemonOptions {
    /// TCP address to serve on (`127.0.0.1:0` picks an ephemeral port,
    /// printed to stderr at bind time).
    pub addr: String,
    /// Scheduling policy the daemon runs.
    pub policy: PolicyChoice,
    /// Machine size.
    pub cpus: usize,
    /// Engine seed.
    pub seed: u64,
    /// Queue backfilling.
    pub backfill: bool,
    /// Admission bound: reject submissions with `queue_full` while this
    /// many jobs wait.
    pub max_queue: usize,
    /// Sim seconds advanced per wall second between ops (`0` disables
    /// pacing).
    pub time_scale: f64,
    /// Simulation horizon override.
    pub max_sim_secs: Option<f64>,
    /// Write the decision-event stream to this file.
    pub stream: Option<String>,
    /// Default snapshot target for `snapshot`/`shutdown` requests that
    /// name no path.
    pub snapshot: Option<String>,
    /// Restore state from this `pdpa-snapshot/v1` file before serving.
    pub restore: Option<String>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            addr: "127.0.0.1:0".to_string(),
            policy: PolicyChoice::Pdpa,
            cpus: 32,
            seed: 42,
            backfill: false,
            max_queue: 64,
            time_scale: 1.0,
            max_sim_secs: None,
            stream: None,
            snapshot: None,
            restore: None,
        }
    }
}

/// Options of `pdpa submit`.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitOptions {
    /// TCP address of the daemon.
    pub addr: String,
    /// Application class (`swim`, `bt.A`, `hydro2d`, `apsi`).
    pub class: String,
    /// Processor request override.
    pub request: Option<u64>,
    /// Sequential-work override in sim seconds.
    pub work_secs: Option<f64>,
    /// Submit this many identical jobs.
    pub count: usize,
    /// Print raw protocol response lines instead of the human rendering.
    pub json: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            addr: String::new(),
            class: "swim".to_string(),
            request: None,
            work_secs: None,
            count: 1,
            json: false,
        }
    }
}

/// The control action of `pdpa ctl`.
#[derive(Clone, Debug, PartialEq)]
pub enum CtlAction {
    /// Identify the server (`hello`).
    Hello,
    /// Finish all admitted work and stop admitting.
    Drain,
    /// Write a snapshot (optionally to an explicit path).
    Snapshot(Option<String>),
    /// Shut the daemon down (optionally snapshotting first).
    Shutdown(Option<String>),
    /// Cancel one job.
    Cancel(u64),
    /// List the newest N jobs.
    Jobs(usize),
    /// Show one job.
    Job(u64),
}

/// Options of `pdpa ctl`.
#[derive(Clone, Debug, PartialEq)]
pub struct CtlOptions {
    /// TCP address of the daemon.
    pub addr: String,
    /// What to ask it.
    pub action: CtlAction,
    /// Print raw protocol response lines instead of the human rendering.
    pub json: bool,
}

/// Scheduling policies selectable from the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyChoice {
    /// The paper's contribution.
    Pdpa,
    /// Equipartition.
    Equipartition,
    /// Equal_efficiency.
    EqualEfficiency,
    /// The IRIX-like time-sharing model.
    Irix,
    /// Rigid first-fit space sharing.
    Rigid,
    /// Gang scheduling.
    Gang,
    /// heSRPT: closed-form allocation by remaining-work rank.
    Hesrpt,
    /// OptSplit: water-filling over concave speedup curves.
    Optsplit,
    /// LearnedAlloc: online gradient steps on measured speedups.
    Learned,
}

impl PolicyChoice {
    /// Parses a policy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "pdpa" => Some(PolicyChoice::Pdpa),
            "equip" | "equipartition" => Some(PolicyChoice::Equipartition),
            "equal-eff" | "equal_eff" | "equal-efficiency" => Some(PolicyChoice::EqualEfficiency),
            "irix" => Some(PolicyChoice::Irix),
            "rigid" => Some(PolicyChoice::Rigid),
            "gang" => Some(PolicyChoice::Gang),
            "hesrpt" | "he-srpt" => Some(PolicyChoice::Hesrpt),
            "optsplit" | "opt-split" => Some(PolicyChoice::Optsplit),
            "learned" | "learnedalloc" | "learned-alloc" => Some(PolicyChoice::Learned),
            _ => None,
        }
    }

    /// Short stable identifier used in `replay-<slug>` trajectory modes.
    pub fn slug(self) -> &'static str {
        match self {
            PolicyChoice::Pdpa => "pdpa",
            PolicyChoice::Equipartition => "equip",
            PolicyChoice::EqualEfficiency => "equal-eff",
            PolicyChoice::Irix => "irix",
            PolicyChoice::Rigid => "rigid",
            PolicyChoice::Gang => "gang",
            PolicyChoice::Hesrpt => "hesrpt",
            PolicyChoice::Optsplit => "optsplit",
            PolicyChoice::Learned => "learned",
        }
    }
}

/// Options shared by `run` and `compare`.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// The workload to execute.
    pub workload: Workload,
    /// Policy (meaningful for `run`; `compare` runs them all).
    pub policy: Option<PolicyChoice>,
    /// System load fraction.
    pub load: f64,
    /// Seed for the generator and engine.
    pub seed: u64,
    /// Machine size.
    pub cpus: usize,
    /// Untuned requests (everything asks for 30).
    pub untuned: bool,
    /// Queue backfilling.
    pub backfill: bool,
    /// Trace collection.
    pub trace: bool,
    /// Print the ASCII execution view.
    pub ascii: bool,
    /// Write a Paraver trace here.
    pub prv_out: Option<String>,
    /// Write an SWF log here.
    pub swf_log: Option<String>,
    /// Print a decision-event summary after the metrics.
    pub obs: bool,
    /// Write a Chrome `trace_event` JSON of the decision-event stream here.
    pub trace_out: Option<String>,
    /// Write the metrics-registry snapshot as JSON here.
    pub metrics_out: Option<String>,
    /// Write the MPL/allocation time-series CSV here.
    pub mpl_csv: Option<String>,
    /// Write the `pdpa-analyze/v1` analysis document here.
    pub analyze_out: Option<String>,
    /// Fault-injection plan (the `pdpa_faults::FaultPlan` grammar),
    /// unparsed — validated against `cpus` when the engine is built.
    pub faults: Option<String>,
    /// Second policy for `pdpa diff` (defaults to `--policy`).
    pub policy_b: Option<PolicyChoice>,
    /// Second seed for `pdpa diff` (defaults to `--seed`).
    pub seed_b: Option<u64>,
    /// `analyze`/`diff`: read this recorded decision-event stream (text or
    /// `PDPAOBS1` binary, auto-detected) instead of running the engine.
    pub from_stream: Option<String>,
    /// `diff`: the second recorded stream to compare against.
    pub from_stream_b: Option<String>,
}

impl Options {
    /// Whether the run must record its decision-event stream.
    pub fn observing(&self) -> bool {
        self.obs
            || self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.mpl_csv.is_some()
            || self.analyze_out.is_some()
    }
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: Workload::W3,
            policy: None,
            load: 1.0,
            seed: 42,
            cpus: 60,
            untuned: false,
            backfill: false,
            trace: false,
            ascii: false,
            prv_out: None,
            swf_log: None,
            obs: false,
            trace_out: None,
            metrics_out: None,
            mpl_csv: None,
            analyze_out: None,
            faults: None,
            policy_b: None,
            seed_b: None,
            from_stream: None,
            from_stream_b: None,
        }
    }
}

fn parse_workload(s: &str) -> Result<Workload, String> {
    match s.to_ascii_lowercase().as_str() {
        "w1" => Ok(Workload::W1),
        "w2" => Ok(Workload::W2),
        "w3" => Ok(Workload::W3),
        "w4" => Ok(Workload::W4),
        other => Err(format!("unknown workload {other:?}; expected w1..w4")),
    }
}

/// Parses an argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable diagnostic on any malformed input.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let Some(verb) = it.next() else {
        return Ok(Command::Help);
    };
    match verb.as_str() {
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "curves" => return Ok(Command::Curves),
        "replay" => return parse_replay(&mut it),
        "tournament" => return parse_tournament(&mut it),
        "watch" => return parse_watch(&mut it),
        "daemon" => return parse_daemon(&mut it),
        "submit" => return parse_submit(&mut it),
        "ctl" => return parse_ctl(&mut it),
        "run" | "compare" | "analyze" | "diff" => {}
        other => return Err(format!("unknown command {other:?}; try `pdpa help`")),
    }

    let mut opts = Options::default();
    let mut workload_set = false;
    let value_of = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => {
                opts.workload = parse_workload(&value_of("--workload", &mut it)?)?;
                workload_set = true;
            }
            "--policy" => {
                let v = value_of("--policy", &mut it)?;
                opts.policy =
                    Some(PolicyChoice::parse(&v).ok_or_else(|| format!("unknown policy {v:?}"))?);
            }
            "--load" => {
                let v = value_of("--load", &mut it)?;
                opts.load = v
                    .parse::<f64>()
                    .map_err(|_| format!("--load expects a number, got {v:?}"))?;
                if !(opts.load > 0.0 && opts.load <= 2.0) {
                    return Err(format!("--load {v} out of range (0, 2]"));
                }
            }
            "--seed" => {
                let v = value_of("--seed", &mut it)?;
                opts.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--cpus" => {
                let v = value_of("--cpus", &mut it)?;
                opts.cpus = v
                    .parse::<usize>()
                    .map_err(|_| format!("--cpus expects an integer, got {v:?}"))?;
                if opts.cpus == 0 {
                    return Err("--cpus must be at least 1".into());
                }
            }
            "--untuned" => opts.untuned = true,
            "--backfill" => opts.backfill = true,
            "--trace" => opts.trace = true,
            "--ascii" => {
                opts.ascii = true;
                opts.trace = true;
            }
            "--prv-out" => {
                opts.prv_out = Some(value_of("--prv-out", &mut it)?);
                opts.trace = true;
            }
            "--swf-log" => opts.swf_log = Some(value_of("--swf-log", &mut it)?),
            "--obs" => opts.obs = true,
            "--trace-out" => opts.trace_out = Some(value_of("--trace-out", &mut it)?),
            "--metrics-out" => opts.metrics_out = Some(value_of("--metrics-out", &mut it)?),
            "--mpl-csv" => opts.mpl_csv = Some(value_of("--mpl-csv", &mut it)?),
            "--analyze-out" => opts.analyze_out = Some(value_of("--analyze-out", &mut it)?),
            "--faults" => opts.faults = Some(value_of("--faults", &mut it)?),
            "--policy-b" => {
                let v = value_of("--policy-b", &mut it)?;
                opts.policy_b =
                    Some(PolicyChoice::parse(&v).ok_or_else(|| format!("unknown policy {v:?}"))?);
            }
            "--seed-b" => {
                let v = value_of("--seed-b", &mut it)?;
                opts.seed_b = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--seed-b expects an integer, got {v:?}"))?,
                );
            }
            "--from-stream" => opts.from_stream = Some(value_of("--from-stream", &mut it)?),
            "--from-stream-b" => opts.from_stream_b = Some(value_of("--from-stream-b", &mut it)?),
            other => return Err(format!("unknown option {other:?}; try `pdpa help`")),
        }
    }
    let from_stream = opts.from_stream.is_some();
    if from_stream && !matches!(verb.as_str(), "analyze" | "diff") {
        return Err("--from-stream is only meaningful for `pdpa analyze`/`pdpa diff`".into());
    }
    if opts.from_stream_b.is_some() && verb != "diff" {
        return Err("--from-stream-b is only meaningful for `pdpa diff`".into());
    }
    if verb == "diff" && (from_stream != opts.from_stream_b.is_some()) {
        return Err(
            "`pdpa diff` compares two streams; give both --from-stream and --from-stream-b".into(),
        );
    }
    if !workload_set && !from_stream {
        return Err("--workload is required".into());
    }
    if verb != "diff" && (opts.policy_b.is_some() || opts.seed_b.is_some()) {
        return Err("--policy-b/--seed-b are only meaningful for `pdpa diff`".into());
    }
    match verb.as_str() {
        "run" | "analyze" | "diff" => {
            if opts.policy.is_none() && !from_stream {
                return Err(format!("--policy is required for `pdpa {verb}`"));
            }
            Ok(match verb.as_str() {
                "run" => Command::Run(opts),
                "analyze" => Command::Analyze(opts),
                _ => Command::Diff(opts),
            })
        }
        _ => Ok(Command::Compare(opts)),
    }
}

/// Parses `pdpa replay <trace.swf> [flags]`.
fn parse_replay(it: &mut std::iter::Peekable<std::slice::Iter<String>>) -> Result<Command, String> {
    let mut opts = ReplayOptions::default();
    let mut policy_set = false;
    let value_of = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--policy" => {
                let v = value_of("--policy", it)?;
                opts.policy =
                    PolicyChoice::parse(&v).ok_or_else(|| format!("unknown policy {v:?}"))?;
                policy_set = true;
            }
            "--load" => {
                let v = value_of("--load", it)?;
                let load = v
                    .parse::<f64>()
                    .map_err(|_| format!("--load expects a number, got {v:?}"))?;
                if !(load > 0.0 && load <= 2.0) {
                    return Err(format!("--load {v} out of range (0, 2]"));
                }
                opts.load = Some(load);
            }
            "--cpus" => {
                let v = value_of("--cpus", it)?;
                opts.cpus = v
                    .parse::<usize>()
                    .map_err(|_| format!("--cpus expects an integer, got {v:?}"))?;
                if opts.cpus == 0 {
                    return Err("--cpus must be at least 1".into());
                }
            }
            "--window" => {
                let v = value_of("--window", it)?;
                opts.window = Some(parse_window(&v)?);
            }
            "--seed" => {
                let v = value_of("--seed", it)?;
                opts.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--shards" => {
                let v = value_of("--shards", it)?;
                let shards = v
                    .parse::<usize>()
                    .map_err(|_| format!("--shards expects an integer, got {v:?}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
                opts.shards = Some(shards);
            }
            "--epoch" => {
                let v = value_of("--epoch", it)?;
                let epoch = v
                    .parse::<f64>()
                    .map_err(|_| format!("--epoch expects seconds, got {v:?}"))?;
                if !(epoch > 0.0 && epoch.is_finite()) {
                    return Err(format!("--epoch {v} must be a positive number of seconds"));
                }
                opts.epoch = Some(epoch);
            }
            "--diff-shards" => {
                let v = value_of("--diff-shards", it)?;
                let shards = v
                    .parse::<usize>()
                    .map_err(|_| format!("--diff-shards expects an integer, got {v:?}"))?;
                if shards == 0 {
                    return Err("--diff-shards must be at least 1".into());
                }
                opts.diff_shards = Some(shards);
            }
            "--json" => opts.json = true,
            "--obs" => opts.obs = true,
            "--trace-out" => opts.trace_out = Some(value_of("--trace-out", it)?),
            "--analyze-out" => opts.analyze_out = Some(value_of("--analyze-out", it)?),
            "--faults" => opts.faults = Some(value_of("--faults", it)?),
            "--profile-out" => opts.profile_out = Some(value_of("--profile-out", it)?),
            "--obs-out" => opts.obs_out = Some(value_of("--obs-out", it)?),
            "--obs-format" => {
                let v = value_of("--obs-format", it)?;
                opts.obs_format = ObsFormat::parse(&v)
                    .ok_or_else(|| format!("--obs-format expects text or binary, got {v:?}"))?;
            }
            "--watchdog" => opts.watchdog = true,
            "--no-watchdog" => opts.watchdog = false,
            "--heartbeat" => {
                let v = value_of("--heartbeat", it)?;
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| format!("--heartbeat expects seconds, got {v:?}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!(
                        "--heartbeat {v} must be a positive number of seconds"
                    ));
                }
                opts.heartbeat = Some(secs);
            }
            "--serve" => opts.serve = Some(value_of("--serve", it)?),
            "--obs-filter" => {
                let v = value_of("--obs-filter", it)?;
                // Validate the kind list now so typos fail before a long
                // replay starts; the filter is rebuilt from the spec later.
                pdpa_obs::KindFilter::parse(&v).map_err(|e| format!("--obs-filter: {e}"))?;
                opts.obs_filter = Some(v);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}; try `pdpa help`"));
            }
            path => {
                if !opts.trace_path.is_empty() {
                    return Err(format!(
                        "replay takes one trace path; got {:?} and {path:?}",
                        opts.trace_path
                    ));
                }
                opts.trace_path = path.to_string();
            }
        }
    }
    if opts.trace_path.is_empty() {
        return Err("replay needs a trace path: `pdpa replay <trace.swf> --policy <p>`".into());
    }
    if !policy_set {
        return Err("--policy is required for `pdpa replay`".into());
    }
    if opts.shards.is_some() && matches!(opts.policy, PolicyChoice::Irix | PolicyChoice::Gang) {
        return Err(format!(
            "--shards requires a space-sharing policy; {:?} is time-shared",
            opts.policy
        ));
    }
    if opts.epoch.is_some() && opts.shards.is_none() {
        return Err("--epoch is only meaningful together with --shards".into());
    }
    if opts.diff_shards.is_some() && opts.shards.is_none() {
        return Err(
            "--diff-shards compares two sharded replays; give the first count with --shards".into(),
        );
    }
    if opts.obs_format != ObsFormat::Text && opts.obs_out.is_none() {
        return Err("--obs-format chooses the --obs-out encoding; give --obs-out too".into());
    }
    if opts.serve.is_some() && opts.diff_shards.is_some() {
        return Err("--serve watches one live replay; it conflicts with --diff-shards".into());
    }
    Ok(Command::Replay(opts))
}

/// Parses `pdpa watch <addr> [flags]`.
fn parse_watch(it: &mut std::iter::Peekable<std::slice::Iter<String>>) -> Result<Command, String> {
    let mut opts = WatchOptions::default();
    let value_of = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => opts.follow = true,
            "--json" => opts.json = true,
            "--tail" => {
                let v = value_of("--tail", it)?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--tail expects an event count, got {v:?}"))?;
                if n == 0 {
                    return Err("--tail must be at least 1".into());
                }
                opts.tail = Some(n);
            }
            "--interval" => {
                let v = value_of("--interval", it)?;
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| format!("--interval expects seconds, got {v:?}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!(
                        "--interval {v} must be a positive number of seconds"
                    ));
                }
                opts.interval = secs;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}; try `pdpa help`"));
            }
            addr => {
                if !opts.addr.is_empty() {
                    return Err(format!(
                        "watch takes one address; got {:?} and {addr:?}",
                        opts.addr
                    ));
                }
                opts.addr = addr.to_string();
            }
        }
    }
    if opts.addr.is_empty() {
        return Err("watch needs the server address: `pdpa watch HOST:PORT`".into());
    }
    Ok(Command::Watch(opts))
}

/// Parses `pdpa daemon [flags]`.
fn parse_daemon(it: &mut std::iter::Peekable<std::slice::Iter<String>>) -> Result<Command, String> {
    let mut opts = DaemonOptions::default();
    let value_of = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = value_of("--addr", it)?,
            "--policy" => {
                let v = value_of("--policy", it)?;
                opts.policy =
                    PolicyChoice::parse(&v).ok_or_else(|| format!("unknown policy {v:?}"))?;
            }
            "--cpus" => {
                let v = value_of("--cpus", it)?;
                opts.cpus = v
                    .parse::<usize>()
                    .map_err(|_| format!("--cpus expects an integer, got {v:?}"))?;
                if opts.cpus == 0 {
                    return Err("--cpus must be at least 1".into());
                }
            }
            "--seed" => {
                let v = value_of("--seed", it)?;
                opts.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--backfill" => opts.backfill = true,
            "--max-queue" => {
                let v = value_of("--max-queue", it)?;
                opts.max_queue = v
                    .parse::<usize>()
                    .map_err(|_| format!("--max-queue expects an integer, got {v:?}"))?;
                if opts.max_queue == 0 {
                    return Err("--max-queue must be at least 1".into());
                }
            }
            "--time-scale" => {
                let v = value_of("--time-scale", it)?;
                let scale = v
                    .parse::<f64>()
                    .map_err(|_| format!("--time-scale expects a number, got {v:?}"))?;
                if !(scale >= 0.0 && scale.is_finite()) {
                    return Err(format!("--time-scale {v} must be finite and >= 0"));
                }
                opts.time_scale = scale;
            }
            "--max-sim-secs" => {
                let v = value_of("--max-sim-secs", it)?;
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| format!("--max-sim-secs expects seconds, got {v:?}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!("--max-sim-secs {v} must be positive and finite"));
                }
                opts.max_sim_secs = Some(secs);
            }
            "--stream" => opts.stream = Some(value_of("--stream", it)?),
            "--snapshot" => opts.snapshot = Some(value_of("--snapshot", it)?),
            "--restore" => opts.restore = Some(value_of("--restore", it)?),
            other => {
                return Err(format!("unknown option {other:?}; try `pdpa help`"));
            }
        }
    }
    Ok(Command::Daemon(opts))
}

/// Parses `pdpa submit ADDR --class NAME [flags]`.
fn parse_submit(it: &mut std::iter::Peekable<std::slice::Iter<String>>) -> Result<Command, String> {
    let mut opts = SubmitOptions::default();
    let value_of = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--class" => opts.class = value_of("--class", it)?,
            "--request" => {
                let v = value_of("--request", it)?;
                let request = v
                    .parse::<u64>()
                    .map_err(|_| format!("--request expects an integer, got {v:?}"))?;
                if request == 0 {
                    return Err("--request must be at least 1".into());
                }
                opts.request = Some(request);
            }
            "--work-secs" => {
                let v = value_of("--work-secs", it)?;
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| format!("--work-secs expects seconds, got {v:?}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!("--work-secs {v} must be positive and finite"));
                }
                opts.work_secs = Some(secs);
            }
            "--count" => {
                let v = value_of("--count", it)?;
                opts.count = v
                    .parse::<usize>()
                    .map_err(|_| format!("--count expects an integer, got {v:?}"))?;
                if opts.count == 0 {
                    return Err("--count must be at least 1".into());
                }
            }
            "--json" => opts.json = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}; try `pdpa help`"));
            }
            addr => {
                if !opts.addr.is_empty() {
                    return Err(format!(
                        "submit takes one address; got {:?} and {addr:?}",
                        opts.addr
                    ));
                }
                opts.addr = addr.to_string();
            }
        }
    }
    if opts.addr.is_empty() {
        return Err("submit needs the daemon address: `pdpa submit HOST:PORT --class swim`".into());
    }
    Ok(Command::Submit(opts))
}

/// Parses `pdpa ctl ADDR ACTION [ARG] [flags]`.
fn parse_ctl(it: &mut std::iter::Peekable<std::slice::Iter<String>>) -> Result<Command, String> {
    let mut addr = String::new();
    let mut action: Option<CtlAction> = None;
    let mut json = false;
    let mut snapshot_flag: Option<String> = None;
    let value_of = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    // An optional positional value directly after the action verb.
    let optional_positional =
        |it: &mut std::iter::Peekable<std::slice::Iter<String>>| match it.peek() {
            Some(next) if !next.starts_with('-') => it.next().cloned(),
            _ => None,
        };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--snapshot" => snapshot_flag = Some(value_of("--snapshot", it)?),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}; try `pdpa help`"));
            }
            word if addr.is_empty() => addr = word.to_string(),
            word if action.is_none() => {
                action = Some(match word {
                    "hello" => CtlAction::Hello,
                    "drain" => CtlAction::Drain,
                    "snapshot" => CtlAction::Snapshot(optional_positional(it)),
                    "shutdown" => CtlAction::Shutdown(None),
                    "cancel" => {
                        let v = it.next().ok_or("ctl cancel needs a job id")?;
                        CtlAction::Cancel(
                            v.parse::<u64>()
                                .map_err(|_| format!("ctl cancel expects a job id, got {v:?}"))?,
                        )
                    }
                    "jobs" => CtlAction::Jobs(match optional_positional(it) {
                        Some(v) => v
                            .parse::<usize>()
                            .map_err(|_| format!("ctl jobs expects a count, got {v:?}"))?,
                        None => 20,
                    }),
                    "job" => {
                        let v = it.next().ok_or("ctl job needs a job id")?;
                        CtlAction::Job(
                            v.parse::<u64>()
                                .map_err(|_| format!("ctl job expects a job id, got {v:?}"))?,
                        )
                    }
                    other => {
                        return Err(format!(
                            "unknown ctl action {other:?} (hello, drain, snapshot, shutdown, \
                             cancel, jobs, job)"
                        ))
                    }
                });
            }
            extra => {
                return Err(format!("unexpected ctl argument {extra:?}"));
            }
        }
    }
    if addr.is_empty() {
        return Err("ctl needs the daemon address: `pdpa ctl HOST:PORT ACTION`".into());
    }
    let mut action = action.ok_or("ctl needs an action: `pdpa ctl HOST:PORT drain`")?;
    if let Some(path) = snapshot_flag {
        match &mut action {
            CtlAction::Shutdown(snapshot) => *snapshot = Some(path),
            _ => return Err("--snapshot only applies to `ctl ... shutdown`".into()),
        }
    }
    Ok(Command::Ctl(CtlOptions { addr, action, json }))
}

/// Parses `pdpa tournament [trace.swf] [flags]`.
fn parse_tournament(
    it: &mut std::iter::Peekable<std::slice::Iter<String>>,
) -> Result<Command, String> {
    let mut opts = TournamentOptions::default();
    let value_of = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cpus" => {
                let v = value_of("--cpus", it)?;
                opts.cpus = v
                    .parse::<usize>()
                    .map_err(|_| format!("--cpus expects an integer, got {v:?}"))?;
                if opts.cpus == 0 {
                    return Err("--cpus must be at least 1".into());
                }
            }
            "--seed" => {
                let v = value_of("--seed", it)?;
                opts.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--load" => {
                let v = value_of("--load", it)?;
                let load = v
                    .parse::<f64>()
                    .map_err(|_| format!("--load expects a number, got {v:?}"))?;
                if !(load > 0.0 && load <= 2.0) {
                    return Err(format!("--load {v} out of range (0, 2]"));
                }
                opts.load = Some(load);
            }
            "--duration" => {
                let v = value_of("--duration", it)?;
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| format!("--duration expects seconds, got {v:?}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!(
                        "--duration {v} must be a positive number of seconds"
                    ));
                }
                opts.duration = Some(secs);
            }
            "--json" => opts.json = true,
            "--out" => opts.out = Some(value_of("--out", it)?),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}; try `pdpa help`"));
            }
            path => {
                if opts.trace_path.is_some() {
                    return Err(format!(
                        "tournament takes one trace path; got {:?} and {path:?}",
                        opts.trace_path.as_deref().unwrap_or("")
                    ));
                }
                opts.trace_path = Some(path.to_string());
            }
        }
    }
    if opts.duration.is_some() && opts.trace_path.is_some() {
        return Err("--duration shapes the generated trace; it conflicts with a trace file".into());
    }
    Ok(Command::Tournament(opts))
}

/// Parses a `--window A:B` value into a `[start, end)` pair of seconds.
fn parse_window(s: &str) -> Result<(f64, f64), String> {
    let (a, b) = s
        .split_once(':')
        .ok_or_else(|| format!("--window expects START:END, got {s:?}"))?;
    let from = a
        .parse::<f64>()
        .map_err(|_| format!("--window start is not a number: {a:?}"))?;
    let to = b
        .parse::<f64>()
        .map_err(|_| format!("--window end is not a number: {b:?}"))?;
    if !from.is_finite() || !to.is_finite() || from < 0.0 || to <= from {
        return Err(format!("--window {s} must satisfy 0 <= START < END"));
    }
    Ok((from, to))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn curves_has_no_options() {
        assert_eq!(parse(&argv("curves")).unwrap(), Command::Curves);
    }

    #[test]
    fn full_run_invocation() {
        let cmd = parse(&argv(
            "run --workload w2 --policy pdpa --load 0.8 --seed 7 --cpus 32 \
             --untuned --backfill --ascii --prv-out out.prv --swf-log log.swf",
        ))
        .unwrap();
        let Command::Run(o) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(o.workload, Workload::W2);
        assert_eq!(o.policy, Some(PolicyChoice::Pdpa));
        assert_eq!(o.load, 0.8);
        assert_eq!(o.seed, 7);
        assert_eq!(o.cpus, 32);
        assert!(o.untuned && o.backfill && o.ascii && o.trace);
        assert_eq!(o.prv_out.as_deref(), Some("out.prv"));
        assert_eq!(o.swf_log.as_deref(), Some("log.swf"));
    }

    #[test]
    fn fault_plan_flag() {
        let cmd = parse(&argv(
            "run --workload w1 --policy pdpa --faults cpu3@120;retry=2,backoff=30",
        ))
        .unwrap();
        let Command::Run(o) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(o.faults.as_deref(), Some("cpu3@120;retry=2,backoff=30"));
        assert!(parse(&argv("run --workload w1 --policy pdpa --faults"))
            .unwrap_err()
            .contains("--faults"));
    }

    #[test]
    fn observability_flags() {
        let cmd = parse(&argv(
            "run --workload w1 --policy pdpa --obs --trace-out t.json \
             --metrics-out m.json --mpl-csv mpl.csv",
        ))
        .unwrap();
        let Command::Run(o) = cmd else {
            panic!("expected Run")
        };
        assert!(o.obs && o.observing());
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(o.mpl_csv.as_deref(), Some("mpl.csv"));
        assert!(!Options::default().observing());
        assert!(parse(&argv("run --workload w1 --policy pdpa --trace-out"))
            .unwrap_err()
            .contains("--trace-out"));
    }

    #[test]
    fn run_requires_policy_and_workload() {
        assert!(parse(&argv("run --workload w1"))
            .unwrap_err()
            .contains("--policy"));
        assert!(parse(&argv("run --policy pdpa"))
            .unwrap_err()
            .contains("--workload"));
    }

    #[test]
    fn compare_needs_only_workload() {
        let cmd = parse(&argv("compare --workload w4")).unwrap();
        assert!(matches!(cmd, Command::Compare(_)));
    }

    #[test]
    fn analyze_parses_like_run() {
        let cmd = parse(&argv(
            "analyze --workload w1 --policy pdpa --analyze-out a.json",
        ))
        .unwrap();
        let Command::Analyze(o) = cmd else {
            panic!("expected Analyze")
        };
        assert_eq!(o.policy, Some(PolicyChoice::Pdpa));
        assert_eq!(o.analyze_out.as_deref(), Some("a.json"));
        assert!(o.observing());
        assert!(parse(&argv("analyze --workload w1"))
            .unwrap_err()
            .contains("--policy"));
    }

    #[test]
    fn diff_accepts_a_second_policy_and_seed() {
        let cmd = parse(&argv(
            "diff --workload w1 --policy pdpa --policy-b equip --seed-b 7",
        ))
        .unwrap();
        let Command::Diff(o) = cmd else {
            panic!("expected Diff")
        };
        assert_eq!(o.policy, Some(PolicyChoice::Pdpa));
        assert_eq!(o.policy_b, Some(PolicyChoice::Equipartition));
        assert_eq!(o.seed_b, Some(7));
        // The B-side flags are rejected everywhere else.
        assert!(
            parse(&argv("run --workload w1 --policy pdpa --policy-b equip"))
                .unwrap_err()
                .contains("--policy-b")
        );
        assert!(parse(&argv("diff --workload w1 --policy pdpa --seed-b x"))
            .unwrap_err()
            .contains("--seed-b"));
    }

    #[test]
    fn policy_aliases() {
        assert_eq!(
            PolicyChoice::parse("equal-efficiency"),
            Some(PolicyChoice::EqualEfficiency)
        );
        assert_eq!(
            PolicyChoice::parse("EQUIP"),
            Some(PolicyChoice::Equipartition)
        );
        assert_eq!(PolicyChoice::parse("nonesuch"), None);
    }

    #[test]
    fn replay_full_invocation() {
        let cmd = parse(&argv(
            "replay trace.swf --policy equip --load 0.9 --cpus 128 \
             --window 100:5000 --seed 9 --json --obs --analyze-out a.json \
             --trace-out t.json",
        ))
        .unwrap();
        let Command::Replay(o) = cmd else {
            panic!("expected Replay")
        };
        assert_eq!(o.trace_path, "trace.swf");
        assert_eq!(o.policy, PolicyChoice::Equipartition);
        assert_eq!(o.load, Some(0.9));
        assert_eq!(o.cpus, 128);
        assert_eq!(o.window, Some((100.0, 5000.0)));
        assert_eq!(o.seed, 9);
        assert!(o.json && o.obs);
        assert_eq!(o.analyze_out.as_deref(), Some("a.json"));
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
    }

    #[test]
    fn replay_defaults_and_flag_order() {
        // The trace path may come after the flags.
        let cmd = parse(&argv("replay --policy pdpa trace.swf")).unwrap();
        let Command::Replay(o) = cmd else {
            panic!("expected Replay")
        };
        assert_eq!(o.trace_path, "trace.swf");
        assert_eq!(o.policy, PolicyChoice::Pdpa);
        assert_eq!(o.load, None);
        assert_eq!(o.cpus, 60);
        assert_eq!(o.window, None);
        assert_eq!(o.seed, 42);
        assert!(!o.json && !o.obs);
    }

    #[test]
    fn replay_requires_trace_and_policy() {
        assert!(parse(&argv("replay --policy pdpa"))
            .unwrap_err()
            .contains("trace path"));
        assert!(parse(&argv("replay trace.swf"))
            .unwrap_err()
            .contains("--policy"));
        assert!(parse(&argv("replay a.swf b.swf --policy pdpa"))
            .unwrap_err()
            .contains("one trace path"));
    }

    #[test]
    fn replay_window_diagnostics() {
        assert!(parse(&argv("replay t.swf --policy pdpa --window 100"))
            .unwrap_err()
            .contains("START:END"));
        assert!(parse(&argv("replay t.swf --policy pdpa --window x:5"))
            .unwrap_err()
            .contains("not a number"));
        assert!(parse(&argv("replay t.swf --policy pdpa --window 9:4"))
            .unwrap_err()
            .contains("START < END"));
        assert!(parse(&argv("replay t.swf --policy pdpa --load 3"))
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn replay_shard_flags() {
        let cmd = parse(&argv(
            "replay t.swf --policy pdpa --shards 4 --epoch 5 --diff-shards 2",
        ))
        .unwrap();
        let Command::Replay(o) = cmd else {
            panic!("expected Replay")
        };
        assert_eq!(o.shards, Some(4));
        assert_eq!(o.epoch, Some(5.0));
        assert_eq!(o.diff_shards, Some(2));
    }

    #[test]
    fn replay_shard_flag_diagnostics() {
        assert!(parse(&argv("replay t.swf --policy pdpa --shards 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv("replay t.swf --policy irix --shards 2"))
            .unwrap_err()
            .contains("space-sharing"));
        assert!(parse(&argv("replay t.swf --policy pdpa --epoch 5"))
            .unwrap_err()
            .contains("--shards"));
        assert!(
            parse(&argv("replay t.swf --policy pdpa --shards 2 --epoch -1"))
                .unwrap_err()
                .contains("positive")
        );
        assert!(parse(&argv("replay t.swf --policy pdpa --diff-shards 4"))
            .unwrap_err()
            .contains("--shards"));
        assert!(parse(&argv(
            "replay t.swf --policy pdpa --shards 1 --diff-shards 0"
        ))
        .unwrap_err()
        .contains("at least 1"));
    }

    #[test]
    fn replay_observability_flags() {
        let cmd = parse(&argv(
            "replay t.swf --policy pdpa --shards 2 --profile-out p.json \
             --obs-out s.bin --obs-format binary --heartbeat 2.5",
        ))
        .unwrap();
        let Command::Replay(o) = cmd else {
            panic!("expected Replay")
        };
        assert_eq!(o.profile_out.as_deref(), Some("p.json"));
        assert_eq!(o.obs_out.as_deref(), Some("s.bin"));
        assert_eq!(o.obs_format, ObsFormat::Binary);
        assert_eq!(o.heartbeat, Some(2.5));
        assert!(o.watchdog, "watchdog must default on for replay");
        // The default encoding is text, and `bin` is accepted as an alias.
        assert_eq!(ReplayOptions::default().obs_format, ObsFormat::Text);
        assert_eq!(ObsFormat::parse("bin"), Some(ObsFormat::Binary));
        assert_eq!(ObsFormat::parse("csv"), None);
    }

    #[test]
    fn replay_watchdog_and_heartbeat_diagnostics() {
        let cmd = parse(&argv("replay t.swf --policy pdpa --no-watchdog")).unwrap();
        let Command::Replay(o) = cmd else {
            panic!("expected Replay")
        };
        assert!(!o.watchdog);
        assert!(parse(&argv("replay t.swf --policy pdpa --heartbeat -3"))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&argv("replay t.swf --policy pdpa --obs-format xml"))
            .unwrap_err()
            .contains("--obs-format"));
        // --obs-format binary is meaningless without a destination file.
        assert!(
            parse(&argv("replay t.swf --policy pdpa --obs-format binary"))
                .unwrap_err()
                .contains("--obs-out")
        );
    }

    #[test]
    fn replay_serve_and_obs_filter_flags() {
        let cmd = parse(&argv(
            "replay t.swf --policy pdpa --serve 127.0.0.1:0 --obs-filter decision,state",
        ))
        .unwrap();
        let Command::Replay(o) = cmd else {
            panic!("expected Replay")
        };
        assert_eq!(o.serve.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.obs_filter.as_deref(), Some("decision,state"));
        // Bad kind names fail at parse time, before any replay starts.
        assert!(
            parse(&argv("replay t.swf --policy pdpa --obs-filter bogus"))
                .unwrap_err()
                .contains("bogus")
        );
        // A diff replay runs the engine twice; there is no single live run
        // to serve.
        assert!(parse(&argv(
            "replay t.swf --policy pdpa --shards 2 --diff-shards 4 --serve 127.0.0.1:0"
        ))
        .unwrap_err()
        .contains("--diff-shards"));
    }

    #[test]
    fn watch_full_invocation_and_defaults() {
        let cmd = parse(&argv(
            "watch 127.0.0.1:7777 --follow --json --tail 5 --interval 0.5",
        ))
        .unwrap();
        let Command::Watch(o) = cmd else {
            panic!("expected Watch")
        };
        assert_eq!(o.addr, "127.0.0.1:7777");
        assert!(o.follow && o.json);
        assert_eq!(o.tail, Some(5));
        assert_eq!(o.interval, 0.5);
        let Command::Watch(o) = parse(&argv("watch localhost:9")).unwrap() else {
            panic!("expected Watch")
        };
        assert!(!o.follow && !o.json && o.tail.is_none());
        assert_eq!(o.interval, 1.0);
    }

    #[test]
    fn watch_diagnostics() {
        assert!(parse(&argv("watch")).unwrap_err().contains("address"));
        assert!(parse(&argv("watch a:1 b:2"))
            .unwrap_err()
            .contains("one address"));
        assert!(parse(&argv("watch a:1 --tail 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv("watch a:1 --interval -2"))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&argv("watch a:1 --bogus"))
            .unwrap_err()
            .contains("--bogus"));
    }

    #[test]
    fn from_stream_relaxes_workload_and_policy() {
        let cmd = parse(&argv("analyze --from-stream run.obs")).unwrap();
        let Command::Analyze(o) = cmd else {
            panic!("expected Analyze")
        };
        assert_eq!(o.from_stream.as_deref(), Some("run.obs"));
        assert!(o.policy.is_none());
        let cmd = parse(&argv("diff --from-stream a.obs --from-stream-b b.obs")).unwrap();
        assert!(matches!(cmd, Command::Diff(_)));
        // A stream diff needs both sides, and the flags stay scoped to
        // analyze/diff.
        assert!(parse(&argv("diff --from-stream a.obs"))
            .unwrap_err()
            .contains("--from-stream-b"));
        assert!(
            parse(&argv("run --workload w1 --policy pdpa --from-stream a.obs"))
                .unwrap_err()
                .contains("--from-stream")
        );
        assert!(parse(&argv("analyze --from-stream-b b.obs"))
            .unwrap_err()
            .contains("--from-stream-b"));
    }

    #[test]
    fn policy_slugs_are_stable() {
        // Trajectory mode names (`replay-<slug>`) must never change, or
        // the perf gate loses its baseline pairing.
        assert_eq!(PolicyChoice::Pdpa.slug(), "pdpa");
        assert_eq!(PolicyChoice::Equipartition.slug(), "equip");
        assert_eq!(PolicyChoice::EqualEfficiency.slug(), "equal-eff");
        assert_eq!(PolicyChoice::Hesrpt.slug(), "hesrpt");
        assert_eq!(PolicyChoice::Optsplit.slug(), "optsplit");
        assert_eq!(PolicyChoice::Learned.slug(), "learned");
    }

    #[test]
    fn literature_policies_parse_with_aliases() {
        assert_eq!(PolicyChoice::parse("hesrpt"), Some(PolicyChoice::Hesrpt));
        assert_eq!(PolicyChoice::parse("he-srpt"), Some(PolicyChoice::Hesrpt));
        assert_eq!(
            PolicyChoice::parse("opt-split"),
            Some(PolicyChoice::Optsplit)
        );
        assert_eq!(
            PolicyChoice::parse("learnedalloc"),
            Some(PolicyChoice::Learned)
        );
        // The new policies are space-shared, so sharded replay takes them.
        let cmd = parse(&argv("replay t.swf --policy hesrpt --shards 2")).unwrap();
        let Command::Replay(o) = cmd else {
            panic!("expected Replay")
        };
        assert_eq!(o.policy, PolicyChoice::Hesrpt);
        assert_eq!(o.shards, Some(2));
    }

    #[test]
    fn tournament_defaults_and_full_invocation() {
        let cmd = parse(&argv("tournament")).unwrap();
        assert_eq!(cmd, Command::Tournament(TournamentOptions::default()));
        let cmd = parse(&argv(
            "tournament big.swf --cpus 50 --seed 7 --load 0.9 --json --out r.json",
        ))
        .unwrap();
        let Command::Tournament(o) = cmd else {
            panic!("expected Tournament")
        };
        assert_eq!(o.trace_path.as_deref(), Some("big.swf"));
        assert_eq!(o.cpus, 50);
        assert_eq!(o.seed, 7);
        assert_eq!(o.load, Some(0.9));
        assert!(o.json);
        assert_eq!(o.out.as_deref(), Some("r.json"));
        let cmd = parse(&argv("tournament --duration 600")).unwrap();
        let Command::Tournament(o) = cmd else {
            panic!("expected Tournament")
        };
        assert_eq!(o.duration, Some(600.0));
    }

    #[test]
    fn tournament_diagnostics() {
        assert!(parse(&argv("tournament a.swf b.swf"))
            .unwrap_err()
            .contains("one trace path"));
        assert!(parse(&argv("tournament a.swf --duration 600"))
            .unwrap_err()
            .contains("--duration"));
        assert!(parse(&argv("tournament --duration -5"))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&argv("tournament --load 3"))
            .unwrap_err()
            .contains("out of range"));
        assert!(parse(&argv("tournament --cpus 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv("tournament --bogus"))
            .unwrap_err()
            .contains("--bogus"));
    }

    #[test]
    fn daemon_defaults_and_full_invocation() {
        let cmd = parse(&argv("daemon")).unwrap();
        assert_eq!(cmd, Command::Daemon(DaemonOptions::default()));
        let cmd = parse(&argv(
            "daemon --addr 127.0.0.1:7777 --policy rigid --cpus 8 --seed 9 \
             --backfill --max-queue 4 --time-scale 60 --max-sim-secs 5000 \
             --stream run.stream --snapshot run.snapshot --restore old.snapshot",
        ))
        .unwrap();
        let Command::Daemon(o) = cmd else {
            panic!("expected Daemon")
        };
        assert_eq!(o.addr, "127.0.0.1:7777");
        assert_eq!(o.policy, PolicyChoice::Rigid);
        assert_eq!(o.cpus, 8);
        assert_eq!(o.seed, 9);
        assert!(o.backfill);
        assert_eq!(o.max_queue, 4);
        assert_eq!(o.time_scale, 60.0);
        assert_eq!(o.max_sim_secs, Some(5000.0));
        assert_eq!(o.stream.as_deref(), Some("run.stream"));
        assert_eq!(o.snapshot.as_deref(), Some("run.snapshot"));
        assert_eq!(o.restore.as_deref(), Some("old.snapshot"));
    }

    #[test]
    fn daemon_diagnostics() {
        assert!(parse(&argv("daemon --cpus 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv("daemon --max-queue 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv("daemon --time-scale -1"))
            .unwrap_err()
            .contains(">= 0"));
        assert!(parse(&argv("daemon --policy bogus"))
            .unwrap_err()
            .contains("bogus"));
        assert!(parse(&argv("daemon --bogus"))
            .unwrap_err()
            .contains("--bogus"));
    }

    #[test]
    fn submit_parses_and_validates() {
        let cmd = parse(&argv(
            "submit 127.0.0.1:7777 --class bt.A --request 8 --work-secs 4000 --count 3 --json",
        ))
        .unwrap();
        let Command::Submit(o) = cmd else {
            panic!("expected Submit")
        };
        assert_eq!(o.addr, "127.0.0.1:7777");
        assert_eq!(o.class, "bt.A");
        assert_eq!(o.request, Some(8));
        assert_eq!(o.work_secs, Some(4000.0));
        assert_eq!(o.count, 3);
        assert!(o.json);
        // Defaults: one swim job.
        let Command::Submit(o) = parse(&argv("submit 127.0.0.1:7777")).unwrap() else {
            panic!("expected Submit")
        };
        assert_eq!(o.class, "swim");
        assert_eq!(o.count, 1);
        assert_eq!(o.request, None);
        assert!(parse(&argv("submit")).unwrap_err().contains("address"));
        assert!(parse(&argv("submit 127.0.0.1:7777 --request 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv("submit 127.0.0.1:7777 --work-secs -5"))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&argv("submit 127.0.0.1:7777 --count 0"))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv("submit a:1 b:2"))
            .unwrap_err()
            .contains("one address"));
    }

    #[test]
    fn ctl_grammar() {
        let ctl = |s: &str| match parse(&argv(s)).unwrap() {
            Command::Ctl(o) => o,
            other => panic!("expected Ctl, got {other:?}"),
        };
        assert_eq!(ctl("ctl a:1 hello").action, CtlAction::Hello);
        assert_eq!(ctl("ctl a:1 drain").action, CtlAction::Drain);
        assert_eq!(ctl("ctl a:1 snapshot").action, CtlAction::Snapshot(None));
        assert_eq!(
            ctl("ctl a:1 snapshot mid.snapshot").action,
            CtlAction::Snapshot(Some("mid.snapshot".to_string()))
        );
        assert_eq!(ctl("ctl a:1 shutdown").action, CtlAction::Shutdown(None));
        assert_eq!(
            ctl("ctl a:1 shutdown --snapshot final.snapshot").action,
            CtlAction::Shutdown(Some("final.snapshot".to_string()))
        );
        assert_eq!(ctl("ctl a:1 cancel 3").action, CtlAction::Cancel(3));
        assert_eq!(ctl("ctl a:1 jobs").action, CtlAction::Jobs(20));
        assert_eq!(ctl("ctl a:1 jobs 5").action, CtlAction::Jobs(5));
        assert_eq!(ctl("ctl a:1 job 7").action, CtlAction::Job(7));
        let o = ctl("ctl a:1 hello --json");
        assert!(o.json);
        assert_eq!(o.addr, "a:1");
    }

    #[test]
    fn ctl_diagnostics() {
        assert!(parse(&argv("ctl")).unwrap_err().contains("address"));
        assert!(parse(&argv("ctl a:1")).unwrap_err().contains("action"));
        assert!(parse(&argv("ctl a:1 explode"))
            .unwrap_err()
            .contains("explode"));
        assert!(parse(&argv("ctl a:1 cancel"))
            .unwrap_err()
            .contains("job id"));
        assert!(parse(&argv("ctl a:1 cancel x"))
            .unwrap_err()
            .contains("job id"));
        assert!(parse(&argv("ctl a:1 drain --snapshot p"))
            .unwrap_err()
            .contains("--snapshot"));
        assert!(parse(&argv("ctl a:1 hello extra"))
            .unwrap_err()
            .contains("extra"));
    }

    #[test]
    fn diagnostics_are_specific() {
        assert!(parse(&argv("run --workload w9 --policy pdpa"))
            .unwrap_err()
            .contains("w9"));
        assert!(parse(&argv("run --workload w1 --policy pdpa --load x"))
            .unwrap_err()
            .contains("--load"));
        assert!(parse(&argv("run --workload w1 --policy pdpa --load 5"))
            .unwrap_err()
            .contains("out of range"));
        assert!(parse(&argv("frobnicate"))
            .unwrap_err()
            .contains("frobnicate"));
        assert!(parse(&argv("run --workload w1 --policy pdpa --bogus"))
            .unwrap_err()
            .contains("--bogus"));
    }
}
