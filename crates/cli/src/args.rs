//! Hand-rolled argument parsing (no external dependencies).

use pdpa_qs::Workload;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `pdpa run` — one workload, one policy.
    Run(Options),
    /// `pdpa compare` — one workload, every policy.
    Compare(Options),
    /// `pdpa analyze` — one recorded run, full derived analytics.
    Analyze(Options),
    /// `pdpa diff` — two recorded runs, first divergence + metric deltas.
    Diff(Options),
    /// `pdpa curves` — print the Fig. 3 speedup curves.
    Curves,
    /// `pdpa help` / `--help`.
    Help,
}

/// Scheduling policies selectable from the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyChoice {
    /// The paper's contribution.
    Pdpa,
    /// Equipartition.
    Equipartition,
    /// Equal_efficiency.
    EqualEfficiency,
    /// The IRIX-like time-sharing model.
    Irix,
    /// Rigid first-fit space sharing.
    Rigid,
    /// Gang scheduling.
    Gang,
}

impl PolicyChoice {
    /// Parses a policy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "pdpa" => Some(PolicyChoice::Pdpa),
            "equip" | "equipartition" => Some(PolicyChoice::Equipartition),
            "equal-eff" | "equal_eff" | "equal-efficiency" => Some(PolicyChoice::EqualEfficiency),
            "irix" => Some(PolicyChoice::Irix),
            "rigid" => Some(PolicyChoice::Rigid),
            "gang" => Some(PolicyChoice::Gang),
            _ => None,
        }
    }
}

/// Options shared by `run` and `compare`.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// The workload to execute.
    pub workload: Workload,
    /// Policy (meaningful for `run`; `compare` runs them all).
    pub policy: Option<PolicyChoice>,
    /// System load fraction.
    pub load: f64,
    /// Seed for the generator and engine.
    pub seed: u64,
    /// Machine size.
    pub cpus: usize,
    /// Untuned requests (everything asks for 30).
    pub untuned: bool,
    /// Queue backfilling.
    pub backfill: bool,
    /// Trace collection.
    pub trace: bool,
    /// Print the ASCII execution view.
    pub ascii: bool,
    /// Write a Paraver trace here.
    pub prv_out: Option<String>,
    /// Write an SWF log here.
    pub swf_log: Option<String>,
    /// Print a decision-event summary after the metrics.
    pub obs: bool,
    /// Write a Chrome `trace_event` JSON of the decision-event stream here.
    pub trace_out: Option<String>,
    /// Write the metrics-registry snapshot as JSON here.
    pub metrics_out: Option<String>,
    /// Write the MPL/allocation time-series CSV here.
    pub mpl_csv: Option<String>,
    /// Write the `pdpa-analyze/v1` analysis document here.
    pub analyze_out: Option<String>,
    /// Fault-injection plan (the `pdpa_faults::FaultPlan` grammar),
    /// unparsed — validated against `cpus` when the engine is built.
    pub faults: Option<String>,
    /// Second policy for `pdpa diff` (defaults to `--policy`).
    pub policy_b: Option<PolicyChoice>,
    /// Second seed for `pdpa diff` (defaults to `--seed`).
    pub seed_b: Option<u64>,
}

impl Options {
    /// Whether the run must record its decision-event stream.
    pub fn observing(&self) -> bool {
        self.obs
            || self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.mpl_csv.is_some()
            || self.analyze_out.is_some()
    }
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: Workload::W3,
            policy: None,
            load: 1.0,
            seed: 42,
            cpus: 60,
            untuned: false,
            backfill: false,
            trace: false,
            ascii: false,
            prv_out: None,
            swf_log: None,
            obs: false,
            trace_out: None,
            metrics_out: None,
            mpl_csv: None,
            analyze_out: None,
            faults: None,
            policy_b: None,
            seed_b: None,
        }
    }
}

fn parse_workload(s: &str) -> Result<Workload, String> {
    match s.to_ascii_lowercase().as_str() {
        "w1" => Ok(Workload::W1),
        "w2" => Ok(Workload::W2),
        "w3" => Ok(Workload::W3),
        "w4" => Ok(Workload::W4),
        other => Err(format!("unknown workload {other:?}; expected w1..w4")),
    }
}

/// Parses an argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable diagnostic on any malformed input.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let Some(verb) = it.next() else {
        return Ok(Command::Help);
    };
    match verb.as_str() {
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "curves" => return Ok(Command::Curves),
        "run" | "compare" | "analyze" | "diff" => {}
        other => return Err(format!("unknown command {other:?}; try `pdpa help`")),
    }

    let mut opts = Options::default();
    let mut workload_set = false;
    let value_of = |flag: &str, it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => {
                opts.workload = parse_workload(&value_of("--workload", &mut it)?)?;
                workload_set = true;
            }
            "--policy" => {
                let v = value_of("--policy", &mut it)?;
                opts.policy =
                    Some(PolicyChoice::parse(&v).ok_or_else(|| format!("unknown policy {v:?}"))?);
            }
            "--load" => {
                let v = value_of("--load", &mut it)?;
                opts.load = v
                    .parse::<f64>()
                    .map_err(|_| format!("--load expects a number, got {v:?}"))?;
                if !(opts.load > 0.0 && opts.load <= 2.0) {
                    return Err(format!("--load {v} out of range (0, 2]"));
                }
            }
            "--seed" => {
                let v = value_of("--seed", &mut it)?;
                opts.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--cpus" => {
                let v = value_of("--cpus", &mut it)?;
                opts.cpus = v
                    .parse::<usize>()
                    .map_err(|_| format!("--cpus expects an integer, got {v:?}"))?;
                if opts.cpus == 0 {
                    return Err("--cpus must be at least 1".into());
                }
            }
            "--untuned" => opts.untuned = true,
            "--backfill" => opts.backfill = true,
            "--trace" => opts.trace = true,
            "--ascii" => {
                opts.ascii = true;
                opts.trace = true;
            }
            "--prv-out" => {
                opts.prv_out = Some(value_of("--prv-out", &mut it)?);
                opts.trace = true;
            }
            "--swf-log" => opts.swf_log = Some(value_of("--swf-log", &mut it)?),
            "--obs" => opts.obs = true,
            "--trace-out" => opts.trace_out = Some(value_of("--trace-out", &mut it)?),
            "--metrics-out" => opts.metrics_out = Some(value_of("--metrics-out", &mut it)?),
            "--mpl-csv" => opts.mpl_csv = Some(value_of("--mpl-csv", &mut it)?),
            "--analyze-out" => opts.analyze_out = Some(value_of("--analyze-out", &mut it)?),
            "--faults" => opts.faults = Some(value_of("--faults", &mut it)?),
            "--policy-b" => {
                let v = value_of("--policy-b", &mut it)?;
                opts.policy_b =
                    Some(PolicyChoice::parse(&v).ok_or_else(|| format!("unknown policy {v:?}"))?);
            }
            "--seed-b" => {
                let v = value_of("--seed-b", &mut it)?;
                opts.seed_b = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--seed-b expects an integer, got {v:?}"))?,
                );
            }
            other => return Err(format!("unknown option {other:?}; try `pdpa help`")),
        }
    }
    if !workload_set {
        return Err("--workload is required".into());
    }
    if verb != "diff" && (opts.policy_b.is_some() || opts.seed_b.is_some()) {
        return Err("--policy-b/--seed-b are only meaningful for `pdpa diff`".into());
    }
    match verb.as_str() {
        "run" | "analyze" | "diff" => {
            if opts.policy.is_none() {
                return Err(format!("--policy is required for `pdpa {verb}`"));
            }
            Ok(match verb.as_str() {
                "run" => Command::Run(opts),
                "analyze" => Command::Analyze(opts),
                _ => Command::Diff(opts),
            })
        }
        _ => Ok(Command::Compare(opts)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn curves_has_no_options() {
        assert_eq!(parse(&argv("curves")).unwrap(), Command::Curves);
    }

    #[test]
    fn full_run_invocation() {
        let cmd = parse(&argv(
            "run --workload w2 --policy pdpa --load 0.8 --seed 7 --cpus 32 \
             --untuned --backfill --ascii --prv-out out.prv --swf-log log.swf",
        ))
        .unwrap();
        let Command::Run(o) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(o.workload, Workload::W2);
        assert_eq!(o.policy, Some(PolicyChoice::Pdpa));
        assert_eq!(o.load, 0.8);
        assert_eq!(o.seed, 7);
        assert_eq!(o.cpus, 32);
        assert!(o.untuned && o.backfill && o.ascii && o.trace);
        assert_eq!(o.prv_out.as_deref(), Some("out.prv"));
        assert_eq!(o.swf_log.as_deref(), Some("log.swf"));
    }

    #[test]
    fn fault_plan_flag() {
        let cmd = parse(&argv(
            "run --workload w1 --policy pdpa --faults cpu3@120;retry=2,backoff=30",
        ))
        .unwrap();
        let Command::Run(o) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(o.faults.as_deref(), Some("cpu3@120;retry=2,backoff=30"));
        assert!(parse(&argv("run --workload w1 --policy pdpa --faults"))
            .unwrap_err()
            .contains("--faults"));
    }

    #[test]
    fn observability_flags() {
        let cmd = parse(&argv(
            "run --workload w1 --policy pdpa --obs --trace-out t.json \
             --metrics-out m.json --mpl-csv mpl.csv",
        ))
        .unwrap();
        let Command::Run(o) = cmd else {
            panic!("expected Run")
        };
        assert!(o.obs && o.observing());
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(o.mpl_csv.as_deref(), Some("mpl.csv"));
        assert!(!Options::default().observing());
        assert!(parse(&argv("run --workload w1 --policy pdpa --trace-out"))
            .unwrap_err()
            .contains("--trace-out"));
    }

    #[test]
    fn run_requires_policy_and_workload() {
        assert!(parse(&argv("run --workload w1"))
            .unwrap_err()
            .contains("--policy"));
        assert!(parse(&argv("run --policy pdpa"))
            .unwrap_err()
            .contains("--workload"));
    }

    #[test]
    fn compare_needs_only_workload() {
        let cmd = parse(&argv("compare --workload w4")).unwrap();
        assert!(matches!(cmd, Command::Compare(_)));
    }

    #[test]
    fn analyze_parses_like_run() {
        let cmd = parse(&argv(
            "analyze --workload w1 --policy pdpa --analyze-out a.json",
        ))
        .unwrap();
        let Command::Analyze(o) = cmd else {
            panic!("expected Analyze")
        };
        assert_eq!(o.policy, Some(PolicyChoice::Pdpa));
        assert_eq!(o.analyze_out.as_deref(), Some("a.json"));
        assert!(o.observing());
        assert!(parse(&argv("analyze --workload w1"))
            .unwrap_err()
            .contains("--policy"));
    }

    #[test]
    fn diff_accepts_a_second_policy_and_seed() {
        let cmd = parse(&argv(
            "diff --workload w1 --policy pdpa --policy-b equip --seed-b 7",
        ))
        .unwrap();
        let Command::Diff(o) = cmd else {
            panic!("expected Diff")
        };
        assert_eq!(o.policy, Some(PolicyChoice::Pdpa));
        assert_eq!(o.policy_b, Some(PolicyChoice::Equipartition));
        assert_eq!(o.seed_b, Some(7));
        // The B-side flags are rejected everywhere else.
        assert!(
            parse(&argv("run --workload w1 --policy pdpa --policy-b equip"))
                .unwrap_err()
                .contains("--policy-b")
        );
        assert!(parse(&argv("diff --workload w1 --policy pdpa --seed-b x"))
            .unwrap_err()
            .contains("--seed-b"));
    }

    #[test]
    fn policy_aliases() {
        assert_eq!(
            PolicyChoice::parse("equal-efficiency"),
            Some(PolicyChoice::EqualEfficiency)
        );
        assert_eq!(
            PolicyChoice::parse("EQUIP"),
            Some(PolicyChoice::Equipartition)
        );
        assert_eq!(PolicyChoice::parse("nonesuch"), None);
    }

    #[test]
    fn diagnostics_are_specific() {
        assert!(parse(&argv("run --workload w9 --policy pdpa"))
            .unwrap_err()
            .contains("w9"));
        assert!(parse(&argv("run --workload w1 --policy pdpa --load x"))
            .unwrap_err()
            .contains("--load"));
        assert!(parse(&argv("run --workload w1 --policy pdpa --load 5"))
            .unwrap_err()
            .contains("out of range"));
        assert!(parse(&argv("frobnicate"))
            .unwrap_err()
            .contains("frobnicate"));
        assert!(parse(&argv("run --workload w1 --policy pdpa --bogus"))
            .unwrap_err()
            .contains("--bogus"));
    }
}
