//! The `pdpa` binary: forwards the command line to the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pdpa_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(diagnostic) => {
            eprintln!("pdpa: {diagnostic}");
            ExitCode::from(2)
        }
    }
}
