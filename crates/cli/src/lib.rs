//! The `pdpa` command-line driver.
//!
//! A thin, dependency-free front end over the workspace:
//!
//! ```text
//! pdpa run     --workload w3 --policy pdpa --load 0.8 [options]
//! pdpa compare --workload w3 --load 0.8 [options]
//! pdpa analyze --workload w3 --policy pdpa [options]
//! pdpa diff    --workload w3 --policy pdpa --policy-b equip [options]
//! pdpa replay  trace.swf --policy pdpa [--load 1.0 --cpus 60 --window 0:45000]
//! pdpa tournament [trace.swf] [--load 1.0 --cpus 60 --json --out report.json]
//! pdpa watch   127.0.0.1:7777 [--follow --json --tail 20]
//! pdpa daemon  [--addr 127.0.0.1:7777 --policy pdpa --cpus 32 --time-scale 60]
//! pdpa submit  127.0.0.1:7777 --class swim [--request 8 --work-secs 4000 --count 10]
//! pdpa ctl     127.0.0.1:7777 <hello|drain|snapshot|shutdown|cancel|jobs|job> [...]
//! pdpa curves
//! ```
//!
//! All commands are implemented as library functions returning their output
//! as a `String`, so the whole surface is unit-testable; the binary in
//! `src/bin/pdpa.rs` only forwards `std::env::args` and prints.

pub mod args;
pub mod commands;

pub use args::{parse, Command, Options, ReplayOptions};
pub use commands::dispatch;

/// Runs the CLI against an argument list (excluding the program name) and
/// returns the output text.
///
/// # Errors
///
/// Returns a usage/diagnostic message on invalid arguments or a failed run.
pub fn run(args: &[String]) -> Result<String, String> {
    let command = parse(args)?;
    dispatch(command)
}

/// The usage text.
pub const USAGE: &str = "\
pdpa — Performance-Driven Processor Allocation reproduction driver

USAGE:
  pdpa run     --workload <w1|w2|w3|w4>
               --policy <pdpa|equip|equal-eff|irix|rigid|gang|hesrpt|optsplit|learned>
               [--load <frac>] [--seed <n>] [--cpus <n>] [--untuned]
               [--backfill] [--trace] [--ascii] [--prv-out <file>] [--swf-log <file>]
               [--obs] [--trace-out <file>] [--metrics-out <file>] [--mpl-csv <file>]
               [--analyze-out <file>] [--faults <plan>]
  pdpa compare --workload <w1|w2|w3|w4> [--load <frac>] [--seed <n>] [--cpus <n>] [--untuned]
  pdpa analyze --workload <w1|w2|w3|w4> --policy <name>
               [--load <frac>] [--seed <n>] [--cpus <n>] [--analyze-out <file>] [run options]
  pdpa analyze --from-stream <file>   [--analyze-out <file>]
  pdpa diff    --workload <w1|w2|w3|w4> --policy <name>
               [--policy-b <name>] [--seed-b <n>] [--load <frac>] [--seed <n>] [--cpus <n>]
  pdpa diff    --from-stream <file> --from-stream-b <file>
  pdpa replay  <trace.swf> --policy <name>
               [--load <frac>] [--cpus <n>] [--window <start:end>] [--seed <n>]
               [--shards <n>] [--epoch <secs>] [--diff-shards <n>]
               [--json] [--obs] [--trace-out <file>] [--analyze-out <file>]
               [--obs-out <file>] [--obs-format <text|binary>] [--profile-out <file>]
               [--no-watchdog] [--heartbeat <secs>] [--faults <plan>]
               [--serve <addr>] [--obs-filter <kind,...>]
  pdpa tournament [<trace.swf>] [--cpus <n>] [--seed <n>] [--load <frac>]
               [--duration <secs>] [--json] [--out <file>]
  pdpa watch   <host:port> [--follow] [--json] [--tail <n>] [--interval <secs>]
  pdpa daemon  [--addr <host:port>] [--policy <name>] [--cpus <n>] [--seed <n>]
               [--backfill] [--max-queue <n>] [--time-scale <x>]
               [--max-sim-secs <secs>] [--stream <file>] [--snapshot <file>]
               [--restore <file>]
  pdpa submit  <host:port> [--class <name>] [--request <n>] [--work-secs <secs>]
               [--count <n>] [--json]
  pdpa ctl     <host:port> hello | drain | snapshot [<file>]
               | shutdown [--snapshot <file>] | cancel <job> | jobs [<n>]
               | job <id>   [--json]
  pdpa curves

COMMANDS:
  run       execute one workload under one policy and print per-class metrics
  compare   execute one workload under every policy and print the comparison
  analyze   record one run and print derived analytics: per-job timelines,
            PDPA time-in-state, migration accounting, CPU/MPL series
  diff      record two runs and report the first divergent event (sim_time,
            seq, kind) plus per-metric deltas
  replay    replay a Standard Workload Format trace file through the engine:
            shape it (--window slice, --cpus remap, --load rescale), run it
            under one policy, and print makespan, utilization, and the
            per-job slowdown distribution; --json appends a replay-<policy>
            events-per-second entry to BENCH_pdpa.json for the CI perf gate
  tournament  race the whole policy zoo (PDPA, Equip, Equal_eff, Rigid,
            Gang, heSRPT, OptSplit, LearnedAlloc) over an SWF-replay leg
            (a given trace file, or a generated shaped one) and the fixed
            chaos fault plan, ranked by p50/p90/p99 per-job slowdown;
            --out writes the pdpa-tournament/v1 JSON report, --json
            appends tournament-<policy> entries to BENCH_pdpa.json
  watch     query a live `replay --serve` run over TCP: status, progress
            with events/s and ETA, health, and (with --tail) the newest
            observer events; --follow polls until the run finishes and
            exits non-zero if it was aborted; --json prints the raw
            protocol response lines; in follow mode a lost connection is
            retried with bounded backoff instead of exiting
  daemon    run pdpad, the resident scheduler daemon: own a live engine,
            admit streaming submissions with explicit backpressure, serve
            the whole watch query vocabulary on one socket, and
            snapshot/restore full scheduler state (see DAEMON.md)
  submit    push one or more jobs into a running daemon and print each
            admission decision; exits non-zero on any rejection
  ctl       one control request against a running daemon: hello, drain,
            snapshot [PATH], shutdown [--snapshot PATH], cancel JOB,
            jobs [N], job ID
  curves    print the calibrated Fig. 3 speedup curves

OPTIONS:
  --workload   one of the paper's Table-1 workloads (required for run/compare)
  --policy     scheduling policy (required for run)
  --load       system load fraction, default 1.0
  --seed       workload/engine seed, default 42
  --cpus       machine size, default 60
  --untuned    every application requests 30 processors (Tables 3/4)
  --backfill   scan the whole queue for an admissible job (not just the head)
  --trace      collect the per-CPU activity trace
  --ascii      print the Fig. 5 ASCII execution view (implies --trace)
  --prv-out    write a Paraver .prv trace to a file (implies --trace)
  --swf-log    write the completed run as an SWF log to a file
  --obs        print a decision-event summary after the metrics
  --trace-out  write the decision-event stream as Chrome trace_event JSON
               (open in Perfetto or chrome://tracing)
  --metrics-out  write the metrics-registry snapshot as JSON
  --mpl-csv    write the multiprogramming-level history as CSV (Fig. 8 data)
  --analyze-out  write the pdpa-analyze/v1 analysis document as JSON
  --policy-b   diff only: the second run's policy (defaults to --policy)
  --seed-b     diff only: the second run's seed (defaults to --seed)
  --window     replay only: keep submissions inside [start, end) seconds
  --shards     replay only: run the epoch-parallel sharded engine with this
               many shards (space-sharing policies only)
  --epoch      replay only: barrier epoch in simulated seconds (with --shards)
  --diff-shards  replay only: replay again at this shard count and fail
               unless the two decision-event streams are identical
  --json       replay only: append wall-clock + events/s (and, for sharded
               replays, the per-shard event imbalance) to BENCH_pdpa.json
  --obs-out    replay only: write the decision-event stream to a file
  --obs-format replay only: --obs-out encoding, text (default) or the
               PDPAOBS1 length-prefixed binary framing
  --profile-out  replay only: enable the span profiler and write its Chrome
               trace_event JSON (one lane per shard); also prints the text
               hot-path report
  --watchdog / --no-watchdog  replay only: abort with a structured
               diagnostic when the simulated clock stops advancing
               (default on)
  --heartbeat  replay only: print health snapshots (clock, events/s, queue
               depth, per-shard lag, memory) to stderr every SECS seconds
  --serve      replay only: answer status/progress/health/metrics/tail
               queries on this TCP address while the run is live
               (127.0.0.1:0 picks an ephemeral port, printed to stderr)
  --obs-filter replay only: keep only these comma-separated event kinds in
               the recorded stream (e.g. decision,state,mpl) — tames
               event-flooding policies like the IRIX 250 ms quantum
  --follow     watch only: poll every --interval seconds (default 1) until
               the run reaches a terminal state, reconnecting with bounded
               backoff if the server restarts
  --addr       daemon only: TCP address to bind (default 127.0.0.1:0, an
               ephemeral port printed to stderr)
  --max-queue  daemon only: admission bound — submits beyond this many
               waiting jobs are rejected with queue_full (default 64)
  --time-scale daemon only: simulated seconds advanced per wall-clock
               second (default 1.0; 0 freezes time between requests)
  --stream     daemon only: append the decision-event stream to this file
               (restores continue it without repeating events)
  --snapshot   daemon only: default snapshot path for `ctl snapshot` and
               `ctl shutdown --snapshot`
  --restore    daemon only: start from a pdpa-snapshot/v1 file instead of
               an empty machine
  --class      submit only: application class (swim, bt.A, hydro2d, apsi;
               default swim)
  --request    submit only: override the job's processor request
  --work-secs  submit only: rescale the job to this much sequential work
  --count      submit only: submit this many identical jobs (default 1)
  --tail       watch only: also fetch the newest N observer events
  --duration   tournament only: submission window of the generated trace
               in seconds (conflicts with a trace file)
  --out        tournament only: write the ranked report as JSON
  --from-stream / --from-stream-b  analyze/diff only: read recorded
               decision-event streams (text or binary, auto-detected)
               instead of running the engine; a stream diff exits non-zero
               on divergence
  --faults     inject a deterministic fault plan, e.g.
               \"cpu3@120:recover@300;job0@70;retry=2,backoff=30\" or \"mtbf=4000\"
";
