//! Command implementations.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use pdpa_analyze::{analysis_json, RunAnalysis, RunDiff};
use pdpa_apps::{paper_app, AppClass};
use pdpa_bench::experiments::tournament::{run_tournament, TournamentConfig};
use pdpa_bench::harness::BENCH_PATH;
use pdpa_bench::trajectory::{git_rev, BenchReport, TrajectoryEntry};
use pdpa_core::Pdpa;
use pdpa_engine::{Engine, EngineConfig, Instrumentation, RunResult};
use pdpa_faults::FaultPlan;
use pdpa_obs::metrics::Registry;
use pdpa_obs::{
    chrome_trace, metrics_json, mpl_series_csv, scope, FilterObserver, KindFilter, NullObserver,
    Observer, RecordingObserver,
};
use pdpa_policies::{
    EqualEfficiency, Equipartition, GangScheduler, HeSrpt, IrixLike, LearnedAlloc, OptSplit,
    RigidFirstFit, SchedulingPolicy,
};
use pdpa_prof::{HealthSnapshot, HeartbeatConfig, HeartbeatSink, StderrHeartbeat, WatchdogConfig};
use pdpa_qs::{shape, swf};
use pdpa_trace::{render_ascii, to_paraver, RenderOptions};
use pdpa_watch::{
    LiveTap, Request, RequestKind, Response, ResponseBody, RunMeta, RunState, StatusServer,
    TapObserver,
};

use crate::args::{
    Command, CtlAction, CtlOptions, DaemonOptions, ObsFormat, Options, PolicyChoice, ReplayOptions,
    SubmitOptions, TournamentOptions, WatchOptions,
};
use crate::USAGE;

/// Executes a parsed command and returns its output.
///
/// # Errors
///
/// Returns a diagnostic if a run fails to drain or a file cannot be written.
pub fn dispatch(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Curves => Ok(curves()),
        Command::Run(opts) => run_one(&opts),
        Command::Compare(opts) => compare(&opts),
        Command::Analyze(opts) => analyze(&opts),
        Command::Diff(opts) => diff(&opts),
        Command::Replay(opts) => replay(&opts),
        Command::Tournament(opts) => tournament(&opts),
        Command::Watch(opts) => watch(&opts),
        Command::Daemon(opts) => daemon(&opts),
        Command::Submit(opts) => submit(&opts),
        Command::Ctl(opts) => ctl(&opts),
    }
}

/// Routes heartbeat lines to stderr (the classic behaviour) *and* the live
/// tap, so `--heartbeat` plus `--serve` keeps its console output while the
/// `health` query reports the latest line.
struct TeeHeartbeat {
    tap: Arc<LiveTap>,
}

impl HeartbeatSink for TeeHeartbeat {
    fn emit(&self, line: &str, snapshot: &HealthSnapshot) {
        StderrHeartbeat.emit(line, snapshot);
        self.tap.emit(line, snapshot);
    }
}

fn build_policy(choice: PolicyChoice) -> Box<dyn SchedulingPolicy> {
    match choice {
        PolicyChoice::Pdpa => Box::new(Pdpa::paper_default()),
        PolicyChoice::Equipartition => Box::new(Equipartition::default()),
        PolicyChoice::EqualEfficiency => Box::new(EqualEfficiency::paper_default()),
        PolicyChoice::Irix => Box::new(IrixLike::paper_default()),
        PolicyChoice::Rigid => Box::new(RigidFirstFit::paper_default()),
        PolicyChoice::Gang => Box::new(GangScheduler::paper_comparable()),
        PolicyChoice::Hesrpt => Box::new(HeSrpt::default()),
        PolicyChoice::Optsplit => Box::new(OptSplit::default()),
        PolicyChoice::Learned => Box::new(LearnedAlloc::default()),
    }
}

fn engine_config(opts: &Options) -> Result<EngineConfig, String> {
    let mut config = EngineConfig::default()
        .with_seed(opts.seed ^ 0xA5A5)
        .with_cpus(opts.cpus);
    if opts.backfill {
        config = config.with_backfill();
    }
    if opts.trace {
        config = config.with_trace();
    }
    if let Some(plan) = &opts.faults {
        let plan = FaultPlan::parse(plan, opts.cpus).map_err(|e| format!("--faults: {e}"))?;
        config = config.with_faults(plan);
    }
    Ok(config)
}

fn execute_with(
    opts: &Options,
    choice: PolicyChoice,
    observer: &mut dyn Observer,
) -> Result<RunResult, String> {
    let jobs = opts
        .workload
        .build_with_tuning(opts.load, opts.seed, !opts.untuned);
    let result =
        Engine::new(engine_config(opts)?).run_observed(jobs, build_policy(choice), observer);
    if !result.completed_all {
        return Err(format!(
            "{:?} did not drain the workload within the simulation bound",
            choice
        ));
    }
    Ok(result)
}

fn execute(opts: &Options, choice: PolicyChoice) -> Result<RunResult, String> {
    execute_with(opts, choice, &mut NullObserver)
}

/// One-line-per-class metrics of a finished run.
fn class_table(result: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>13} {:>13} {:>10} {:>10}",
        "class", "jobs", "response (s)", "execution (s)", "slowdown", "avg procs"
    );
    for class in AppClass::ALL {
        if let Some(avgs) = result.summary.class_averages(class) {
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>13.1} {:>13.1} {:>10.2} {:>10.1}",
                class.name(),
                avgs.count,
                avgs.avg_response_secs,
                avgs.avg_execution_secs,
                result.summary.avg_slowdown(class).unwrap_or(f64::NAN),
                result
                    .avg_alloc_by_class
                    .get(&class)
                    .copied()
                    .unwrap_or(0.0),
            );
        }
    }
    out
}

fn run_one(opts: &Options) -> Result<String, String> {
    let choice = opts.policy.expect("parser enforces --policy for run");
    let mut recorder = RecordingObserver::new();
    let result = if opts.observing() {
        // Attribute this run's registry counters to a CLI scope so the
        // metrics export distinguishes it from harness experiments.
        let _scope = scope::enter(&format!("cli-{}", opts.workload));
        execute_with(opts, choice, &mut recorder)?
    } else {
        execute(opts, choice)?
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} (load {:.0} %, seed {}, {} CPUs{}{})",
        result.policy,
        opts.workload,
        opts.load * 100.0,
        opts.seed,
        opts.cpus,
        if opts.untuned { ", untuned" } else { "" },
        if opts.backfill { ", backfill" } else { "" },
    );
    let _ = writeln!(
        out,
        "makespan {:.1} s | mean response {:.1} s | p95 response {:.1} s | peak ML {} | utilization {:.0} % | migrations {}",
        result.summary.makespan_secs(),
        result.summary.overall_avg_response_secs(),
        result.summary.response_quantile_secs(0.95).unwrap_or(0.0),
        result.max_ml,
        result.utilization() * 100.0,
        result.total_migrations(),
    );
    if result.cpu_failures + result.job_retries + result.jobs_failed > 0 {
        let _ = writeln!(
            out,
            "faults: {} cpu failures | {} job retries | {} terminal job failures",
            result.cpu_failures, result.job_retries, result.jobs_failed,
        );
    }
    out.push('\n');
    out.push_str(&class_table(&result));

    if opts.ascii {
        let trace = result.trace.as_ref().expect("--ascii implies --trace");
        out.push('\n');
        out.push_str(&render_ascii(
            trace,
            &RenderOptions {
                width: 100,
                cpu_stride: (opts.cpus / 20).max(1),
            },
        ));
    }
    if let Some(path) = &opts.prv_out {
        let trace = result.trace.as_ref().expect("--prv-out implies --trace");
        std::fs::write(path, to_paraver(trace)).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nParaver trace written to {path}");
    }
    if let Some(path) = &opts.swf_log {
        let jobs = opts
            .workload
            .build_with_tuning(opts.load, opts.seed, !opts.untuned);
        // Outcomes in submission order (JobIds are dense submission ranks).
        let mut outcomes = vec![(0.0, 0.0, 0.0); jobs.len()];
        for o in result.summary.outcomes() {
            let procs = result.avg_alloc_by_job.get(&o.job).copied().unwrap_or(0.0);
            outcomes[o.job.index()] =
                (o.wait_time().as_secs(), o.execution_time().as_secs(), procs);
        }
        let mut sorted = jobs;
        sorted.sort_by_key(|a| a.submit);
        std::fs::write(path, swf::write_swf_log(&sorted, &outcomes))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nSWF log written to {path}");
    }
    if opts.observing() {
        let events = recorder.take_events();
        if opts.obs {
            out.push_str(&event_kind_summary(&events));
        }
        let runs = vec![(format!("{}-{}", opts.workload, result.policy), events)];
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, chrome_trace(&runs))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "\nChrome trace written to {path}");
        }
        if let Some(path) = &opts.mpl_csv {
            std::fs::write(path, mpl_series_csv(&runs))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "\nMPL series CSV written to {path}");
        }
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, metrics_json(&Registry::global().snapshot(), &[]))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "\nMetrics JSON written to {path}");
        }
        if let Some(path) = &opts.analyze_out {
            let analyses: Vec<(String, RunAnalysis)> = runs
                .iter()
                .map(|(key, events)| (key.clone(), RunAnalysis::from_events(events)))
                .collect();
            std::fs::write(path, analysis_json(&analyses))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "\nRun analysis JSON written to {path}");
        }
    }
    Ok(out)
}

/// `pdpa analyze`: run one configuration recorded and print every derived
/// metric (plus the JSON document under `--analyze-out`).
fn analyze(opts: &Options) -> Result<String, String> {
    // `--from-stream`: analyze a recorded decision-event stream (text or
    // PDPAOBS1 binary, auto-detected by magic bytes) without re-running
    // the engine.
    if let Some(path) = &opts.from_stream {
        let events = load_stream(path)?;
        let analysis = RunAnalysis::from_events(&events);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "analysis of recorded stream {path} ({} events)\n",
            events.len()
        );
        out.push_str(&analysis.render_text());
        if let Some(out_path) = &opts.analyze_out {
            std::fs::write(out_path, analysis_json(&[(path.clone(), analysis)]))
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            let _ = writeln!(out, "\nRun analysis JSON written to {out_path}");
        }
        return Ok(out);
    }
    let choice = opts.policy.expect("parser enforces --policy for analyze");
    let mut recorder = RecordingObserver::new();
    let result = {
        let _scope = scope::enter(&format!("cli-{}", opts.workload));
        execute_with(opts, choice, &mut recorder)?
    };
    let events = recorder.take_events();
    let analysis = RunAnalysis::from_events(&events);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "analysis of {} on {} (load {:.0} %, seed {}, {} CPUs)\n",
        result.policy,
        opts.workload,
        opts.load * 100.0,
        opts.seed,
        opts.cpus,
    );
    out.push_str(&analysis.render_text());
    // Cross-check the replayed migration count against the engine's own
    // counters: Table-2 migrations plus gang-rotation occupant churn (the
    // rotation reclaims the same footprint each slot, so Table 2 bills it
    // as zero, but the stream — and therefore the replay — sees every
    // hand-off). A mismatch means the event stream lost information.
    let engine_count = result.total_migrations() + result.quantum_rotations;
    let replayed = analysis.migrations.migrations();
    if replayed != engine_count {
        let _ = writeln!(
            out,
            "WARNING: replayed migrations ({replayed}) != engine count ({engine_count})"
        );
    }
    if let Some(path) = &opts.analyze_out {
        let key = format!("{}-{}", opts.workload, result.policy);
        std::fs::write(path, analysis_json(&[(key, analysis)]))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nRun analysis JSON written to {path}");
    }
    Ok(out)
}

/// `pdpa diff`: record two runs (policy/seed vs `--policy-b`/`--seed-b`,
/// defaulting to the same configuration) and report the first divergent
/// event plus per-metric deltas.
fn diff(opts: &Options) -> Result<String, String> {
    // `--from-stream A --from-stream-b B`: diff two recorded streams from
    // disk; each side may be text or PDPAOBS1 binary independently, so
    // this also cross-checks the two codecs against each other.
    if let (Some(path_a), Some(path_b)) = (&opts.from_stream, &opts.from_stream_b) {
        let events_a = load_stream(path_a)?;
        let events_b = load_stream(path_b)?;
        let run_diff = RunDiff::compare(&events_a, &events_b);
        let mut out = String::new();
        let _ = writeln!(out, "diff of recorded streams {path_a} vs {path_b}\n");
        out.push_str(&run_diff.render(path_a, path_b));
        if !run_diff.identical() {
            return Err(out);
        }
        return Ok(out);
    }
    let choice_a = opts.policy.expect("parser enforces --policy for diff");
    let choice_b = opts.policy_b.unwrap_or(choice_a);
    let opts_b = Options {
        seed: opts.seed_b.unwrap_or(opts.seed),
        ..opts.clone()
    };

    let mut rec_a = RecordingObserver::new();
    let mut rec_b = RecordingObserver::new();
    let (result_a, result_b) = {
        let _scope = scope::enter(&format!("cli-{}", opts.workload));
        (
            execute_with(opts, choice_a, &mut rec_a)?,
            execute_with(&opts_b, choice_b, &mut rec_b)?,
        )
    };
    let events_a = rec_a.take_events();
    let events_b = rec_b.take_events();
    let label_a = format!("{}/seed{}", result_a.policy, opts.seed);
    let label_b = format!("{}/seed{}", result_b.policy, opts_b.seed);

    let run_diff = RunDiff::compare(&events_a, &events_b);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff of {label_a} vs {label_b} on {} (load {:.0} %, {} CPUs)\n",
        opts.workload,
        opts.load * 100.0,
        opts.cpus,
    );
    out.push_str(&run_diff.render(&label_a, &label_b));
    Ok(out)
}

/// Reads a decision-event stream file in either encoding, auto-detected
/// by the `PDPAOBS1` magic bytes.
fn load_stream(path: &str) -> Result<Vec<pdpa_obs::TimedEvent>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    pdpa_obs::parse_stream(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// Per-kind counts of a recorded decision-event stream (`--obs` output).
fn event_kind_summary(events: &[pdpa_obs::TimedEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\ndecision-event stream: {} events", events.len());
    for kind in [
        "submit",
        "dequeue",
        "start",
        "finish",
        "iter",
        "decision",
        "state",
        "mpl",
        "cost",
        "cpu",
        "cpu_failed",
        "cpu_recovered",
        "degraded",
        "retry",
        "job_failed",
    ] {
        let n = events.iter().filter(|te| te.event.kind() == kind).count();
        if n > 0 {
            let _ = writeln!(out, "  {kind:<8} {n}");
        }
    }
    out
}

/// `pdpa replay`: stream an SWF trace file through the shaping transforms
/// and the engine, and report makespan, utilization, and the per-job
/// slowdown distribution. `--json` appends a `replay-<policy>` entry to
/// the bench trajectory so CI gates replay throughput.
fn replay(opts: &ReplayOptions) -> Result<String, String> {
    let file = std::fs::File::open(&opts.trace_path)
        .map_err(|e| format!("cannot open {}: {e}", opts.trace_path))?;
    let trace = swf::read_swf(std::io::BufReader::new(file))
        .map_err(|e| format!("{}: {e}", opts.trace_path))?;
    let raw_jobs = trace.records.len();
    let from_cpus = trace.machine_size().unwrap_or(opts.cpus);

    let mut records = trace.records;
    if let Some((a, b)) = opts.window {
        records = shape::slice_window(&records, a, b);
    }
    records = shape::remap_machine(&records, from_cpus, opts.cpus);
    if let Some(load) = opts.load {
        records = shape::rescale_load(&records, load, opts.cpus);
    }
    if records.is_empty() {
        return Err(format!(
            "{}: no jobs to replay ({raw_jobs} in the trace, 0 after shaping)",
            opts.trace_path
        ));
    }
    let demand = shape::demand(&records, opts.cpus);
    let span = records
        .iter()
        .map(|r| r.submit_secs)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), t| {
            (lo.min(t), hi.max(t))
        });
    let span_secs = (span.1 - span.0).max(0.0);
    let jobs = shape::jobs_from_records(&records);
    let n_jobs = jobs.len();

    let mut config = EngineConfig::default()
        .with_seed(opts.seed ^ 0xA5A5)
        .with_cpus(opts.cpus);
    // Long traces need headroom past the default simulation bound: give the
    // slowest policies many times the submission span to drain.
    config.max_sim_secs = config.max_sim_secs.max(span_secs * 20.0 + 10_000.0);
    if let Some(plan) = &opts.faults {
        let plan = FaultPlan::parse(plan, opts.cpus).map_err(|e| format!("--faults: {e}"))?;
        config = config.with_faults(plan);
    }

    let jobs_b = opts.diff_shards.map(|_| jobs.clone());
    let config_b = config.clone();

    let mut instr = Instrumentation::none();
    if opts.profile_out.is_some() {
        instr = instr.with_profile();
    }
    if opts.watchdog {
        instr = instr.with_watchdog(match opts.shards {
            Some(_) => WatchdogConfig::sharded(),
            None => WatchdogConfig::classic(),
        });
    }
    if let Some(secs) = opts.heartbeat {
        instr = instr.with_heartbeat(HeartbeatConfig {
            every: std::time::Duration::from_secs_f64(secs),
        });
    }

    // `--serve ADDR`: bind the status server before the run starts so a
    // watcher can connect from the first event, and print the actual
    // address (ephemeral `:0` ports resolve at bind time).
    let serve = match &opts.serve {
        Some(addr) => {
            let tap = LiveTap::new(RunMeta {
                policy: build_policy(opts.policy).name().to_string(),
                trace: opts.trace_path.clone(),
                shards: opts.shards.unwrap_or(1) as u64,
                jobs_total: n_jobs as u64,
            });
            let server = StatusServer::bind(addr.as_str(), Arc::clone(&tap))
                .map_err(|e| format!("--serve {addr}: {e}"))?;
            eprintln!("serve: listening on {}", server.local_addr());
            instr = instr.with_tap(Arc::clone(&tap) as _);
            instr = instr.with_heartbeat_sink(Arc::new(TeeHeartbeat {
                tap: Arc::clone(&tap),
            }));
            Some((tap, server))
        }
        None => None,
    };

    let mut recorder = RecordingObserver::new();
    let started = std::time::Instant::now();
    let result = {
        let _scope = scope::enter("cli-replay");
        let engine = Engine::new(config);
        // Observer chain, innermost out: recorder <- tap tee <- kind
        // filter. The filter wraps the outside so the recorded stream and
        // the tap's tail agree on what was kept.
        let mut observer: &mut dyn Observer = &mut recorder;
        let mut tap_tee;
        if let Some((tap, _)) = &serve {
            tap_tee = TapObserver::new(observer, Arc::clone(tap));
            observer = &mut tap_tee;
        }
        let mut filtered;
        if let Some(spec) = &opts.obs_filter {
            let filter = KindFilter::parse(spec).expect("validated at parse time");
            filtered = FilterObserver::new(observer, filter);
            observer = &mut filtered;
        }
        match opts.shards {
            Some(shards) => engine.run_sharded_instrumented(
                jobs,
                build_policy(opts.policy),
                shards,
                opts.epoch.unwrap_or(pdpa_engine::shard::DEFAULT_EPOCH_SECS),
                observer,
                instr,
            ),
            None => engine.run_instrumented(jobs, build_policy(opts.policy), observer, instr),
        }
    };
    let wall_secs = started.elapsed().as_secs_f64();
    // Publish the terminal state, give polling watchers a window to see
    // it, then tear the server down — on the abort path too, so a
    // `pdpa watch --follow` observes the failure instead of a dead socket.
    let served_connections = serve.map(|(tap, server)| {
        match &result.watchdog {
            Some(diag) => tap.mark_aborted(diag),
            None => tap.mark_done(),
        }
        server.wait_for_final_query(Duration::from_secs(10));
        let connections = server.connections();
        server.shutdown();
        connections
    });
    if let Some(diag) = &result.watchdog {
        return Err(format!("{}: {diag}", opts.trace_path));
    }
    if !result.completed_all {
        return Err(format!(
            "{:?} did not drain the trace within the simulation bound",
            opts.policy
        ));
    }
    let events = recorder.take_events();
    let analysis = RunAnalysis::from_events(&events);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replay of {} under {} ({} jobs over {:.0} s, demand {:.2}, {} CPUs, seed {})",
        opts.trace_path, result.policy, n_jobs, span_secs, demand, opts.cpus, opts.seed,
    );
    let mut transforms = Vec::new();
    if let Some((a, b)) = opts.window {
        transforms.push(format!("window {a:.0}:{b:.0}"));
    }
    if from_cpus != opts.cpus {
        transforms.push(format!("machine {from_cpus} -> {}", opts.cpus));
    }
    if let Some(load) = opts.load {
        transforms.push(format!("load -> {load:.2}"));
    }
    if !transforms.is_empty() {
        let _ = writeln!(out, "transforms: {}", transforms.join(" | "));
    }
    let _ = writeln!(
        out,
        "makespan {:.1} s | utilization {:.1} % | peak ML {} | migrations {} | {} events drained",
        result.summary.makespan_secs(),
        result.utilization() * 100.0,
        result.max_ml,
        result.total_migrations(),
        result.events_popped,
    );
    let dist = analysis.timeline.slowdown_dist.unwrap_or_default();
    let _ = writeln!(
        out,
        "slowdown avg {:.3} | p50 {:.3} | p90 {:.3} | p99 {:.3} | max {:.1}",
        analysis.timeline.avg_slowdown, dist.p50, dist.p90, dist.p99, dist.max,
    );
    out.push('\n');
    out.push_str(&class_table(&result));
    if opts.obs {
        out.push_str(&event_kind_summary(&events));
    }
    if let Some(n) = served_connections {
        let _ = writeln!(out, "\nstatus server answered {n} connection(s)");
    }

    // `--diff-shards N`: replay again at N shards and require the two
    // decision-event streams to be identical — the shard-count-invariance
    // contract of the sharded engine, checked end to end on a real trace.
    if let Some(shards_b) = opts.diff_shards {
        let shards_a = opts.shards.expect("parser enforces --shards");
        let mut rec_b = RecordingObserver::new();
        let instr_b = if opts.watchdog {
            Instrumentation::none().with_watchdog(WatchdogConfig::sharded())
        } else {
            Instrumentation::none()
        };
        let result_b = {
            let _scope = scope::enter("cli-replay");
            Engine::new(config_b).run_sharded_instrumented(
                jobs_b.expect("cloned when --diff-shards is set"),
                build_policy(opts.policy),
                shards_b,
                opts.epoch.unwrap_or(pdpa_engine::shard::DEFAULT_EPOCH_SECS),
                &mut rec_b,
                instr_b,
            )
        };
        if let Some(diag) = &result_b.watchdog {
            return Err(format!("{}: {diag}", opts.trace_path));
        }
        if !result_b.completed_all {
            return Err(format!(
                "{:?} at {shards_b} shards did not drain the trace within the simulation bound",
                opts.policy
            ));
        }
        let events_b = rec_b.take_events();
        let label_a = format!("{}-s{shards_a}", opts.policy.slug());
        let label_b = format!("{}-s{shards_b}", opts.policy.slug());
        let run_diff = RunDiff::compare(&events, &events_b);
        if !run_diff.identical() {
            return Err(format!(
                "shard-count divergence:\n{}",
                run_diff.render(&label_a, &label_b)
            ));
        }
        let _ = writeln!(out, "\n{}", run_diff.render(&label_a, &label_b));
    }

    let key = match opts.shards {
        Some(shards) => format!("replay-{}-s{shards}", opts.policy.slug()),
        None => format!("replay-{}", opts.policy.slug()),
    };
    if let Some(path) = &opts.trace_out {
        let runs = vec![(key.clone(), events.clone())];
        std::fs::write(path, chrome_trace(&runs))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nChrome trace written to {path}");
    }
    if let Some(path) = &opts.analyze_out {
        std::fs::write(path, analysis_json(&[(key.clone(), analysis)]))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nRun analysis JSON written to {path}");
    }
    if let Some(path) = &opts.obs_out {
        let (bytes, fmt) = match opts.obs_format {
            ObsFormat::Binary => (pdpa_obs::write_stream(&events), "binary"),
            ObsFormat::Text => (pdpa_obs::write_text_stream(&events).into_bytes(), "text"),
        };
        std::fs::write(path, bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "\ndecision-event stream ({fmt}, {} events) written to {path}",
            events.len()
        );
    }
    if let Some(path) = &opts.profile_out {
        let profile = result
            .profile
            .as_ref()
            .expect("--profile-out enables the profiler");
        std::fs::write(path, profile.chrome_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nprofile trace written to {path}\n");
        out.push_str(&profile.hot_path_report());
    }
    if opts.json {
        let entry = replay_entry(
            &key,
            opts.shards,
            wall_secs,
            result.events_popped,
            pdpa_prof::report::imbalance(&result.shard_events_popped),
        );
        let existing = std::fs::read_to_string(BENCH_PATH).ok();
        std::fs::write(
            BENCH_PATH,
            BenchReport::append_entry(existing.as_deref(), entry),
        )
        .map_err(|e| format!("cannot write {BENCH_PATH}: {e}"))?;
        let _ = writeln!(
            out,
            "\ntrajectory entry ({key}) appended to {BENCH_PATH} \
             ({:.0} events/s over {wall_secs:.3} s)",
            result.events_popped as f64 / wall_secs.max(1e-9),
        );
    }
    Ok(out)
}

/// The trajectory entry a `--json` replay appends: one `replay-<policy>`
/// mode per classic replay and one `replay-<policy>-s<N>` mode per shard
/// count, gated by `bench-compare` like the harness's own modes. The
/// `threads` field records the worker threads actually used — 1 for the
/// classic sequential engine, the shard count for `--shards N` — and
/// sharded entries carry the per-shard event-count imbalance
/// (`max/mean - 1`) so the trajectory tracks partitioning skew over time.
fn replay_entry(
    mode: &str,
    shards: Option<usize>,
    wall_secs: f64,
    events_popped: u64,
    shard_imbalance: Option<f64>,
) -> TrajectoryEntry {
    TrajectoryEntry {
        git_rev: git_rev(),
        mode: mode.to_string(),
        threads: shards.unwrap_or(1),
        wall_secs,
        events_per_sec: events_popped as f64 / wall_secs.max(1e-9),
        shard_imbalance: if shards.is_some() {
            shard_imbalance
        } else {
            None
        },
    }
}

/// Sends `requests` down one connection to a `--serve` replay and returns
/// the responses in order.
fn query_live(addr: &str, requests: &[Request]) -> Result<Vec<Response>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());
    for request in requests {
        writer
            .write_all(format!("{}\n", request.to_line()).as_bytes())
            .map_err(|e| format!("{addr}: send failed: {e}"))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("{addr}: read failed: {e}"))?;
        if line.is_empty() {
            return Err(format!("{addr}: server closed the connection"));
        }
        let response = Response::parse_line(line.trim_end())
            .map_err(|e| format!("{addr}: bad response: {e}"))?;
        if response.id != request.id {
            return Err(format!(
                "{addr}: response id {} for request id {}",
                response.id, request.id
            ));
        }
        responses.push(response);
    }
    Ok(responses)
}

/// One watch poll rendered for humans.
fn render_watch(responses: &[Response]) -> String {
    let mut out = String::new();
    for response in responses {
        match &response.body {
            ResponseBody::Status(s) => {
                let _ = writeln!(
                    out,
                    "run: {} on {} [{}] shards={}",
                    s.policy,
                    s.trace,
                    s.state.label(),
                    s.shards,
                );
                let _ = writeln!(
                    out,
                    "jobs: {}/{} finished ({} failed), {} submitted, {} events published",
                    s.jobs_finished,
                    s.jobs_total,
                    s.jobs_failed,
                    s.jobs_submitted,
                    s.events_published,
                );
                if let Some(diag) = &s.watchdog {
                    let _ = writeln!(out, "watchdog: {diag}");
                }
            }
            ResponseBody::Progress(p) => {
                let _ = writeln!(
                    out,
                    "progress: sim clock {:.1} s | {} events drained ({:.0}/s) | qlen {} | running {} | waiting {}",
                    p.sim_clock_secs, p.events_popped, p.events_per_sec, p.queue_len,
                    p.running, p.waiting,
                );
                match p.eta_secs {
                    Some(eta) => {
                        let _ = writeln!(out, "eta: ~{eta:.0} s (elapsed {:.1} s)", p.elapsed_secs);
                    }
                    None => {
                        let _ = writeln!(out, "eta: n/a (elapsed {:.1} s)", p.elapsed_secs);
                    }
                }
            }
            ResponseBody::Health(h) => {
                if let Some(line) = &h.heartbeat {
                    let _ = writeln!(out, "health: {line}");
                }
                if let Some(imb) = h.imbalance {
                    let _ = writeln!(
                        out,
                        "health: shard imbalance {imb:.3} over {} shards",
                        h.shard_events.len()
                    );
                }
                if let Some(kib) = h.memory_hwm_kib {
                    let _ = writeln!(out, "health: memory high-water {kib} KiB");
                }
                if let Some(diag) = &h.watchdog {
                    let _ = writeln!(out, "health: watchdog fired: {diag}");
                }
            }
            ResponseBody::Tail(t) => {
                let _ = writeln!(
                    out,
                    "tail: {} recent event(s), {} dropped from the ring",
                    t.events.len(),
                    t.dropped
                );
                for event in &t.events {
                    let _ = writeln!(out, "  {event}");
                }
            }
            ResponseBody::Metrics { body, .. } => out.push_str(body),
            ResponseBody::Hello(h) => {
                let _ = writeln!(
                    out,
                    "server: {} proto v{} running {} [{}]",
                    h.server,
                    h.proto,
                    h.policy,
                    h.state.label(),
                );
            }
            ResponseBody::Ack(a) => {
                let _ = write!(out, "ack");
                if let Some(job) = a.job {
                    let _ = write!(out, ": job {job}");
                }
                if let Some(at) = a.at_secs {
                    let _ = write!(out, " at t={at:.2}s");
                }
                if let Some(info) = &a.info {
                    let _ = write!(out, " ({info})");
                }
                out.push('\n');
            }
            ResponseBody::Reject(r) => {
                let _ = write!(out, "rejected: {}", r.reason);
                if let Some(after) = r.retry_after_secs {
                    let _ = write!(out, " (retry after {after:.1}s)");
                }
                out.push('\n');
            }
            ResponseBody::Jobs(rows) => {
                let _ = writeln!(out, "jobs: {} record(s)", rows.len());
                for row in rows {
                    out.push_str(&render_job_row(row));
                }
            }
            ResponseBody::Job(row) => out.push_str(&render_job_row(row)),
            ResponseBody::Error { message } => {
                let _ = writeln!(out, "error: {message}");
            }
        }
    }
    out
}

/// One registry record rendered for humans.
fn render_job_row(row: &pdpa_watch::JobRow) -> String {
    let finish = row
        .finish_secs
        .map_or("-".to_string(), |t| format!("{t:.1}"));
    format!(
        "  job {:>4} {:<8} p={:<3} {:<9} submit={:.1} finish={finish}\n",
        row.job, row.class, row.request, row.state, row.submit_secs,
    )
}

/// How many consecutive failed polls a `--follow` watch tolerates before
/// giving up on the server entirely.
const FOLLOW_MAX_FAILURES: u32 = 8;

/// `pdpa watch`: query a live `--serve` replay. One shot by default;
/// `--follow` polls until the run reaches a terminal state and exits
/// nonzero if that state is aborted. In follow mode a lost connection —
/// the server restarting, say a daemon bouncing through snapshot/restore
/// — is retried with bounded exponential backoff (0.2 s doubling to a
/// 5 s cap) instead of killing the watch; only
/// [`FOLLOW_MAX_FAILURES`] consecutive failures end it.
fn watch(opts: &WatchOptions) -> Result<String, String> {
    let mut failures: u32 = 0;
    loop {
        let mut requests = vec![
            Request {
                id: 1,
                kind: RequestKind::Status,
            },
            Request {
                id: 2,
                kind: RequestKind::Progress,
            },
            Request {
                id: 3,
                kind: RequestKind::Health,
            },
        ];
        if let Some(n) = opts.tail {
            requests.push(Request {
                id: 4,
                kind: RequestKind::Tail { n },
            });
        }
        let responses = match query_live(&opts.addr, &requests) {
            Ok(responses) => {
                failures = 0;
                responses
            }
            Err(err) if opts.follow => {
                failures += 1;
                if failures >= FOLLOW_MAX_FAILURES {
                    return Err(format!(
                        "{err} ({failures} consecutive failures; giving up)"
                    ));
                }
                let backoff = (0.2 * f64::from(1u32 << (failures - 1).min(10))).min(5.0);
                eprintln!("watch: {err}; retrying in {backoff:.1}s");
                std::thread::sleep(Duration::from_secs_f64(backoff));
                continue;
            }
            Err(err) => return Err(err),
        };
        let rendered = if opts.json {
            let mut lines = String::new();
            for response in &responses {
                let _ = writeln!(lines, "{}", response.to_line());
            }
            lines
        } else {
            render_watch(&responses)
        };
        let state = responses.iter().find_map(|r| match &r.body {
            ResponseBody::Status(s) => Some((s.state, s.watchdog.clone())),
            _ => None,
        });
        let Some((state, watchdog)) = state else {
            return Err(format!("{}: no status in response", opts.addr));
        };
        if state == RunState::Aborted {
            return Err(format!(
                "{rendered}\nrun aborted: {}",
                watchdog.as_deref().unwrap_or("(no watchdog diagnostic)")
            ));
        }
        if !opts.follow || state == RunState::Done {
            return Ok(rendered);
        }
        // Follow mode: show each poll as it happens; the final poll is
        // returned (and printed) by the caller.
        print!("{rendered}");
        if !opts.json {
            println!("--");
        }
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs_f64(opts.interval));
    }
}

/// `pdpa daemon`: bind `pdpad` and serve until a `shutdown` request (or
/// fatal bind error). The bound address goes to *stderr* immediately so
/// scripts can scrape it while the serve loop still owns stdout's final
/// summary.
fn daemon(opts: &DaemonOptions) -> Result<String, String> {
    let config = pdpa_daemon::DaemonConfig {
        policy: opts.policy.slug().to_string(),
        cpus: opts.cpus,
        seed: opts.seed,
        backfill: opts.backfill,
        max_sim_secs: opts.max_sim_secs,
        max_queue: opts.max_queue,
        time_scale: opts.time_scale,
        stream_path: opts.stream.clone(),
        snapshot_path: opts.snapshot.clone(),
        ..pdpa_daemon::DaemonConfig::default()
    };
    let daemon = pdpa_daemon::bind_daemon(config, opts.restore.as_deref(), &opts.addr)?;
    eprintln!("pdpad: listening on {}", daemon.local_addr());
    daemon.run()
}

/// `pdpa submit`: push one or more jobs into a running daemon and report
/// each admission decision. Exits nonzero if any submission is rejected,
/// so shell loops can react to backpressure.
fn submit(opts: &SubmitOptions) -> Result<String, String> {
    let requests: Vec<Request> = (0..opts.count)
        .map(|i| Request {
            id: i as u64 + 1,
            kind: RequestKind::Submit {
                class: opts.class.clone(),
                request: opts.request,
                work_secs: opts.work_secs,
            },
        })
        .collect();
    let responses = query_live(&opts.addr, &requests)?;
    let mut out = String::new();
    let mut rejected = 0usize;
    for response in &responses {
        if opts.json {
            let _ = writeln!(out, "{}", response.to_line());
        } else {
            out.push_str(&render_watch(std::slice::from_ref(response)));
        }
        if matches!(response.body, ResponseBody::Reject(_)) {
            rejected += 1;
        }
    }
    if rejected > 0 {
        return Err(format!(
            "{out}{rejected} of {} submission(s) rejected",
            opts.count
        ));
    }
    Ok(out)
}

/// `pdpa ctl`: one control request against a running daemon.
fn ctl(opts: &CtlOptions) -> Result<String, String> {
    let kind = match &opts.action {
        CtlAction::Hello => RequestKind::Hello,
        CtlAction::Drain => RequestKind::Drain,
        CtlAction::Snapshot(path) => RequestKind::Snapshot { path: path.clone() },
        CtlAction::Shutdown(snapshot) => RequestKind::Shutdown {
            snapshot: snapshot.clone(),
        },
        CtlAction::Cancel(job) => RequestKind::Cancel { job: *job },
        CtlAction::Jobs(n) => RequestKind::Jobs { n: *n },
        CtlAction::Job(job) => RequestKind::Job { job: *job },
    };
    let responses = query_live(&opts.addr, &[Request { id: 1, kind }])?;
    let rendered = if opts.json {
        let mut lines = String::new();
        for response in &responses {
            let _ = writeln!(lines, "{}", response.to_line());
        }
        lines
    } else {
        render_watch(&responses)
    };
    if let Some(Response {
        body: ResponseBody::Reject(reject),
        ..
    }) = responses.first()
    {
        return Err(format!("{rendered}request rejected: {}", reject.reason));
    }
    Ok(rendered)
}

/// `pdpa tournament`: race the whole policy zoo over an SWF-replay leg
/// and the fixed chaos plan, ranked by per-job slowdown quantiles. The
/// replay leg uses a given trace file (remapped to `--cpus`, optionally
/// rescaled by `--load`) or a generated shaped trace; `--out` writes the
/// `pdpa-tournament/v1` JSON report and `--json` appends one
/// `tournament-<policy>` entry per entrant to the bench trajectory.
fn tournament(opts: &TournamentOptions) -> Result<String, String> {
    let mut config = TournamentConfig {
        cpus: opts.cpus,
        seed: opts.seed,
        ..TournamentConfig::default()
    };
    if let Some(load) = opts.load {
        config.load = load;
    }
    if let Some(secs) = opts.duration {
        config.duration_secs = secs;
    }
    if let Some(path) = &opts.trace_path {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let trace =
            swf::read_swf(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
        let from = trace.machine_size().unwrap_or(opts.cpus);
        let mut records = shape::remap_machine(&trace.records, from, opts.cpus);
        if let Some(load) = opts.load {
            records = shape::rescale_load(&records, load, opts.cpus);
        }
        if records.is_empty() {
            return Err(format!("{path}: no jobs to race"));
        }
        config.trace = Some(pdpa_qs::SwfTrace {
            max_procs: Some(opts.cpus),
            max_nodes: trace.max_nodes,
            records,
        });
    }

    let started = std::time::Instant::now();
    let result = {
        let _scope = scope::enter("cli-tournament");
        run_tournament(&config)
    };
    let wall_secs = started.elapsed().as_secs_f64();

    let mut out = result.render_text();
    let _ = writeln!(
        out,
        "tournament wall clock: {wall_secs:.3} s over {} engine runs",
        result.swf.len() + result.chaos.len(),
    );
    if let Some(path) = &opts.out {
        std::fs::write(path, result.render_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\ntournament report written to {path}");
    }
    if opts.json {
        let mut doc = std::fs::read_to_string(BENCH_PATH).ok();
        for swf_leg in &result.swf {
            let chaos_leg = result
                .chaos
                .iter()
                .find(|c| c.slug == swf_leg.slug)
                .expect("both legs share the roster");
            let entry = replay_entry(
                &format!("tournament-{}", swf_leg.slug),
                None,
                swf_leg.wall_secs + chaos_leg.wall_secs,
                swf_leg.events_popped + chaos_leg.events_popped,
                None,
            );
            doc = Some(BenchReport::append_entry(doc.as_deref(), entry));
        }
        std::fs::write(BENCH_PATH, doc.expect("at least one entrant"))
            .map_err(|e| format!("cannot write {BENCH_PATH}: {e}"))?;
        let _ = writeln!(
            out,
            "\ntrajectory entries (tournament-*) appended to {BENCH_PATH}"
        );
    }
    Ok(out)
}

fn compare(opts: &Options) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} at load {:.0} % (seed {}, {} CPUs{})\n",
        opts.workload,
        opts.load * 100.0,
        opts.seed,
        opts.cpus,
        if opts.untuned { ", untuned" } else { "" },
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>15} {:>14} {:>8} {:>12}",
        "policy", "makespan", "mean response", "p95 response", "maxML", "utilization"
    );
    for choice in [
        PolicyChoice::Irix,
        PolicyChoice::Equipartition,
        PolicyChoice::EqualEfficiency,
        PolicyChoice::Rigid,
        PolicyChoice::Gang,
        PolicyChoice::Pdpa,
    ] {
        let result = execute(opts, choice)?;
        let _ = writeln!(
            out,
            "{:<14} {:>9.0}s {:>14.0}s {:>13.0}s {:>8} {:>11.0}%",
            result.policy,
            result.summary.makespan_secs(),
            result.summary.overall_avg_response_secs(),
            result.summary.response_quantile_secs(0.95).unwrap_or(0.0),
            result.max_ml,
            result.utilization() * 100.0,
        );
    }
    Ok(out)
}

fn curves() -> String {
    let mut out = String::from("calibrated speedup curves (Fig. 3)\n\n");
    let points = [1usize, 2, 4, 8, 12, 16, 20, 24, 30, 40, 60];
    let _ = write!(out, "{:<10}", "procs");
    for p in points {
        let _ = write!(out, "{p:>7}");
    }
    out.push('\n');
    for class in AppClass::ALL {
        let app = paper_app(class);
        let _ = write!(out, "{:<10}", class.name());
        for p in points {
            let _ = write!(out, "{:>7.1}", app.speedup.speedup(p));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn run_cli(s: &str) -> Result<String, String> {
        dispatch(parse(&argv(s)).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("--workload"));
    }

    #[test]
    fn curves_lists_all_classes() {
        let out = run_cli("curves").unwrap();
        for name in ["swim", "bt.A", "hydro2d", "apsi"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn run_produces_metrics() {
        let out = run_cli("run --workload w3 --policy pdpa --load 0.6").unwrap();
        assert!(out.contains("PDPA on w3"));
        assert!(out.contains("makespan"));
        assert!(out.contains("bt.A"));
        assert!(out.contains("apsi"));
    }

    #[test]
    fn compare_lists_every_policy() {
        let out = run_cli("compare --workload w3 --load 0.6").unwrap();
        for name in [
            "IRIX",
            "Equipartition",
            "Equal_efficiency",
            "RigidFirstFit",
            "Gang",
            "PDPA",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn ascii_view_renders() {
        let out = run_cli("run --workload w3 --policy equip --load 0.6 --ascii").unwrap();
        assert!(out.contains("cpu0"), "no execution view in:\n{out}");
    }

    #[test]
    fn file_outputs_are_written() {
        let dir = std::env::temp_dir().join("pdpa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let prv = dir.join("t.prv");
        let log = dir.join("t.swf");
        let cmd = format!(
            "run --workload w3 --policy pdpa --load 0.6 --prv-out {} --swf-log {}",
            prv.display(),
            log.display()
        );
        run_cli(&cmd).unwrap();
        let prv_text = std::fs::read_to_string(&prv).unwrap();
        assert!(prv_text.starts_with("#Paraver"));
        let log_text = std::fs::read_to_string(&log).unwrap();
        assert!(pdpa_qs::swf::parse_swf(&log_text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observability_outputs_are_written() {
        let dir = std::env::temp_dir().join("pdpa-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        let metrics = dir.join("m.json");
        let csv = dir.join("mpl.csv");
        let cmd = format!(
            "run --workload w3 --policy pdpa --load 0.6 --obs --trace-out {} \
             --metrics-out {} --mpl-csv {}",
            trace.display(),
            metrics.display(),
            csv.display()
        );
        let out = run_cli(&cmd).unwrap();
        assert!(
            out.contains("decision-event stream:"),
            "no summary in:\n{out}"
        );
        assert!(out.contains("decision"), "no decision count in:\n{out}");
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("\"traceEvents\""));
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        assert!(metrics_text.contains("pdpa-obs-metrics/v1"));
        assert!(metrics_text.contains("cli-w3"));
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert!(csv_text.starts_with("run,sim_secs,running,allocated"));
        assert!(
            csv_text.lines().count() > 1,
            "MPL CSV has no rows:\n{csv_text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_runs_and_reports() {
        let out = run_cli(
            "run --workload w3 --policy pdpa --load 0.6 --faults cpu3@120:recover@400;cpu7@150",
        )
        .unwrap();
        assert!(
            out.contains("faults: 2 cpu failures"),
            "no fault line in:\n{out}"
        );
        let err =
            run_cli("run --workload w3 --policy pdpa --cpus 8 --faults cpu80@10").unwrap_err();
        assert!(err.contains("--faults"), "unhelpful error: {err}");
    }

    #[test]
    fn small_machine_run_works() {
        let out = run_cli("run --workload w3 --policy pdpa --load 0.3 --cpus 8").unwrap();
        assert!(out.contains("8 CPUs"));
    }

    #[test]
    fn analyze_reports_derived_metrics() {
        let out = run_cli("analyze --workload w3 --policy pdpa --load 0.6").unwrap();
        assert!(out.contains("analysis of PDPA on w3"), "header in:\n{out}");
        assert!(out.contains("time in state:"), "no states in:\n{out}");
        assert!(out.contains("migrations"), "no migrations in:\n{out}");
        assert!(out.contains("mpl mean"), "no MPL stats in:\n{out}");
        // The replayed migration count must agree with the engine's.
        assert!(!out.contains("WARNING"), "consistency warning in:\n{out}");
    }

    #[test]
    fn analyze_writes_the_json_document() {
        let dir = std::env::temp_dir().join("pdpa-cli-analyze-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.json");
        let cmd = format!(
            "analyze --workload w3 --policy equip --load 0.6 --analyze-out {}",
            path.display()
        );
        run_cli(&cmd).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"schema\":\"pdpa-analyze/v1\""));
        assert!(text.contains("w3-Equipartition"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Writes a small generated workload as an SWF file and returns its
    /// path inside a fresh temp directory.
    fn write_test_trace(dir_name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = pdpa_qs::Workload::W3.build_with_tuning(0.6, 42, true);
        let path = dir.join("trace.swf");
        std::fs::write(&path, swf::write_swf(&jobs)).unwrap();
        (dir, path)
    }

    #[test]
    fn replay_runs_an_swf_file_end_to_end() {
        let (dir, path) = write_test_trace("pdpa-cli-replay-test");
        let out = run_cli(&format!("replay {} --policy pdpa", path.display())).unwrap();
        assert!(out.contains("replay of"), "no header in:\n{out}");
        assert!(out.contains("under PDPA"), "no policy in:\n{out}");
        assert!(out.contains("makespan"), "no metrics in:\n{out}");
        assert!(out.contains("slowdown avg"), "no slowdown dist in:\n{out}");
        assert!(out.contains("p99"), "no quantiles in:\n{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_applies_the_shaping_transforms() {
        let (dir, path) = write_test_trace("pdpa-cli-replay-shape-test");
        let out = run_cli(&format!(
            "replay {} --policy equip --window 0:200 --cpus 32 --load 0.5 --obs",
            path.display()
        ))
        .unwrap();
        assert!(
            out.contains("transforms: window 0:200 | machine 60 -> 32 | load -> 0.50"),
            "transform line wrong in:\n{out}"
        );
        assert!(out.contains("32 CPUs"), "cpus not applied in:\n{out}");
        assert!(
            out.contains("decision-event stream:"),
            "no --obs summary in:\n{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_is_deterministic_and_writes_exports() {
        let (dir, path) = write_test_trace("pdpa-cli-replay-export-test");
        let analyze = dir.join("a.json");
        let trace = dir.join("t.json");
        let cmd = format!(
            "replay {} --policy pdpa --analyze-out {} --trace-out {}",
            path.display(),
            analyze.display(),
            trace.display()
        );
        let a = run_cli(&cmd).unwrap();
        let b = run_cli(&cmd).unwrap();
        assert_eq!(a, b, "replay must be deterministic");
        let text = std::fs::read_to_string(&analyze).unwrap();
        assert!(text.starts_with("{\"schema\":\"pdpa-analyze/v1\""));
        assert!(text.contains("replay-pdpa"));
        assert!(text.contains("slowdown_dist"));
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("\"traceEvents\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_diff_shards_proves_shard_count_invariance() {
        let (dir, path) = write_test_trace("pdpa-cli-replay-diff-shards-test");
        let out = run_cli(&format!(
            "replay {} --policy pdpa --shards 1 --diff-shards 4",
            path.display()
        ))
        .unwrap();
        assert!(
            out.contains("streams identical"),
            "shards 1 vs 4 diverged:\n{out}"
        );
        // The invariance must survive fault injection: the chaos plan
        // perturbs both replays identically.
        let out = run_cli(&format!(
            "replay {} --policy equip \
             --faults mtbf=2000,horizon=6000,repair=500;retry=2,backoff=30 \
             --shards 1 --diff-shards 4",
            path.display()
        ))
        .unwrap();
        assert!(
            out.contains("streams identical"),
            "faulted shards 1 vs 4 diverged:\n{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_reports_missing_or_empty_traces() {
        let err = run_cli("replay /nonexistent/x.swf --policy pdpa").unwrap_err();
        assert!(err.contains("cannot open"), "unhelpful error: {err}");
        let (dir, path) = write_test_trace("pdpa-cli-replay-empty-test");
        // A window past the last submission leaves nothing to replay.
        let err = run_cli(&format!(
            "replay {} --policy pdpa --window 900000:900001",
            path.display()
        ))
        .unwrap_err();
        assert!(err.contains("no jobs to replay"), "unhelpful error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_entries_match_the_gate_contract() {
        // Classic replay: single-threaded, bare policy mode; imbalance is
        // meaningless without shards and is dropped even if supplied.
        let e = replay_entry("replay-equal-eff", None, 2.0, 1_000_000, Some(0.5));
        assert_eq!(e.mode, "replay-equal-eff");
        assert_eq!(e.threads, 1);
        assert_eq!(e.shard_imbalance, None);
        assert!((e.events_per_sec - 500_000.0).abs() < 1e-9);
        // Sharded replay: the threads field records the real worker
        // count, and the mode carries the shard suffix so each point of
        // the scaling curve is gated independently.
        let s = replay_entry("replay-pdpa-s4", Some(4), 1.0, 1_000_000, Some(0.25));
        assert_eq!(s.mode, "replay-pdpa-s4");
        assert_eq!(s.threads, 4);
        assert_eq!(s.shard_imbalance, Some(0.25));
        // Entries survive the append round-trip under their own mode.
        let doc = BenchReport::append_entry(None, e);
        let doc = BenchReport::append_entry(Some(&doc), s);
        let report = BenchReport::from_json(&doc).unwrap();
        assert_eq!(report.trajectory.len(), 2);
        assert_eq!(report.trajectory[0].mode, "replay-equal-eff");
        assert_eq!(report.trajectory[1].mode, "replay-pdpa-s4");
        assert_eq!(report.trajectory[1].threads, 4);
    }

    #[test]
    fn replay_profile_out_writes_chrome_lanes_and_hot_path_report() {
        let (dir, path) = write_test_trace("pdpa-cli-replay-profile-test");
        let profile = dir.join("prof.json");
        let out = run_cli(&format!(
            "replay {} --policy pdpa --shards 2 --profile-out {}",
            path.display(),
            profile.display()
        ))
        .unwrap();
        assert!(out.contains("profile trace written to"), "in:\n{out}");
        assert!(out.contains("hot-path report"), "no report in:\n{out}");
        assert!(out.contains("policy_decision"), "no span rows in:\n{out}");
        let json = std::fs::read_to_string(&profile).unwrap();
        assert!(json.contains("\"traceEvents\""));
        // One lane per shard plus the coordinator lane.
        for lane in ["coordinator", "shard-0", "shard-1"] {
            assert!(json.contains(lane), "missing {lane} lane in trace");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_obs_out_streams_feed_analyze_and_cross_format_diff() {
        let (dir, path) = write_test_trace("pdpa-cli-replay-stream-test");
        let text = dir.join("run.txt");
        let bin = dir.join("run.bin");
        // Same replay twice, once per encoding.
        for (file, fmt) in [(&text, "text"), (&bin, "binary")] {
            let out = run_cli(&format!(
                "replay {} --policy pdpa --obs-out {} --obs-format {fmt}",
                path.display(),
                file.display()
            ))
            .unwrap();
            assert!(
                out.contains(&format!("decision-event stream ({fmt}")),
                "no stream line in:\n{out}"
            );
        }
        assert!(pdpa_obs::is_binary(&std::fs::read(&bin).unwrap()));
        assert!(!pdpa_obs::is_binary(&std::fs::read(&text).unwrap()));
        // Both encodings decode to the same events: the cross-format diff
        // reports zero divergence...
        let out = run_cli(&format!(
            "diff --from-stream {} --from-stream-b {}",
            text.display(),
            bin.display()
        ))
        .unwrap();
        assert!(out.contains("streams identical"), "diverged:\n{out}");
        // ...and analyze accepts either encoding directly.
        for file in [&text, &bin] {
            let out = run_cli(&format!("analyze --from-stream {}", file.display())).unwrap();
            assert!(out.contains("analysis of recorded stream"), "in:\n{out}");
            assert!(out.contains("migrations"), "no analytics in:\n{out}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_serve_with_no_clients_does_not_linger() {
        let (dir, path) = write_test_trace("pdpa-cli-replay-serve-test");
        let started = std::time::Instant::now();
        let out = run_cli(&format!(
            "replay {} --policy pdpa --serve 127.0.0.1:0",
            path.display()
        ))
        .unwrap();
        assert!(
            out.contains("status server answered 0 connection(s)"),
            "no server line in:\n{out}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "an unwatched --serve replay must not wait for watchers"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_obs_filter_prunes_the_recorded_stream() {
        let (dir, path) = write_test_trace("pdpa-cli-replay-filter-test");
        let stream = dir.join("run.txt");
        let out = run_cli(&format!(
            "replay {} --policy pdpa --obs --obs-filter submit,finish --obs-out {}",
            path.display(),
            stream.display()
        ))
        .unwrap();
        assert!(out.contains("submit"), "kept kind missing in:\n{out}");
        let text = std::fs::read_to_string(&stream).unwrap();
        for line in text.lines() {
            let kept = line.contains(" submit ") || line.contains(" finish ");
            assert!(kept, "filtered stream leaked a foreign kind: {line}");
        }
        // The same replay unfiltered records far more kinds.
        let unfiltered =
            run_cli(&format!("replay {} --policy pdpa --obs", path.display())).unwrap();
        assert!(
            unfiltered.contains("iter") && unfiltered.contains("decision"),
            "baseline lost kinds:\n{unfiltered}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_from_stream_names_the_bad_frame_and_byte_offset() {
        let (dir, path) = write_test_trace("pdpa-cli-analyze-truncated-test");
        let stream = dir.join("run.bin");
        run_cli(&format!(
            "replay {} --policy pdpa --obs-out {} --obs-format binary",
            path.display(),
            stream.display()
        ))
        .unwrap();
        // Cut the stream mid-frame: drop the last 3 bytes.
        let mut bytes = std::fs::read(&stream).unwrap();
        let cut = bytes.len() - 3;
        bytes.truncate(cut);
        std::fs::write(&stream, &bytes).unwrap();
        let err = run_cli(&format!("analyze --from-stream {}", stream.display())).unwrap_err();
        assert!(
            err.contains("frame ") && err.contains(" at byte "),
            "no frame/byte diagnostics in: {err}"
        );
        assert!(err.contains("truncated"), "no truncation cause in: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_queries_a_live_server() {
        let tap = LiveTap::new(RunMeta {
            policy: "PDPA".into(),
            trace: "t.swf".into(),
            shards: 1,
            jobs_total: 4,
        });
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
        let addr = server.local_addr();
        tap.mark_done();

        let human = run_cli(&format!("watch {addr}")).unwrap();
        assert!(human.contains("run: PDPA on t.swf [done]"), "in:\n{human}");
        assert!(human.contains("progress:"), "no progress in:\n{human}");

        let json = run_cli(&format!("watch {addr} --json --tail 5")).unwrap();
        assert!(
            json.lines().count() == 4,
            "expected 4 NDJSON lines:\n{json}"
        );
        assert!(json.contains("\"state\":\"done\""), "in:\n{json}");

        server.shutdown();
        let err = run_cli(&format!("watch {addr}")).unwrap_err();
        assert!(err.contains("cannot connect"), "unhelpful error: {err}");
    }

    #[test]
    fn watch_follow_survives_a_server_restart() {
        // Reserve a port, then leave it dark: the follow watch must keep
        // retrying (bounded backoff) instead of exiting, and succeed once
        // a server finally appears there.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);

        let watch_addr = addr.clone();
        let watcher = std::thread::spawn(move || {
            run_cli(&format!("watch {watch_addr} --follow --interval 0.05"))
        });

        // Let the watch fail at least once against the dark port.
        std::thread::sleep(Duration::from_millis(300));
        let tap = LiveTap::new(RunMeta {
            policy: "PDPA".into(),
            trace: "t.swf".into(),
            shards: 1,
            jobs_total: 1,
        });
        let mut server = None;
        for _ in 0..20 {
            match StatusServer::bind(addr.as_str(), Arc::clone(&tap)) {
                Ok(bound) => {
                    server = Some(bound);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        let server = server.expect("rebind the reserved port");
        tap.mark_done();

        let out = watcher
            .join()
            .expect("watch thread")
            .expect("follow recovers after the restart");
        assert!(out.contains("[done]"), "no terminal status in:\n{out}");
        server.shutdown();
    }

    #[test]
    fn watch_without_follow_fails_fast_on_a_dead_server() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);
        let err = run_cli(&format!("watch {addr}")).unwrap_err();
        assert!(err.contains("cannot connect"), "unhelpful error: {err}");
    }

    #[test]
    fn daemon_submit_and_ctl_round_trip_through_the_cli() {
        // The daemon's serve loop runs on this thread (its session is not
        // Send); the CLI client verbs drive it from a spawned thread.
        let daemon = pdpa_daemon::bind_daemon(
            pdpa_daemon::DaemonConfig {
                time_scale: 0.0,
                ..pdpa_daemon::DaemonConfig::default()
            },
            None,
            "127.0.0.1:0",
        )
        .expect("bind pdpad");
        let addr = daemon.local_addr();

        let client = std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(|| {
                let out = run_cli(&format!(
                    "submit {addr} --class bt.A --request 8 --work-secs 500 --count 2"
                ))
                .expect("submissions admitted");
                assert!(out.contains("ack: job 0"), "in:\n{out}");
                assert!(out.contains("ack: job 1"), "in:\n{out}");

                let out = run_cli(&format!("ctl {addr} hello")).expect("hello");
                assert!(out.contains("server: pdpad proto v"), "in:\n{out}");

                // The stock watch client works against a daemon.
                let out = run_cli(&format!("watch {addr} --tail 5")).expect("watch");
                assert!(out.contains("2 submitted"), "in:\n{out}");

                let out = run_cli(&format!("ctl {addr} drain")).expect("drain");
                assert!(out.contains("ack"), "in:\n{out}");
                let out = run_cli(&format!("ctl {addr} jobs")).expect("jobs");
                assert!(out.contains("jobs: 2 record(s)"), "in:\n{out}");
                assert!(out.contains("done"), "in:\n{out}");

                // A draining daemon rejects new work, and the CLI says why.
                let err = run_cli(&format!("submit {addr} --class swim")).unwrap_err();
                assert!(err.contains("rejected"), "in: {err}");
                assert!(err.contains("draining"), "in: {err}");
            });
            // Always shut the daemon down so the serve loop below returns,
            // even when an assertion above panicked.
            let _ = run_cli(&format!("ctl {addr} shutdown"));
            outcome
        });

        let summary = daemon.run().expect("serve loop");
        assert!(summary.contains("pdpad: shut down"), "got: {summary}");
        if let Err(panic) = client.join().expect("client thread") {
            std::panic::resume_unwind(panic);
        }
    }

    #[test]
    fn watch_exits_nonzero_when_the_run_aborted() {
        let tap = LiveTap::new(RunMeta::default());
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
        tap.mark_aborted("watchdog: no sim-time progress over 10000 rounds");
        let err = run_cli(&format!("watch {}", server.local_addr())).unwrap_err();
        assert!(err.contains("run aborted"), "in: {err}");
        assert!(err.contains("watchdog"), "no diagnostic in: {err}");
        server.shutdown();
    }

    #[test]
    fn literature_policies_run_and_replay() {
        let out = run_cli("run --workload w3 --policy hesrpt --load 0.6").unwrap();
        assert!(out.contains("heSRPT on w3"), "no header in:\n{out}");
        let (dir, path) = write_test_trace("pdpa-cli-lit-replay-test");
        for policy in ["optsplit", "learned"] {
            let out = run_cli(&format!("replay {} --policy {policy}", path.display())).unwrap();
            assert!(out.contains("makespan"), "{policy} replay in:\n{out}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tournament_ranks_the_zoo_on_both_legs() {
        let dir = std::env::temp_dir().join("pdpa-cli-tournament-test");
        std::fs::create_dir_all(&dir).unwrap();
        let report = dir.join("report.json");
        let out = run_cli(&format!(
            "tournament --duration 300 --out {}",
            report.display()
        ))
        .unwrap();
        for label in [
            "PDPA",
            "Equip",
            "Equal_eff",
            "Rigid",
            "Gang",
            "heSRPT",
            "OptSplit",
            "Learned",
        ] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
        assert!(out.contains("ranking(swf):"), "no swf ranking in:\n{out}");
        assert!(
            out.contains("ranking(chaos):"),
            "no chaos ranking in:\n{out}"
        );
        assert!(out.contains("tournament wall clock"), "no wall in:\n{out}");
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("\"schema\": \"pdpa-tournament/v1\""));
        assert!(json.contains("\"slug\": \"hesrpt\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tournament_accepts_a_trace_file() {
        let (dir, path) = write_test_trace("pdpa-cli-tournament-trace-test");
        let out = run_cli(&format!("tournament {}", path.display())).unwrap();
        assert!(out.contains("ranking(swf):"), "no ranking in:\n{out}");
        let err = run_cli("tournament /nonexistent/x.swf").unwrap_err();
        assert!(err.contains("cannot open"), "unhelpful error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_of_the_same_config_reports_zero_divergence() {
        let out = run_cli("diff --workload w3 --policy pdpa --load 0.6").unwrap();
        assert!(
            out.contains("streams identical"),
            "same seeded config diverged:\n{out}"
        );
    }

    #[test]
    fn diff_of_two_policies_reports_the_first_divergence() {
        let out = run_cli("diff --workload w3 --policy pdpa --policy-b equip --load 0.6").unwrap();
        assert!(
            out.contains("first divergence at event #"),
            "no divergence reported:\n{out}"
        );
        assert!(out.contains("metric deltas"), "no deltas in:\n{out}");
    }
}
