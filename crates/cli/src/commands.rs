//! Command implementations.

use std::fmt::Write as _;

use pdpa_analyze::{analysis_json, RunAnalysis, RunDiff};
use pdpa_apps::{paper_app, AppClass};
use pdpa_core::Pdpa;
use pdpa_engine::{Engine, EngineConfig, RunResult};
use pdpa_faults::FaultPlan;
use pdpa_obs::metrics::Registry;
use pdpa_obs::{
    chrome_trace, metrics_json, mpl_series_csv, scope, NullObserver, Observer, RecordingObserver,
};
use pdpa_policies::{
    EqualEfficiency, Equipartition, GangScheduler, IrixLike, RigidFirstFit, SchedulingPolicy,
};
use pdpa_qs::swf;
use pdpa_trace::{render_ascii, to_paraver, RenderOptions};

use crate::args::{Command, Options, PolicyChoice};
use crate::USAGE;

/// Executes a parsed command and returns its output.
///
/// # Errors
///
/// Returns a diagnostic if a run fails to drain or a file cannot be written.
pub fn dispatch(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Curves => Ok(curves()),
        Command::Run(opts) => run_one(&opts),
        Command::Compare(opts) => compare(&opts),
        Command::Analyze(opts) => analyze(&opts),
        Command::Diff(opts) => diff(&opts),
    }
}

fn build_policy(choice: PolicyChoice) -> Box<dyn SchedulingPolicy> {
    match choice {
        PolicyChoice::Pdpa => Box::new(Pdpa::paper_default()),
        PolicyChoice::Equipartition => Box::new(Equipartition::default()),
        PolicyChoice::EqualEfficiency => Box::new(EqualEfficiency::paper_default()),
        PolicyChoice::Irix => Box::new(IrixLike::paper_default()),
        PolicyChoice::Rigid => Box::new(RigidFirstFit::paper_default()),
        PolicyChoice::Gang => Box::new(GangScheduler::paper_comparable()),
    }
}

fn engine_config(opts: &Options) -> Result<EngineConfig, String> {
    let mut config = EngineConfig::default()
        .with_seed(opts.seed ^ 0xA5A5)
        .with_cpus(opts.cpus);
    if opts.backfill {
        config = config.with_backfill();
    }
    if opts.trace {
        config = config.with_trace();
    }
    if let Some(plan) = &opts.faults {
        let plan = FaultPlan::parse(plan, opts.cpus).map_err(|e| format!("--faults: {e}"))?;
        config = config.with_faults(plan);
    }
    Ok(config)
}

fn execute_with(
    opts: &Options,
    choice: PolicyChoice,
    observer: &mut dyn Observer,
) -> Result<RunResult, String> {
    let jobs = opts
        .workload
        .build_with_tuning(opts.load, opts.seed, !opts.untuned);
    let result =
        Engine::new(engine_config(opts)?).run_observed(jobs, build_policy(choice), observer);
    if !result.completed_all {
        return Err(format!(
            "{:?} did not drain the workload within the simulation bound",
            choice
        ));
    }
    Ok(result)
}

fn execute(opts: &Options, choice: PolicyChoice) -> Result<RunResult, String> {
    execute_with(opts, choice, &mut NullObserver)
}

/// One-line-per-class metrics of a finished run.
fn class_table(result: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>13} {:>13} {:>10} {:>10}",
        "class", "jobs", "response (s)", "execution (s)", "slowdown", "avg procs"
    );
    for class in AppClass::ALL {
        if let Some(avgs) = result.summary.class_averages(class) {
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>13.1} {:>13.1} {:>10.2} {:>10.1}",
                class.name(),
                avgs.count,
                avgs.avg_response_secs,
                avgs.avg_execution_secs,
                result.summary.avg_slowdown(class).unwrap_or(f64::NAN),
                result
                    .avg_alloc_by_class
                    .get(&class)
                    .copied()
                    .unwrap_or(0.0),
            );
        }
    }
    out
}

fn run_one(opts: &Options) -> Result<String, String> {
    let choice = opts.policy.expect("parser enforces --policy for run");
    let mut recorder = RecordingObserver::new();
    let result = if opts.observing() {
        // Attribute this run's registry counters to a CLI scope so the
        // metrics export distinguishes it from harness experiments.
        let _scope = scope::enter(&format!("cli-{}", opts.workload));
        execute_with(opts, choice, &mut recorder)?
    } else {
        execute(opts, choice)?
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} (load {:.0} %, seed {}, {} CPUs{}{})",
        result.policy,
        opts.workload,
        opts.load * 100.0,
        opts.seed,
        opts.cpus,
        if opts.untuned { ", untuned" } else { "" },
        if opts.backfill { ", backfill" } else { "" },
    );
    let _ = writeln!(
        out,
        "makespan {:.1} s | mean response {:.1} s | p95 response {:.1} s | peak ML {} | utilization {:.0} % | migrations {}",
        result.summary.makespan_secs(),
        result.summary.overall_avg_response_secs(),
        result.summary.response_quantile_secs(0.95).unwrap_or(0.0),
        result.max_ml,
        result.utilization() * 100.0,
        result.total_migrations(),
    );
    if result.cpu_failures + result.job_retries + result.jobs_failed > 0 {
        let _ = writeln!(
            out,
            "faults: {} cpu failures | {} job retries | {} terminal job failures",
            result.cpu_failures, result.job_retries, result.jobs_failed,
        );
    }
    out.push('\n');
    out.push_str(&class_table(&result));

    if opts.ascii {
        let trace = result.trace.as_ref().expect("--ascii implies --trace");
        out.push('\n');
        out.push_str(&render_ascii(
            trace,
            &RenderOptions {
                width: 100,
                cpu_stride: (opts.cpus / 20).max(1),
            },
        ));
    }
    if let Some(path) = &opts.prv_out {
        let trace = result.trace.as_ref().expect("--prv-out implies --trace");
        std::fs::write(path, to_paraver(trace)).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nParaver trace written to {path}");
    }
    if let Some(path) = &opts.swf_log {
        let jobs = opts
            .workload
            .build_with_tuning(opts.load, opts.seed, !opts.untuned);
        // Outcomes in submission order (JobIds are dense submission ranks).
        let mut outcomes = vec![(0.0, 0.0, 0.0); jobs.len()];
        for o in result.summary.outcomes() {
            let procs = result.avg_alloc_by_job.get(&o.job).copied().unwrap_or(0.0);
            outcomes[o.job.index()] =
                (o.wait_time().as_secs(), o.execution_time().as_secs(), procs);
        }
        let mut sorted = jobs;
        sorted.sort_by_key(|a| a.submit);
        std::fs::write(path, swf::write_swf_log(&sorted, &outcomes))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nSWF log written to {path}");
    }
    if opts.observing() {
        let events = recorder.take_events();
        if opts.obs {
            let _ = writeln!(out, "\ndecision-event stream: {} events", events.len());
            for kind in [
                "submit",
                "dequeue",
                "start",
                "finish",
                "iter",
                "decision",
                "state",
                "mpl",
                "cost",
                "cpu",
                "cpu_failed",
                "cpu_recovered",
                "degraded",
                "retry",
                "job_failed",
            ] {
                let n = events.iter().filter(|te| te.event.kind() == kind).count();
                if n > 0 {
                    let _ = writeln!(out, "  {kind:<8} {n}");
                }
            }
        }
        let runs = vec![(format!("{}-{}", opts.workload, result.policy), events)];
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, chrome_trace(&runs))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "\nChrome trace written to {path}");
        }
        if let Some(path) = &opts.mpl_csv {
            std::fs::write(path, mpl_series_csv(&runs))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "\nMPL series CSV written to {path}");
        }
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, metrics_json(&Registry::global().snapshot(), &[]))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "\nMetrics JSON written to {path}");
        }
        if let Some(path) = &opts.analyze_out {
            let analyses: Vec<(String, RunAnalysis)> = runs
                .iter()
                .map(|(key, events)| (key.clone(), RunAnalysis::from_events(events)))
                .collect();
            std::fs::write(path, analysis_json(&analyses))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "\nRun analysis JSON written to {path}");
        }
    }
    Ok(out)
}

/// `pdpa analyze`: run one configuration recorded and print every derived
/// metric (plus the JSON document under `--analyze-out`).
fn analyze(opts: &Options) -> Result<String, String> {
    let choice = opts.policy.expect("parser enforces --policy for analyze");
    let mut recorder = RecordingObserver::new();
    let result = {
        let _scope = scope::enter(&format!("cli-{}", opts.workload));
        execute_with(opts, choice, &mut recorder)?
    };
    let events = recorder.take_events();
    let analysis = RunAnalysis::from_events(&events);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "analysis of {} on {} (load {:.0} %, seed {}, {} CPUs)\n",
        result.policy,
        opts.workload,
        opts.load * 100.0,
        opts.seed,
        opts.cpus,
    );
    out.push_str(&analysis.render_text());
    // Cross-check the replayed migration count against the engine's own
    // Table-2 counter; a mismatch means the event stream lost information.
    let engine_count = result.total_migrations();
    let replayed = analysis.migrations.migrations();
    if replayed != engine_count {
        let _ = writeln!(
            out,
            "WARNING: replayed migrations ({replayed}) != engine count ({engine_count})"
        );
    }
    if let Some(path) = &opts.analyze_out {
        let key = format!("{}-{}", opts.workload, result.policy);
        std::fs::write(path, analysis_json(&[(key, analysis)]))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "\nRun analysis JSON written to {path}");
    }
    Ok(out)
}

/// `pdpa diff`: record two runs (policy/seed vs `--policy-b`/`--seed-b`,
/// defaulting to the same configuration) and report the first divergent
/// event plus per-metric deltas.
fn diff(opts: &Options) -> Result<String, String> {
    let choice_a = opts.policy.expect("parser enforces --policy for diff");
    let choice_b = opts.policy_b.unwrap_or(choice_a);
    let opts_b = Options {
        seed: opts.seed_b.unwrap_or(opts.seed),
        ..opts.clone()
    };

    let mut rec_a = RecordingObserver::new();
    let mut rec_b = RecordingObserver::new();
    let (result_a, result_b) = {
        let _scope = scope::enter(&format!("cli-{}", opts.workload));
        (
            execute_with(opts, choice_a, &mut rec_a)?,
            execute_with(&opts_b, choice_b, &mut rec_b)?,
        )
    };
    let events_a = rec_a.take_events();
    let events_b = rec_b.take_events();
    let label_a = format!("{}/seed{}", result_a.policy, opts.seed);
    let label_b = format!("{}/seed{}", result_b.policy, opts_b.seed);

    let run_diff = RunDiff::compare(&events_a, &events_b);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff of {label_a} vs {label_b} on {} (load {:.0} %, {} CPUs)\n",
        opts.workload,
        opts.load * 100.0,
        opts.cpus,
    );
    out.push_str(&run_diff.render(&label_a, &label_b));
    Ok(out)
}

fn compare(opts: &Options) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} at load {:.0} % (seed {}, {} CPUs{})\n",
        opts.workload,
        opts.load * 100.0,
        opts.seed,
        opts.cpus,
        if opts.untuned { ", untuned" } else { "" },
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>15} {:>14} {:>8} {:>12}",
        "policy", "makespan", "mean response", "p95 response", "maxML", "utilization"
    );
    for choice in [
        PolicyChoice::Irix,
        PolicyChoice::Equipartition,
        PolicyChoice::EqualEfficiency,
        PolicyChoice::Rigid,
        PolicyChoice::Gang,
        PolicyChoice::Pdpa,
    ] {
        let result = execute(opts, choice)?;
        let _ = writeln!(
            out,
            "{:<14} {:>9.0}s {:>14.0}s {:>13.0}s {:>8} {:>11.0}%",
            result.policy,
            result.summary.makespan_secs(),
            result.summary.overall_avg_response_secs(),
            result.summary.response_quantile_secs(0.95).unwrap_or(0.0),
            result.max_ml,
            result.utilization() * 100.0,
        );
    }
    Ok(out)
}

fn curves() -> String {
    let mut out = String::from("calibrated speedup curves (Fig. 3)\n\n");
    let points = [1usize, 2, 4, 8, 12, 16, 20, 24, 30, 40, 60];
    let _ = write!(out, "{:<10}", "procs");
    for p in points {
        let _ = write!(out, "{p:>7}");
    }
    out.push('\n');
    for class in AppClass::ALL {
        let app = paper_app(class);
        let _ = write!(out, "{:<10}", class.name());
        for p in points {
            let _ = write!(out, "{:>7.1}", app.speedup.speedup(p));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn run_cli(s: &str) -> Result<String, String> {
        dispatch(parse(&argv(s)).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("--workload"));
    }

    #[test]
    fn curves_lists_all_classes() {
        let out = run_cli("curves").unwrap();
        for name in ["swim", "bt.A", "hydro2d", "apsi"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn run_produces_metrics() {
        let out = run_cli("run --workload w3 --policy pdpa --load 0.6").unwrap();
        assert!(out.contains("PDPA on w3"));
        assert!(out.contains("makespan"));
        assert!(out.contains("bt.A"));
        assert!(out.contains("apsi"));
    }

    #[test]
    fn compare_lists_every_policy() {
        let out = run_cli("compare --workload w3 --load 0.6").unwrap();
        for name in [
            "IRIX",
            "Equipartition",
            "Equal_efficiency",
            "RigidFirstFit",
            "Gang",
            "PDPA",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn ascii_view_renders() {
        let out = run_cli("run --workload w3 --policy equip --load 0.6 --ascii").unwrap();
        assert!(out.contains("cpu0"), "no execution view in:\n{out}");
    }

    #[test]
    fn file_outputs_are_written() {
        let dir = std::env::temp_dir().join("pdpa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let prv = dir.join("t.prv");
        let log = dir.join("t.swf");
        let cmd = format!(
            "run --workload w3 --policy pdpa --load 0.6 --prv-out {} --swf-log {}",
            prv.display(),
            log.display()
        );
        run_cli(&cmd).unwrap();
        let prv_text = std::fs::read_to_string(&prv).unwrap();
        assert!(prv_text.starts_with("#Paraver"));
        let log_text = std::fs::read_to_string(&log).unwrap();
        assert!(pdpa_qs::swf::parse_swf(&log_text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observability_outputs_are_written() {
        let dir = std::env::temp_dir().join("pdpa-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        let metrics = dir.join("m.json");
        let csv = dir.join("mpl.csv");
        let cmd = format!(
            "run --workload w3 --policy pdpa --load 0.6 --obs --trace-out {} \
             --metrics-out {} --mpl-csv {}",
            trace.display(),
            metrics.display(),
            csv.display()
        );
        let out = run_cli(&cmd).unwrap();
        assert!(
            out.contains("decision-event stream:"),
            "no summary in:\n{out}"
        );
        assert!(out.contains("decision"), "no decision count in:\n{out}");
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("\"traceEvents\""));
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        assert!(metrics_text.contains("pdpa-obs-metrics/v1"));
        assert!(metrics_text.contains("cli-w3"));
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert!(csv_text.starts_with("run,sim_secs,running,allocated"));
        assert!(
            csv_text.lines().count() > 1,
            "MPL CSV has no rows:\n{csv_text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_runs_and_reports() {
        let out = run_cli(
            "run --workload w3 --policy pdpa --load 0.6 --faults cpu3@120:recover@400;cpu7@150",
        )
        .unwrap();
        assert!(
            out.contains("faults: 2 cpu failures"),
            "no fault line in:\n{out}"
        );
        let err =
            run_cli("run --workload w3 --policy pdpa --cpus 8 --faults cpu80@10").unwrap_err();
        assert!(err.contains("--faults"), "unhelpful error: {err}");
    }

    #[test]
    fn small_machine_run_works() {
        let out = run_cli("run --workload w3 --policy pdpa --load 0.3 --cpus 8").unwrap();
        assert!(out.contains("8 CPUs"));
    }

    #[test]
    fn analyze_reports_derived_metrics() {
        let out = run_cli("analyze --workload w3 --policy pdpa --load 0.6").unwrap();
        assert!(out.contains("analysis of PDPA on w3"), "header in:\n{out}");
        assert!(out.contains("time in state:"), "no states in:\n{out}");
        assert!(out.contains("migrations"), "no migrations in:\n{out}");
        assert!(out.contains("mpl mean"), "no MPL stats in:\n{out}");
        // The replayed migration count must agree with the engine's.
        assert!(!out.contains("WARNING"), "consistency warning in:\n{out}");
    }

    #[test]
    fn analyze_writes_the_json_document() {
        let dir = std::env::temp_dir().join("pdpa-cli-analyze-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.json");
        let cmd = format!(
            "analyze --workload w3 --policy equip --load 0.6 --analyze-out {}",
            path.display()
        );
        run_cli(&cmd).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"schema\":\"pdpa-analyze/v1\""));
        assert!(text.contains("w3-Equipartition"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_of_the_same_config_reports_zero_divergence() {
        let out = run_cli("diff --workload w3 --policy pdpa --load 0.6").unwrap();
        assert!(
            out.contains("streams identical"),
            "same seeded config diverged:\n{out}"
        );
    }

    #[test]
    fn diff_of_two_policies_reports_the_first_divergence() {
        let out = run_cli("diff --workload w3 --policy pdpa --policy-b equip --load 0.6").unwrap();
        assert!(
            out.contains("first divergence at event #"),
            "no divergence reported:\n{out}"
        );
        assert!(out.contains("metric deltas"), "no deltas in:\n{out}");
    }
}
