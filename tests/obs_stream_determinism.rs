//! The recorded decision-event streams must be *byte-identical* between
//! the parallel and sequential harness paths — same engine runs, same
//! events, same `(sim_time, seq)` order, same collector keys — regardless
//! of worker-thread scheduling. This is the observability analogue of
//! `parallel_determinism.rs`.
//!
//! The whole scenario lives in one `#[test]` because the run collector is
//! process-global: splitting it across tests would let the harness's test
//! threads interleave their recordings.

use pdpa_bench::{run_cell, run_cell_seq, PolicyKind, SEEDS};
use pdpa_qs::Workload;
use pdpa_suite::obs::{collector, scope, TimedEvent};

/// Renders a drained run set as one text blob (key header + one line per
/// event), so stream differences show up as a readable diff.
fn render(runs: &[(String, Vec<TimedEvent>)]) -> String {
    let mut out = String::new();
    for (key, events) in runs {
        out.push_str("== ");
        out.push_str(key);
        out.push('\n');
        for te in events {
            out.push_str(&te.to_line());
            out.push('\n');
        }
    }
    out
}

#[test]
fn recorded_streams_match_between_parallel_and_sequential() {
    let _scope = scope::enter("det");
    collector::set_recording(true);
    let par_cell = run_cell(Workload::W1, true, PolicyKind::Pdpa, 0.6, &SEEDS);
    let par_runs = collector::take_runs();

    let seq_cell = run_cell_seq(Workload::W1, true, PolicyKind::Pdpa, 0.6, &SEEDS);
    collector::set_recording(false);
    let seq_runs = collector::take_runs();

    assert_eq!(par_cell, seq_cell, "aggregate results diverged");
    assert_eq!(par_runs.len(), SEEDS.len(), "one recorded run per seed");
    let par_keys: Vec<&str> = par_runs.iter().map(|(k, _)| k.as_str()).collect();
    for seed in SEEDS {
        let expected = format!("det/w1-tuned-PDPA-load0.6-seed{seed}");
        assert!(
            par_keys.contains(&expected.as_str()),
            "missing key {expected:?} in {par_keys:?}"
        );
    }
    assert!(
        par_runs.iter().all(|(_, events)| !events.is_empty()),
        "every run records events"
    );
    assert_eq!(
        render(&par_runs),
        render(&seq_runs),
        "event streams must be byte-identical"
    );
}
