//! Edge cases across the whole stack: degenerate machines, bursts of
//! simultaneous arrivals, oversized requests, and the simulation bound.

use pdpa_suite::prelude::*;

fn policies() -> Vec<Box<dyn SchedulingPolicy>> {
    vec![
        Box::new(IrixLike::paper_default()),
        Box::new(Equipartition::default()),
        Box::new(EqualEfficiency::paper_default()),
        Box::new(Pdpa::paper_default()),
        Box::new(RigidFirstFit::paper_default()),
    ]
}

#[test]
fn one_cpu_machine_drains_every_policy() {
    for policy in policies() {
        let name = policy.name().to_owned();
        let jobs = vec![
            JobSpec::new(SimTime::ZERO, paper_app(AppClass::Apsi)),
            JobSpec::new(SimTime::from_secs(5.0), paper_app(AppClass::Apsi)),
        ];
        let config = EngineConfig::default().with_cpus(1);
        let result = Engine::new(config).run(jobs, policy);
        assert!(result.completed_all, "{name} wedged on a 1-CPU machine");
        assert_eq!(result.summary.jobs(), 2);
    }
}

#[test]
fn simultaneous_arrival_burst() {
    // Twelve jobs all submitted at t = 0: admission, placement, and the
    // multiprogramming level must sort the burst out deterministically.
    for policy in policies() {
        let name = policy.name().to_owned();
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| {
                let class = AppClass::ALL[i % 4];
                JobSpec::new(SimTime::ZERO, paper_app(class))
            })
            .collect();
        let result = Engine::new(EngineConfig::default()).run(jobs, policy);
        assert!(result.completed_all, "{name} lost a burst job");
        assert_eq!(result.summary.jobs(), 12);
        for o in result.summary.outcomes() {
            assert_eq!(o.submit, SimTime::ZERO);
        }
    }
}

#[test]
fn oversized_requests_on_a_small_machine() {
    // Untuned jobs requesting 30 processors on an 8-CPU machine: every
    // policy must cap at the machine and still drain.
    for policy in policies() {
        let name = policy.name().to_owned();
        let jobs = Workload::W4.build_with_tuning(0.2, 3, false);
        let config = EngineConfig::default().with_cpus(8);
        let result = Engine::new(config).run(jobs, policy);
        assert!(
            result.completed_all,
            "{name} wedged with oversized requests"
        );
        // Space-sharing allocations are processors and must fit the
        // machine; IRIX's are kernel-thread counts, where oversubscription
        // is the whole point.
        if name != "IRIX" {
            for (class, alloc) in &result.avg_alloc_by_class {
                assert!(*alloc <= 8.0 + 1e-9, "{name}/{class}: {alloc} > machine");
            }
        }
    }
}

#[test]
fn simulation_bound_aborts_cleanly() {
    let jobs = Workload::W3.build(1.0, 42);
    let n = jobs.len();
    let config = EngineConfig {
        max_sim_secs: 50.0, // far too short for this workload
        ..EngineConfig::default()
    };
    let result = Engine::new(config).run(jobs, Box::new(Equipartition::default()));
    assert!(!result.completed_all, "the bound must trip");
    assert!(result.summary.jobs() < n, "only some jobs completed");
    // Whatever completed is still consistent.
    for o in result.summary.outcomes() {
        assert!(o.end.as_secs() <= 50.0 + 1.0);
        assert!(o.submit <= o.start && o.start <= o.end);
    }
}

#[test]
fn empty_workload_is_a_clean_noop() {
    for policy in policies() {
        let result = Engine::new(EngineConfig::default()).run(Vec::new(), policy);
        assert!(result.completed_all);
        assert_eq!(result.summary.jobs(), 0);
        assert_eq!(result.max_ml, 0);
        assert_eq!(result.summary.makespan_secs(), 0.0);
    }
}

#[test]
fn single_iteration_application() {
    // The shortest possible iterative application: one iteration — the
    // SelfAnalyzer never even finishes its baseline.
    let app = ApplicationSpec::new(
        AppClass::Apsi,
        1,
        SimDuration::from_secs(2.0),
        2,
        std::sync::Arc::new(pdpa_suite::apps::Amdahl::new(0.3)),
        0.0,
    );
    for policy in policies() {
        let name = policy.name().to_owned();
        let jobs = vec![JobSpec::new(SimTime::ZERO, app.clone())];
        let result = Engine::new(EngineConfig::default()).run(jobs, policy);
        assert!(result.completed_all, "{name} lost a one-iteration job");
    }
}

#[test]
fn heavily_overloaded_system_still_drains() {
    // 150 % nominal load: queues grow long but everything completes.
    let jobs = Workload::W3.build(1.5, 17);
    let result = Engine::new(EngineConfig::default()).run(jobs, Box::new(Pdpa::paper_default()));
    assert!(result.completed_all);
    assert!(result.summary.makespan_secs() > 300.0);
}
