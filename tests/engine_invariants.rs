//! Cross-crate invariants of the execution engine, checked on full runs.

use pdpa_suite::prelude::*;

fn policies() -> Vec<Box<dyn SchedulingPolicy>> {
    vec![
        Box::new(IrixLike::paper_default()),
        Box::new(Equipartition::default()),
        Box::new(EqualEfficiency::paper_default()),
        Box::new(Pdpa::paper_default()),
    ]
}

/// Every job's timestamps decompose consistently: submit ≤ start ≤ end and
/// response = wait + execution.
#[test]
fn outcome_timestamps_are_consistent() {
    for policy in policies() {
        let jobs = Workload::W4.build(0.8, 7);
        let result = Engine::new(EngineConfig::default()).run(jobs, policy);
        assert!(result.completed_all);
        for o in result.summary.outcomes() {
            assert!(o.submit <= o.start, "{:?} started before submission", o.job);
            assert!(o.start <= o.end, "{:?} ended before starting", o.job);
            let decomposed = o.wait_time().as_secs() + o.execution_time().as_secs();
            assert!(
                (o.response_time().as_secs() - decomposed).abs() < 1e-9,
                "{:?}: response must equal wait + execution",
                o.job
            );
        }
    }
}

/// Execution time can never beat the application's ideal time at its full
/// request (no free lunch), and response times are bounded by the makespan.
#[test]
fn execution_times_respect_physical_bounds() {
    for policy in policies() {
        let name = policy.name().to_owned();
        let jobs = Workload::W2.build(1.0, 11);
        let specs: Vec<(AppClass, f64)> = jobs
            .iter()
            .map(|j| (j.app.class, j.app.ideal_exec_time(j.app.request).as_secs()))
            .collect();
        let result = Engine::new(EngineConfig::default()).run(jobs, policy);
        assert!(result.completed_all);
        let makespan = result.summary.makespan_secs();
        for o in result.summary.outcomes() {
            let ideal = specs
                .iter()
                .filter(|(c, _)| *c == o.class)
                .map(|&(_, t)| t)
                .fold(f64::INFINITY, f64::min);
            // 2 % measurement-noise slack on top of the ideal bound.
            assert!(
                o.execution_time().as_secs() > ideal * 0.9,
                "{name}/{:?}: exec {:.1}s beats the ideal {ideal:.1}s",
                o.job,
                o.execution_time().as_secs()
            );
            assert!(o.end.as_secs() <= makespan + 1e-9);
        }
    }
}

/// The number of outcomes equals the number of submitted jobs — nothing is
/// lost or duplicated, under any policy.
#[test]
fn every_job_completes_exactly_once() {
    for policy in policies() {
        let jobs = Workload::W3.build(1.0, 3);
        let n = jobs.len();
        let result = Engine::new(EngineConfig::default()).run(jobs, policy);
        assert!(result.completed_all);
        assert_eq!(result.summary.jobs(), n);
        let mut ids: Vec<u32> = result.summary.outcomes().iter().map(|o| o.job.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate completions");
    }
}

/// The multiprogramming-level series is consistent: starts at 0, ends at 0,
/// every step changes by at most the jobs started/completed at one instant,
/// and the recorded max matches the series.
#[test]
fn ml_series_is_well_formed() {
    for policy in policies() {
        let jobs = Workload::W4.build(1.0, 5);
        let result = Engine::new(EngineConfig::default()).run(jobs, policy);
        let series = &result.ml_series;
        assert_eq!(series.first().map(|&(_, ml)| ml), Some(0));
        assert_eq!(series.last().map(|&(_, ml)| ml), Some(0));
        for pair in series.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time goes forward");
        }
        let peak = series.iter().map(|&(_, ml)| ml).max().unwrap();
        assert_eq!(peak, result.max_ml);
    }
}

/// With zero noise and zero reallocation cost, a lone application finishes
/// in exactly its ideal time (baseline phase accounted) — the engine's
/// arithmetic is exact, not approximate.
#[test]
fn lone_job_ideal_time_is_exact() {
    let config = EngineConfig {
        noise_sigma: 0.0,
        cost: CostModel::free(),
        ..EngineConfig::default()
    };
    let app = paper_app(AppClass::Hydro2d);
    let ideal = app.iter_time(30).unwrap().as_secs() * (app.iterations as f64 - 2.0)
        + app.iter_time(2).unwrap().as_secs() * 2.0;
    let jobs = vec![JobSpec::new(SimTime::ZERO, app)];
    let result = Engine::new(config).run(jobs, Box::new(Equipartition::default()));
    let got = result.summary.outcomes()[0].execution_time().as_secs();
    assert!((got - ideal).abs() < 1e-6, "got {got}, ideal {ideal}");
}

/// Seed-for-seed determinism across the whole stack, for every policy.
#[test]
fn runs_are_deterministic() {
    for make in [0usize, 1, 2, 3] {
        let build = |_: usize| -> Box<dyn SchedulingPolicy> {
            match make {
                0 => Box::new(IrixLike::paper_default()),
                1 => Box::new(Equipartition::default()),
                2 => Box::new(EqualEfficiency::paper_default()),
                _ => Box::new(Pdpa::paper_default()),
            }
        };
        let run = |policy: Box<dyn SchedulingPolicy>| {
            let jobs = Workload::W4.build(1.0, 99);
            Engine::new(EngineConfig::default().with_seed(4242)).run(jobs, policy)
        };
        let a = run(build(0));
        let b = run(build(0));
        assert_eq!(a.end_secs, b.end_secs, "policy {make} not deterministic");
        assert_eq!(a.max_ml, b.max_ml);
        let ra: Vec<f64> = a
            .summary
            .outcomes()
            .iter()
            .map(|o| o.response_time().as_secs())
            .collect();
        let rb: Vec<f64> = b
            .summary
            .outcomes()
            .iter()
            .map(|o| o.response_time().as_secs())
            .collect();
        assert_eq!(ra, rb);
    }
}
