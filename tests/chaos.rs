//! Fault-injection integration: seeded chaos plans across the policy suite.
//!
//! The engine's own unit tests cover the fault handlers; these tests drive
//! whole workloads through the public facade and check the system-level
//! promises: no policy panics or overcommits under capacity loss, and a
//! given seed produces byte-identical observability exports.

use std::collections::HashMap;

use pdpa_suite::obs::{chrome_trace, mpl_series_csv, ObsEvent, Observer, RecordingObserver};
use pdpa_suite::policies::GangScheduler;
use pdpa_suite::prelude::*;
use pdpa_suite::sim::{CpuId, SimTime};

fn all_policies() -> Vec<(&'static str, Box<dyn SchedulingPolicy>)> {
    vec![
        ("pdpa", Box::new(Pdpa::paper_default())),
        ("equip", Box::new(Equipartition::default())),
        ("equal_eff", Box::new(EqualEfficiency::paper_default())),
        ("rigid", Box::new(RigidFirstFit::paper_default())),
        ("irix", Box::new(IrixLike::paper_default())),
        ("gang", Box::new(GangScheduler::paper_comparable())),
    ]
}

fn space_shared_policies() -> Vec<(&'static str, Box<dyn SchedulingPolicy>)> {
    all_policies()
        .into_iter()
        .filter(|(name, _)| !matches!(*name, "irix" | "gang"))
        .collect()
}

/// A chaos plan exercising every fault type: a transient CPU failure, a
/// permanent one, and a job crash under the default bounded retry.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .fail_cpu_between(CpuId(2), 60.0, 300.0)
        .fail_cpu_at(CpuId(40), 120.0)
        .fail_job_at(JobId(0), 70.0)
        .with_retry(RetryPolicy::default())
}

/// Tracks per-CPU ownership and liveness from the decision-event stream
/// and records any violation of the allocation invariants:
///
/// - a CPU is never handed to a job while dead;
/// - once the clock advances past a failure, no dead CPU retains an owner;
/// - live allocations never exceed the currently-alive CPU count.
struct OvercommitChecker {
    total: usize,
    owner: HashMap<usize, JobId>,
    dead: std::collections::HashSet<usize>,
    last: SimTime,
    violations: Vec<String>,
}

impl OvercommitChecker {
    fn new(total: usize) -> Self {
        OvercommitChecker {
            total,
            owner: HashMap::new(),
            dead: std::collections::HashSet::new(),
            last: SimTime::ZERO,
            violations: Vec::new(),
        }
    }

    /// The invariant is checked whenever the clock moves, so same-instant
    /// event bursts (a failure followed by its evictions) settle first.
    fn settle(&mut self, at: SimTime) {
        for cpu in self.owner.keys() {
            if self.dead.contains(cpu) {
                self.violations
                    .push(format!("{at:?}: dead cpu{cpu} still owned"));
            }
        }
        let alive = self.total - self.dead.len();
        if self.owner.len() > alive {
            self.violations.push(format!(
                "{at:?}: {} CPUs allocated but only {alive} alive",
                self.owner.len()
            ));
        }
    }
}

impl Observer for OvercommitChecker {
    fn on_event(&mut self, at: SimTime, event: &ObsEvent) {
        if at > self.last {
            let settled = self.last;
            self.settle(settled);
            self.last = at;
        }
        match event {
            ObsEvent::CpuAssigned { cpu, job } => {
                let i = cpu.index();
                match job {
                    Some(j) => {
                        if self.dead.contains(&i) {
                            self.violations
                                .push(format!("{at:?}: dead cpu{i} assigned to {j:?}"));
                        }
                        self.owner.insert(i, *j);
                    }
                    None => {
                        self.owner.remove(&i);
                    }
                }
            }
            ObsEvent::CpuFailed { cpu } => {
                self.dead.insert(cpu.index());
            }
            ObsEvent::CpuRecovered { cpu } => {
                self.dead.remove(&cpu.index());
            }
            _ => {}
        }
    }
}

/// Satellite invariant: at every event, the live allocations of a
/// space-shared run fit in the currently-alive processor set — with and
/// without fault injection.
#[test]
fn space_shared_runs_never_overcommit() {
    for faults in [FaultPlan::none(), chaos_plan()] {
        for (name, policy) in space_shared_policies() {
            let jobs = Workload::W3.build(1.0, 42);
            let config = EngineConfig::default()
                .with_seed(42)
                .with_faults(faults.clone());
            let mut checker = OvercommitChecker::new(60);
            let r = Engine::new(config).run_observed(jobs, policy, &mut checker);
            assert!(r.completed_all, "{name} wedged");
            let end = SimTime::from_secs(r.end_secs);
            checker.settle(end);
            assert!(
                checker.violations.is_empty(),
                "{name} (faults: {}) violated allocation invariants:\n{}",
                !faults.is_empty(),
                checker.violations.join("\n")
            );
        }
    }
}

/// Tentpole acceptance: a seeded fault plan completes under every policy
/// with zero panics, and the fault actually bit (both CPU failures landed).
#[test]
fn every_policy_completes_a_chaos_run() {
    for (name, policy) in all_policies() {
        let jobs = Workload::W3.build(1.0, 42);
        let config = EngineConfig::default()
            .with_seed(42)
            .with_faults(chaos_plan());
        let r = Engine::new(config).run(jobs, policy);
        assert!(r.completed_all, "{name} wedged under chaos");
        assert_eq!(r.cpu_failures, 2, "{name} missed a CPU failure");
    }
}

/// Identical seeds must produce byte-identical Chrome-trace and MPL-series
/// exports, fault events included.
#[test]
fn chaos_exports_are_reproducible() {
    let run = || {
        let jobs = Workload::W3.build(1.0, 7);
        let config = EngineConfig::default()
            .with_seed(7)
            .with_faults(chaos_plan());
        let mut rec = RecordingObserver::new();
        let r = Engine::new(config).run_observed(jobs, Box::new(Pdpa::paper_default()), &mut rec);
        assert!(r.completed_all);
        rec.take_events()
    };
    let (a, b) = (run(), run());
    let kinds: std::collections::HashSet<&str> = a.iter().map(|te| te.event.kind()).collect();
    for kind in ["cpu_failed", "cpu_recovered", "degraded", "retry"] {
        assert!(kinds.contains(kind), "no {kind} event in the stream");
    }
    let runs_a = vec![("w3-chaos".to_string(), a)];
    let runs_b = vec![("w3-chaos".to_string(), b)];
    assert_eq!(
        chrome_trace(&runs_a),
        chrome_trace(&runs_b),
        "chrome trace differs between identical seeds"
    );
    assert_eq!(
        mpl_series_csv(&runs_a),
        mpl_series_csv(&runs_b),
        "MPL series differs between identical seeds"
    );
    assert!(chrome_trace(&runs_a).contains("capacity"));
}
