//! Shared conformance suite: every scheduling policy — the paper's own,
//! the classic baselines, and the tournament entrants from the later
//! literature — must honor the same engine-level contract:
//!
//! - a full workload drains to completion, with and without fault
//!   injection;
//! - no decision ever exceeds the job's request, and space-shared
//!   allocations always fit in the currently-alive processor set;
//! - a fixed seed produces a bit-identical decision-event stream;
//! - for space-sharing policies, the shard count of the parallel engine
//!   is invisible in the results.
//!
//! New policies get these guarantees by being added to [`roster`]; nothing
//! else in the suite is policy-specific.

use std::collections::HashMap;

use pdpa_suite::obs::{ObsEvent, Observer, RecordingObserver};
use pdpa_suite::policies::GangScheduler;
use pdpa_suite::prelude::*;
use pdpa_suite::sim::CpuId;

type PolicyFactory = fn() -> Box<dyn SchedulingPolicy>;

/// Every registered policy, old and new, by slug.
fn roster() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("pdpa", || Box::new(Pdpa::paper_default())),
        ("equip", || Box::new(Equipartition::default())),
        ("equal_eff", || Box::new(EqualEfficiency::paper_default())),
        ("rigid", || Box::new(RigidFirstFit::paper_default())),
        ("irix", || Box::new(IrixLike::paper_default())),
        ("gang", || Box::new(GangScheduler::paper_comparable())),
        ("hesrpt", || Box::new(HeSrpt::default())),
        ("optsplit", || Box::new(OptSplit::default())),
        ("learned", || Box::new(LearnedAlloc::default())),
    ]
}

/// The space-sharing subset: the policies whose allocations partition the
/// machine (and which the sharded engine accepts).
fn space_sharing() -> Vec<(&'static str, PolicyFactory)> {
    roster()
        .into_iter()
        .filter(|(_, make)| matches!(make().sharing(), SharingModel::SpaceShared))
        .collect()
}

/// A fault plan exercising every fault type (mirrors `tests/chaos.rs`).
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .fail_cpu_between(CpuId(2), 60.0, 300.0)
        .fail_cpu_at(CpuId(40), 120.0)
        .fail_job_at(JobId(0), 70.0)
        .with_retry(RetryPolicy::default())
}

/// Watches the event stream for contract violations: a decision above the
/// job's request (any policy), or — for space-shared runs, where the
/// `CpuAssigned` stream is the real partition — occupancy above the
/// currently-alive CPU count. The engine evicts on CPU failure without a
/// `Decision` event, so occupancy is tracked from CPU assignments, not
/// from decision targets.
#[derive(Default)]
struct ContractChecker {
    requests: HashMap<JobId, usize>,
    owner: HashMap<usize, JobId>,
    dead: std::collections::HashSet<usize>,
    total: usize,
    last: pdpa_suite::sim::SimTime,
    violations: Vec<String>,
    check_capacity: bool,
}

impl ContractChecker {
    fn new(total: usize, check_capacity: bool) -> Self {
        ContractChecker {
            total,
            check_capacity,
            ..ContractChecker::default()
        }
    }

    /// The capacity invariant is checked only when the clock advances, so
    /// same-instant event bursts (a failure followed by its evictions)
    /// settle before being judged.
    fn settle(&mut self, at: pdpa_suite::sim::SimTime) {
        if !self.check_capacity {
            return;
        }
        let held = self.owner.len();
        let alive = self.total - self.dead.len();
        if held > alive {
            self.violations.push(format!(
                "{at:?}: {held} CPUs occupied but only {alive} alive"
            ));
        }
    }
}

impl Observer for ContractChecker {
    fn on_event(&mut self, at: pdpa_suite::sim::SimTime, event: &ObsEvent) {
        if at > self.last {
            let settled = self.last;
            self.settle(settled);
            self.last = at;
        }
        match event {
            ObsEvent::JobStarted { job, request } => {
                self.requests.insert(*job, *request);
            }
            ObsEvent::CpuFailed { cpu } => {
                self.dead.insert(cpu.index());
            }
            ObsEvent::CpuRecovered { cpu } => {
                self.dead.remove(&cpu.index());
            }
            ObsEvent::CpuAssigned { cpu, job } => match job {
                Some(j) => {
                    self.owner.insert(cpu.index(), *j);
                }
                None => {
                    self.owner.remove(&cpu.index());
                }
            },
            ObsEvent::Decision { job, to_alloc, .. } => {
                if let Some(&req) = self.requests.get(job) {
                    if *to_alloc > req {
                        self.violations.push(format!(
                            "{at:?}: {job:?} granted {to_alloc} > request {req}"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

/// One traced engine run with the given observer; panics if it wedges.
fn run_with<O: Observer>(
    name: &str,
    make: PolicyFactory,
    faults: FaultPlan,
    observer: &mut O,
) -> RunResult {
    let jobs = Workload::W3.build(1.0, 42);
    let config = EngineConfig::default()
        .with_seed(42)
        .with_faults(faults)
        .with_trace();
    let result = Engine::new(config).run_observed(jobs, make(), observer);
    assert!(result.completed_all, "{name} did not drain the workload");
    result
}

/// Every policy drains a full workload, fault-free and under chaos, and
/// under chaos both planned CPU failures actually land.
#[test]
fn every_policy_drains_with_and_without_faults() {
    for (name, make) in roster() {
        let clean = run_with(
            name,
            make,
            FaultPlan::none(),
            &mut pdpa_suite::obs::NullObserver,
        );
        assert_eq!(clean.cpu_failures, 0, "{name} saw phantom failures");
        let chaotic = run_with(name, make, chaos_plan(), &mut pdpa_suite::obs::NullObserver);
        assert_eq!(chaotic.cpu_failures, 2, "{name} missed a CPU failure");
    }
}

/// No policy ever grants a job more than it requested, and space-shared
/// allocations fit in the alive processor set — with and without faults.
#[test]
fn decisions_respect_request_and_capacity_bounds() {
    let space: Vec<&str> = space_sharing().iter().map(|(n, _)| *n).collect();
    for faults in [FaultPlan::none(), chaos_plan()] {
        for (name, make) in roster() {
            let mut checker = ContractChecker::new(60, space.contains(&name));
            let result = run_with(name, make, faults.clone(), &mut checker);
            checker.settle(pdpa_suite::sim::SimTime::from_secs(result.end_secs));
            assert!(
                checker.violations.is_empty(),
                "{name} (faults: {}) violated the allocation contract:\n{}",
                !faults.is_empty(),
                checker.violations.join("\n")
            );
        }
    }
}

/// A fixed seed reproduces the decision-event stream bit-for-bit, for
/// every policy — the determinism bar the tournament rankings rest on.
#[test]
fn decision_streams_are_bit_identical_for_a_fixed_seed() {
    for (name, make) in roster() {
        let record = || {
            let mut recorder = RecordingObserver::new();
            run_with(name, make, chaos_plan(), &mut recorder);
            let mut out = String::new();
            for te in recorder.events() {
                out.push_str(&te.to_line());
                out.push('\n');
            }
            out
        };
        let (a, b) = (record(), record());
        assert!(!a.is_empty(), "{name} recorded no events");
        assert_eq!(
            a, b,
            "{name}: decision stream differs between identical seeds"
        );
    }
}

/// Space-sharing policies — the new literature entrants included — give
/// identical results for every shard count of the parallel engine.
#[test]
fn shard_count_is_invisible_for_space_sharing_policies() {
    fn digest(r: &RunResult) -> (usize, String, u64, u64) {
        let mut ends: Vec<String> = r
            .summary
            .outcomes()
            .iter()
            .map(|o| {
                format!(
                    "{}:{:.9}:{:.9}",
                    o.job.0,
                    o.start.as_secs(),
                    o.end.as_secs()
                )
            })
            .collect();
        ends.sort();
        (
            r.summary.outcomes().len(),
            ends.join(","),
            r.decisions_applied,
            r.jobs_failed,
        )
    }
    let engine = Engine::new(EngineConfig::default());
    for (name, make) in space_sharing() {
        let base = engine.run_sharded(Workload::W3.build(0.6, 7), make(), 1);
        assert!(base.completed_all, "{name} wedged sharded");
        for shards in [2usize, 4] {
            let r = engine.run_sharded(Workload::W3.build(0.6, 7), make(), shards);
            assert_eq!(
                digest(&base),
                digest(&r),
                "{name} diverged at {shards} shards"
            );
        }
    }
}
