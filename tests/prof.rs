//! Integration tests for the `pdpa-prof` instrumentation layer wired
//! through both engines: span profiles, the zero-progress watchdog, and
//! the contract that instrumentation never perturbs the decision stream.

use pdpa_suite::core::Pdpa;
use pdpa_suite::engine::shard::DEFAULT_EPOCH_SECS;
use pdpa_suite::engine::{Engine, EngineConfig, Instrumentation};
use pdpa_suite::obs::{read_stream, write_stream, write_text_stream, RecordingObserver};
use pdpa_suite::prof::{SpanKind, WatchdogConfig};
use pdpa_suite::qs::{JobSpec, Workload};
use pdpa_suite::sim::SimTime;

fn engine() -> Engine {
    Engine::new(EngineConfig::default().with_seed(42))
}

#[test]
fn sharded_profile_has_one_lane_per_shard_plus_coordinator() {
    let jobs = Workload::W3.build(0.6, 42);
    let result = engine().run_sharded_instrumented(
        jobs,
        Box::new(Pdpa::paper_default()),
        3,
        DEFAULT_EPOCH_SECS,
        &mut pdpa_suite::obs::NullObserver,
        Instrumentation::none().with_profile(),
    );
    assert!(result.completed_all);
    let profile = result.profile.expect("profiling was enabled");
    let names: Vec<&str> = profile.lanes.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(names, ["coordinator", "shard-0", "shard-1", "shard-2"]);
    // The coordinator owns the hierarchy: one replay span wrapping the
    // rounds, barrier computes, merges, publishes, and policy decisions.
    assert_eq!(
        profile.lanes[0]
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Replay)
            .count(),
        1
    );
    for kind in [
        SpanKind::Round,
        SpanKind::BarrierCompute,
        SpanKind::Merge,
        SpanKind::Publish,
        SpanKind::PolicyDecision,
    ] {
        assert!(
            profile.total_ns(kind) > 0,
            "no {:?} time on the coordinator lane",
            kind
        );
    }
    // Every shard lane advanced and counted its popped events.
    for lane in &profile.lanes[1..] {
        assert!(
            lane.spans.iter().any(|s| s.kind == SpanKind::ShardAdvance),
            "{} recorded no shard_advance spans",
            lane.name
        );
        assert!(lane.events > 0, "{} counted no events", lane.name);
    }
    // The Chrome export names each lane and the report aggregates them.
    let json = profile.chrome_json();
    for lane in ["coordinator", "shard-0", "shard-1", "shard-2"] {
        assert!(json.contains(lane), "missing {lane} in Chrome trace");
    }
    assert!(profile.hot_path_report().contains("per-shard events:"));
}

#[test]
fn classic_profile_records_the_coordinator_hierarchy() {
    let jobs = Workload::W3.build(0.6, 42);
    let result = engine().run_instrumented(
        jobs,
        Box::new(Pdpa::paper_default()),
        &mut pdpa_suite::obs::NullObserver,
        Instrumentation::none().with_profile(),
    );
    assert!(result.completed_all);
    let profile = result.profile.expect("profiling was enabled");
    assert_eq!(profile.lanes.len(), 1);
    assert_eq!(profile.lanes[0].name, "coordinator");
    assert!(profile.lanes[0].events > 0);
    for kind in [
        SpanKind::Replay,
        SpanKind::PolicyDecision,
        SpanKind::QueueOps,
    ] {
        assert!(profile.total_ns(kind) > 0, "no {:?} time recorded", kind);
    }
}

#[test]
fn watchdog_aborts_synthetic_zero_progress_with_a_diagnostic() {
    // Fifty simultaneous submissions: the classic engine pops fifty
    // arrival events without the simulated clock moving, which is exactly
    // the signature of a stuck run. A tiny threshold makes the watchdog
    // trip inside that burst instead of after the production 5M steps.
    let jobs: Vec<JobSpec> = (0..50)
        .map(|_| JobSpec::new(SimTime::ZERO, pdpa_suite::apps::paper::bt_a()))
        .collect();
    let result = engine().run_instrumented(
        jobs,
        Box::new(Pdpa::paper_default()),
        &mut pdpa_suite::obs::NullObserver,
        Instrumentation::none().with_watchdog(WatchdogConfig { max_stalled: 10 }),
    );
    let diag = result.watchdog.expect("watchdog must trip");
    assert!(
        diag.contains("no sim-clock progress"),
        "unstructured diagnostic: {diag}"
    );
    assert!(
        diag.contains("classic engine"),
        "diagnostic lacks engine context: {diag}"
    );
    assert!(
        !result.completed_all,
        "an aborted run must not claim completion"
    );
}

#[test]
fn watchdog_stays_silent_on_healthy_runs() {
    // Production thresholds on real workloads through both engines: the
    // watchdog must never fire on a run that is actually progressing.
    let jobs = Workload::W3.build(0.6, 42);
    let classic = engine().run_instrumented(
        jobs.clone(),
        Box::new(Pdpa::paper_default()),
        &mut pdpa_suite::obs::NullObserver,
        Instrumentation::none().with_watchdog(WatchdogConfig::classic()),
    );
    assert!(classic.completed_all && classic.watchdog.is_none());
    let sharded = engine().run_sharded_instrumented(
        jobs,
        Box::new(Pdpa::paper_default()),
        2,
        DEFAULT_EPOCH_SECS,
        &mut pdpa_suite::obs::NullObserver,
        Instrumentation::none().with_watchdog(WatchdogConfig::sharded()),
    );
    assert!(sharded.completed_all && sharded.watchdog.is_none());
}

#[test]
fn profiling_leaves_the_decision_stream_bit_identical() {
    // The acceptance pin: a profiled run and a binary-serialized stream
    // must both be indistinguishable from the plain text-format run.
    let jobs = Workload::W3.build(0.6, 42);
    let mut plain_rec = RecordingObserver::new();
    let plain = engine().run_sharded_instrumented(
        jobs.clone(),
        Box::new(Pdpa::paper_default()),
        2,
        DEFAULT_EPOCH_SECS,
        &mut plain_rec,
        Instrumentation::none(),
    );
    let mut profiled_rec = RecordingObserver::new();
    let profiled = engine().run_sharded_instrumented(
        jobs,
        Box::new(Pdpa::paper_default()),
        2,
        DEFAULT_EPOCH_SECS,
        &mut profiled_rec,
        Instrumentation::none()
            .with_profile()
            .with_watchdog(WatchdogConfig::sharded()),
    );
    assert!(plain.completed_all && profiled.completed_all);
    let plain_events = plain_rec.take_events();
    let profiled_events = profiled_rec.take_events();
    // Bit-identical text serializations, not just equal event counts.
    assert_eq!(
        write_text_stream(&plain_events),
        write_text_stream(&profiled_events),
        "profiling perturbed the decision stream"
    );
    // And the binary codec reproduces that same stream byte-exactly.
    let decoded = read_stream(&write_stream(&plain_events)).expect("binary round trip");
    assert_eq!(
        write_text_stream(&decoded),
        write_text_stream(&plain_events),
        "binary framing perturbed the decision stream"
    );
    // Per-shard event accounting rode along on both results.
    assert_eq!(plain.shard_events_popped.len(), 2);
    assert_eq!(plain.shard_events_popped, profiled.shard_events_popped);
}
