//! Integration tests pinning the paper's headline claims (§5).
//!
//! These run full workloads through the engine and assert the *shapes* the
//! paper reports — who wins, in which regime, by roughly what kind of
//! factor. They are the regression net for the whole reproduction: any
//! change to the policies, the machine model, or the calibration that
//! breaks a paper claim fails here.

use pdpa_suite::prelude::*;

fn run(workload: Workload, load: f64, tuned: bool, policy: Box<dyn SchedulingPolicy>) -> RunResult {
    let jobs = workload.build_with_tuning(load, 42, tuned);
    let result = Engine::new(EngineConfig::default()).run(jobs, policy);
    assert!(result.completed_all, "workload must drain");
    result
}

fn response(result: &RunResult, class: AppClass) -> f64 {
    result
        .summary
        .class_averages(class)
        .expect("class present")
        .avg_response_secs
}

/// §5.3: with half the load non-scalable, PDPA's coordination dominates —
/// "PDPA outperforms Equipartition in a 600 percent in both the response
/// time of bt and apsi". We assert a conservative ≥ 2× at 100 % load.
#[test]
fn w3_pdpa_crushes_fixed_ml_policies_on_response() {
    let pdpa = run(Workload::W3, 1.0, true, Box::new(Pdpa::paper_default()));
    let equip = run(Workload::W3, 1.0, true, Box::new(Equipartition::default()));
    for class in [AppClass::BtA, AppClass::Apsi] {
        let ratio = response(&equip, class) / response(&pdpa, class);
        assert!(
            ratio > 2.0,
            "{class}: PDPA {:.0}s vs Equip {:.0}s (ratio {ratio:.1})",
            response(&pdpa, class),
            response(&equip, class)
        );
    }
}

/// §5.3: "the multiprogramming level was set up to 34 jobs" under PDPA,
/// while the baselines stay pinned at 4.
#[test]
fn w3_pdpa_raises_the_multiprogramming_level() {
    let pdpa = run(Workload::W3, 1.0, true, Box::new(Pdpa::paper_default()));
    let equip = run(Workload::W3, 1.0, true, Box::new(Equipartition::default()));
    assert!(pdpa.max_ml >= 10, "PDPA ML reached only {}", pdpa.max_ml);
    assert_eq!(equip.max_ml, 4, "Equipartition is pinned at its level");
}

/// §5.1: workload 1 is PDPA's worst case ("there is nothing to improve") —
/// it may lose to Equipartition, but only mildly, and both must beat the
/// uncoordinated baselines.
#[test]
fn w1_pdpa_stays_close_to_equipartition() {
    let pdpa = run(Workload::W1, 1.0, true, Box::new(Pdpa::paper_default()));
    let equip = run(Workload::W1, 1.0, true, Box::new(Equipartition::default()));
    let irix = run(Workload::W1, 1.0, true, Box::new(IrixLike::paper_default()));
    for class in [AppClass::Swim, AppClass::BtA] {
        let p = response(&pdpa, class);
        let e = response(&equip, class);
        assert!(
            p < e * 4.0,
            "{class}: PDPA response {p:.0}s must stay within 4x of Equip {e:.0}s"
        );
        let i = response(&irix, class);
        assert!(
            p < i * 1.6,
            "{class}: PDPA {p:.0}s must not lose badly to IRIX {i:.0}s"
        );
    }
    // And the native scheduler is clearly worse than Equipartition.
    assert!(response(&irix, AppClass::BtA) > response(&equip, AppClass::BtA) * 1.2);
}

/// §5.1: Equal_efficiency's noisy extrapolation costs it dearly on the
/// all-scalable workload.
#[test]
fn w1_equal_efficiency_trails_equipartition() {
    let eq_eff = run(
        Workload::W1,
        1.0,
        true,
        Box::new(EqualEfficiency::paper_default()),
    );
    let equip = run(Workload::W1, 1.0, true, Box::new(Equipartition::default()));
    assert!(
        response(&eq_eff, AppClass::BtA) > response(&equip, AppClass::BtA) * 1.3,
        "Equal_eff {:.0}s vs Equip {:.0}s",
        response(&eq_eff, AppClass::BtA),
        response(&equip, AppClass::BtA)
    );
}

/// §5.2: on the high+medium mix, PDPA beats Equipartition on bt's response
/// while paying a bounded execution-time price on hydro2d.
#[test]
fn w2_pdpa_beats_equip_on_bt_and_pays_on_hydro() {
    let pdpa = run(Workload::W2, 1.0, true, Box::new(Pdpa::paper_default()));
    let equip = run(Workload::W2, 1.0, true, Box::new(Equipartition::default()));
    assert!(
        response(&pdpa, AppClass::BtA) < response(&equip, AppClass::BtA),
        "PDPA bt response {:.0}s vs Equip {:.0}s",
        response(&pdpa, AppClass::BtA),
        response(&equip, AppClass::BtA)
    );
    // hydro2d execution: PDPA runs it near its efficiency knee (~10 procs
    // vs Equip's ~15), so execution is worse — but boundedly so.
    let p_exec = pdpa
        .summary
        .class_averages(AppClass::Hydro2d)
        .unwrap()
        .avg_execution_secs;
    let e_exec = equip
        .summary
        .class_averages(AppClass::Hydro2d)
        .unwrap()
        .avg_execution_secs;
    assert!(
        p_exec > e_exec,
        "the efficiency target costs execution time"
    );
    assert!(
        p_exec < e_exec * 2.0,
        "but bounded: {p_exec:.0}s vs {e_exec:.0}s"
    );
}

/// §5.4: the paper's measured allocations for workload 4 at 80 % load were
/// swim 17, bt 20, hydro2d 10, apsi 2. We assert the ordering and ranges.
#[test]
fn w4_allocations_match_paper_structure() {
    let pdpa = run(Workload::W4, 0.8, true, Box::new(Pdpa::paper_default()));
    let alloc = |c: AppClass| pdpa.avg_alloc_by_class[&c];
    assert!(
        (1.5..=2.5).contains(&alloc(AppClass::Apsi)),
        "apsi at {:.1}",
        alloc(AppClass::Apsi)
    );
    assert!(
        (5.0..=14.0).contains(&alloc(AppClass::Hydro2d)),
        "hydro2d at {:.1}",
        alloc(AppClass::Hydro2d)
    );
    assert!(
        alloc(AppClass::BtA) > alloc(AppClass::Hydro2d),
        "bt above hydro2d"
    );
    assert!(
        alloc(AppClass::Swim) > alloc(AppClass::Hydro2d),
        "swim above hydro2d"
    );
}

/// Table 3: untuned apsi (requesting 30) — PDPA measures the flat speedup,
/// shrinks it, and the multiprogramming level explodes relative to
/// Equipartition's 4.
#[test]
fn table3_untuned_apsi_is_rescued_by_pdpa() {
    let pdpa = run(Workload::W3, 0.6, false, Box::new(Pdpa::paper_default()));
    let equip = run(Workload::W3, 0.6, false, Box::new(Equipartition::default()));
    assert!(
        pdpa.avg_alloc_by_class[&AppClass::Apsi] < 8.0,
        "PDPA shrinks untuned apsi, got {:.1}",
        pdpa.avg_alloc_by_class[&AppClass::Apsi]
    );
    assert!(
        equip.avg_alloc_by_class[&AppClass::Apsi] > 12.0,
        "Equip wastes processors on apsi, got {:.1}",
        equip.avg_alloc_by_class[&AppClass::Apsi]
    );
    assert!(pdpa.max_ml >= 3 * equip.max_ml);
    let ratio = response(&equip, AppClass::Apsi) / response(&pdpa, AppClass::Apsi);
    assert!(ratio > 1.5, "apsi response ratio {ratio:.1}");
}

/// Table 2 structure: IRIX migrates orders of magnitude more than the
/// space-sharing policies, with correspondingly shorter bursts.
#[test]
fn table2_migration_and_burst_structure() {
    let mut stats = Vec::new();
    for policy in [
        Box::new(IrixLike::paper_default()) as Box<dyn SchedulingPolicy>,
        Box::new(Pdpa::paper_default()),
        Box::new(Equipartition::default()),
    ] {
        let jobs = Workload::W1.build(1.0, 42);
        let config = EngineConfig::default().with_trace();
        let result = Engine::new(config).run(jobs, policy);
        let migrations = result.total_migrations();
        let trace = result.trace.expect("traced");
        stats.push(BurstStats::from_trace(&trace, migrations));
    }
    let (irix, pdpa, equip) = (&stats[0], &stats[1], &stats[2]);
    assert!(
        irix.migrations > 100 * pdpa.migrations.max(1),
        "IRIX {} vs PDPA {}",
        irix.migrations,
        pdpa.migrations
    );
    assert!(irix.migrations > 20 * equip.migrations.max(1));
    assert!(
        pdpa.avg_burst_secs > 10.0 * irix.avg_burst_secs,
        "PDPA bursts {:.1}s vs IRIX {:.3}s",
        pdpa.avg_burst_secs,
        irix.avg_burst_secs
    );
    assert!(
        irix.avg_bursts_per_cpu > 10.0 * pdpa.avg_bursts_per_cpu,
        "IRIX {} bursts/cpu vs PDPA {}",
        irix.avg_bursts_per_cpu,
        pdpa.avg_bursts_per_cpu
    );
}

/// Fig. 8: PDPA's multiprogramming level moves over the run — it is a
/// dynamic series, not a constant.
#[test]
fn fig8_ml_series_is_dynamic() {
    let pdpa = run(Workload::W2, 1.0, true, Box::new(Pdpa::paper_default()));
    let levels: std::collections::HashSet<usize> =
        pdpa.ml_series.iter().map(|&(_, ml)| ml).collect();
    assert!(
        levels.len() >= 4,
        "the level should visit several values, saw {levels:?}"
    );
    assert!(pdpa.max_ml > 4, "and exceed the default level");
}
