//! Property tests for the observability layer's stream codecs and metrics.
//!
//! Three families:
//!
//! 1. `parse_line(to_line(e)) == e` across **every** [`ObsEvent`] kind, with
//!    generated ids, floats, state names, and debug-quoted payloads. The
//!    line format is the interchange surface for `pdpa analyze` / `pdpa
//!    diff`, so a kind that cannot round-trip would silently vanish from
//!    replays.
//! 2. The `PDPAOBS1` binary framing decodes every generated stream back to
//!    the identical events, and `parse_stream` (the auto-detecting reader)
//!    agrees with the text parser event-for-event on the same stream —
//!    the two codecs can never drift apart.
//! 3. The log₂-bucket [`Histogram`] quantile estimate stays within one
//!    bucket width of the exact rank-order statistic: for a sample `v ≥ 2`
//!    in bucket `i`, `v ∈ [2^i, 2^(i+1))` and the reported midpoint
//!    `1.5·2^i` gives a ratio in `(0.75, 1.5]`; the sub-bucket values
//!    `{0, 1}` share bucket 0, so there the error is absolute and ≤ 1.

use proptest::prelude::*;

use pdpa_suite::obs::{
    parse_stream, read_stream, write_stream, write_text_stream, DecisionTrigger, Histogram,
    ObsEvent, TimedEvent,
};
use pdpa_suite::sim::{CpuId, JobId, SimTime};

fn arb_job() -> impl Strategy<Value = JobId> {
    (0u32..10_000).prop_map(JobId)
}

fn arb_cpu() -> impl Strategy<Value = CpuId> {
    (0u16..4_096).prop_map(CpuId)
}

fn arb_trigger() -> impl Strategy<Value = DecisionTrigger> {
    prop_oneof![
        Just(DecisionTrigger::Arrival),
        Just(DecisionTrigger::Report),
        Just(DecisionTrigger::Completion),
        Just(DecisionTrigger::Fault),
    ]
}

/// The PDPA state vocabulary plus a leaked ad-hoc name, exercising both
/// the intern table's fast path and its fallback pool.
fn arb_state() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("NO_REF"),
        Just("INC"),
        Just("DEC"),
        Just("STABLE"),
        Just("CUSTOM_STATE"),
    ]
}

/// One strategy per event kind; `prop_oneof!` unions all sixteen.
fn arb_event() -> BoxedStrategy<ObsEvent> {
    prop_oneof![
        arb_job().prop_map(|job| ObsEvent::JobSubmitted { job }),
        arb_job().prop_map(|job| ObsEvent::JobDequeued { job }),
        (arb_job(), 1usize..=128).prop_map(|(job, request)| ObsEvent::JobStarted { job, request }),
        arb_job().prop_map(|job| ObsEvent::JobFinished { job }),
        (
            arb_job(),
            1usize..=128,
            0.0f64..1e4,
            0.0f64..64.0,
            0.0f64..1.0,
            proptest::bool::ANY,
        )
            .prop_map(|(job, procs, iter_secs, speedup, efficiency, estimated)| {
                ObsEvent::IterationMeasured {
                    job,
                    procs,
                    iter_secs,
                    speedup,
                    efficiency,
                    estimated,
                }
            }),
        (
            arb_trigger(),
            arb_job(),
            0usize..=128,
            0usize..=128,
            proptest::option::of((arb_state(), arb_state())),
        )
            .prop_map(|(trigger, job, from_alloc, to_alloc, transition)| {
                ObsEvent::Decision {
                    trigger,
                    job,
                    from_alloc,
                    to_alloc,
                    transition,
                }
            }),
        (arb_job(), arb_state(), arb_state()).prop_map(|(job, from, to)| ObsEvent::StateChanged {
            job,
            from,
            to
        }),
        (0usize..256, 0usize..16_384).prop_map(|(running, total_alloc)| ObsEvent::MplChanged {
            running,
            total_alloc,
        }),
        (arb_job(), 0.0f64..1e3, 0usize..=64, 0usize..=64).prop_map(
            |(job, penalty_secs, gained, lost)| ObsEvent::ReallocCost {
                job,
                penalty_secs,
                gained,
                lost,
            }
        ),
        (arb_cpu(), proptest::option::of(arb_job()))
            .prop_map(|(cpu, job)| ObsEvent::CpuAssigned { cpu, job }),
        arb_cpu().prop_map(|cpu| ObsEvent::CpuFailed { cpu }),
        arb_cpu().prop_map(|cpu| ObsEvent::CpuRecovered { cpu }),
        (0usize..=4_096, 1usize..=4_096)
            .prop_map(|(alive, total)| ObsEvent::DegradedCapacity { alive, total }),
        (arb_job(), 1u32..=16, 0.0f64..600.0).prop_map(|(job, attempt, backoff_secs)| {
            ObsEvent::JobRetried {
                job,
                attempt,
                backoff_secs,
            }
        }),
        (arb_job(), 1u32..=16).prop_map(|(job, attempts)| ObsEvent::JobFailed { job, attempts }),
        // The name is a single key=value token; the message is
        // debug-quoted, so any printable ASCII (backslashes and quotes
        // included) must survive the escape/unescape pair.
        ("[a-z0-9_]{1,16}", "[ -~]{0,60}")
            .prop_map(|(name, message)| { ObsEvent::ExperimentFailed { name, message } }),
    ]
    .boxed()
}

fn arb_timed() -> impl Strategy<Value = TimedEvent> {
    (
        prop_oneof![Just(0.0f64), 0.0f64..1e6],
        0u64..1_000_000,
        arb_event(),
    )
        .prop_map(|(at, seq, event)| TimedEvent {
            at: SimTime::from_secs(at),
            seq,
            event,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2_000))]

    /// Every event kind survives `parse_line(to_line(e))` bit-exactly:
    /// floats re-parse to the same value (shortest formatting), interned
    /// names compare equal, quoted payloads unescape to the original.
    #[test]
    fn every_event_kind_round_trips(ev in arb_timed()) {
        let line = ev.to_line();
        let back = TimedEvent::parse_line(&line);
        prop_assert!(
            back.is_ok(),
            "line {:?} failed to parse: {}",
            line,
            back.unwrap_err()
        );
        prop_assert_eq!(back.unwrap(), ev);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// Every generated stream survives the binary codec identically, and
    /// the auto-detecting `parse_stream` yields the same events from the
    /// binary bytes as from the text rendering of the same stream.
    #[test]
    fn binary_stream_matches_text_parser(
        events in proptest::collection::vec(arb_timed(), 0..40),
    ) {
        let bytes = write_stream(&events);
        let back = read_stream(&bytes).expect("binary stream decodes");
        prop_assert_eq!(&back, &events);

        let from_binary = parse_stream(&bytes).expect("binary auto-detects");
        let from_text =
            parse_stream(write_text_stream(&events).as_bytes()).expect("text parses");
        prop_assert_eq!(&from_binary, &from_text);
        prop_assert_eq!(&from_binary, &events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// The histogram quantile stays within one log₂ bucket of the exact
    /// rank-order statistic: relative error in `(0.75, 1.5]` for samples
    /// `≥ 2`, absolute error ≤ 1 for the sub-bucket values `{0, 1}`.
    #[test]
    fn quantile_error_is_bounded_by_one_bucket(
        samples in proptest::collection::vec(
            prop_oneof![0u64..4, 1u64..1_000, 1u64..50_000_000],
            1..200,
        ),
        q_percent in 0u32..=100,
    ) {
        let q = f64::from(q_percent) / 100.0;
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }

        // The exact order statistic at the histogram's own rank rule.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = sorted[rank - 1];

        let est = h.quantile(q);
        if exact >= 2 {
            let ratio = est as f64 / exact as f64;
            prop_assert!(
                (0.75..=1.5).contains(&ratio),
                "quantile({}) of {} samples: est {} vs exact {} (ratio {})",
                q, n, est, exact, ratio
            );
        } else {
            let diff = (est as i64 - exact as i64).unsigned_abs();
            prop_assert!(
                diff <= 1,
                "quantile({}) of {} samples: est {} vs exact {} (sub-bucket)",
                q, n, est, exact
            );
        }
    }
}

/// Deterministic spot checks of the round trip at the extremes the
/// generators cannot hit (huge seq, zero-width message, the top bucket).
#[test]
fn round_trip_edge_cases() {
    let cases = [
        TimedEvent {
            at: SimTime::ZERO,
            seq: u64::MAX,
            event: ObsEvent::ExperimentFailed {
                name: "x".into(),
                message: String::new(),
            },
        },
        TimedEvent {
            at: SimTime::from_secs(0.1 + 0.2), // a classically non-exact float
            seq: 0,
            event: ObsEvent::CpuAssigned {
                cpu: CpuId(u16::MAX),
                job: None,
            },
        },
        TimedEvent {
            at: SimTime::from_secs(1e9),
            seq: 1,
            event: ObsEvent::ExperimentFailed {
                name: "quoting".into(),
                message: "tab\t quote\" backslash\\ newline\n done".into(),
            },
        },
    ];
    for ev in cases {
        let line = ev.to_line();
        let back = TimedEvent::parse_line(&line).expect("edge case parses");
        assert_eq!(back, ev, "line was {line:?}");
    }
}
