//! Golden-output pin for the Fig.-5 trace pipeline.
//!
//! The per-CPU activity trace is now built by routing the engine's
//! `CpuAssigned` decision events through the observability bus into the
//! `TraceCollector` bridge (instead of the engine calling the collector
//! directly). These fixtures were generated *before* that rewiring, so the
//! test proves the bridge is a pure refactor: `render_ascii` and
//! `to_paraver` stay byte-identical.

use pdpa_suite::apps::paper::{apsi, bt_a};
use pdpa_suite::engine::{Engine, EngineConfig};
use pdpa_suite::policies::Equipartition;
use pdpa_suite::qs::JobSpec;
use pdpa_suite::sim::{CostModel, SimTime};
use pdpa_suite::trace::{render_ascii, to_paraver, RenderOptions};

const GOLDEN_ASCII: &str = include_str!("golden/golden_ascii.txt");
const GOLDEN_PRV: &str = include_str!("golden/golden.prv");

#[test]
fn trace_through_the_observer_bridge_matches_the_golden_fixtures() {
    let jobs = vec![
        JobSpec::new(SimTime::ZERO, apsi()),
        JobSpec::new(SimTime::from_secs(3.0), bt_a()),
    ];
    let config = EngineConfig {
        noise_sigma: 0.0,
        cost: CostModel::free(),
        cpus: 32,
        ..EngineConfig::default()
    }
    .with_trace()
    .with_seed(7);
    let r = Engine::new(config).run(jobs, Box::new(Equipartition::default()));
    let trace = r.trace.expect("trace collection enabled");

    let ascii = render_ascii(
        &trace,
        &RenderOptions {
            width: 80,
            cpu_stride: 4,
        },
    );
    assert_eq!(ascii, GOLDEN_ASCII, "ASCII execution view drifted");

    let prv = to_paraver(&trace);
    assert_eq!(prv, GOLDEN_PRV, "Paraver trace drifted");
}
