//! Property-based tests of the SWF trace format and workload generator.

use proptest::prelude::*;

use pdpa_suite::apps::{paper_app, AppClass};
use pdpa_suite::qs::{swf, GeneratorConfig, JobSpec};
use pdpa_suite::sim::SimTime;

fn arb_class() -> impl Strategy<Value = AppClass> {
    prop_oneof![
        Just(AppClass::Swim),
        Just(AppClass::BtA),
        Just(AppClass::Hydro2d),
        Just(AppClass::Apsi),
    ]
}

proptest! {
    /// Any workload survives an SWF write/parse round trip with class,
    /// request, and submission order intact.
    #[test]
    fn swf_round_trips(
        jobs in proptest::collection::vec(
            (arb_class(), 0.0f64..1000.0, 1usize..=60),
            0..40,
        )
    ) {
        let original: Vec<JobSpec> = jobs
            .iter()
            .map(|&(class, submit, req)| {
                JobSpec::new(SimTime::from_secs(submit), paper_app(class).with_request(req))
            })
            .collect();
        let text = swf::write_swf(&original);
        let parsed = swf::parse_swf(&text).unwrap();
        prop_assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(&parsed) {
            prop_assert_eq!(a.app.class, b.app.class);
            prop_assert_eq!(a.app.request, b.app.request);
            prop_assert!((a.submit.as_secs() - b.submit.as_secs()).abs() < 0.01);
        }
    }

    /// The generator always produces sorted submissions inside the window,
    /// with positive requests, for any valid configuration.
    #[test]
    fn generator_output_is_well_formed(
        load in 0.1f64..1.5,
        seed in 0u64..1000,
        duration in 50.0f64..500.0,
    ) {
        let config = GeneratorConfig {
            composition: vec![(AppClass::BtA, 0.5), (AppClass::Apsi, 0.5)],
            load,
            cpus: 60,
            duration_secs: duration,
            tuned: true,
        };
        let jobs = pdpa_suite::qs::generate(&config, seed);
        for pair in jobs.windows(2) {
            prop_assert!(pair[0].submit <= pair[1].submit);
        }
        for job in &jobs {
            prop_assert!(job.submit.as_secs() < duration);
            prop_assert!(job.app.request >= 1);
        }
    }

    /// Corrupted SWF lines never panic the parser — they produce errors.
    #[test]
    fn swf_parser_is_total(line in "[ -~]{0,120}") {
        // Any printable garbage: must return Ok (if it happens to parse) or
        // Err, never panic.
        let _ = swf::parse_swf(&line);
    }
}
