//! The harness's parallel sweeps must be *byte-identical* to sequential
//! runs: the acceptance bar for replacing `expt-all`'s subprocess fan-out
//! with in-process worker threads is that every experiment table comes out
//! exactly the same.

use pdpa_bench::{
    experiments, run_cell, run_cell_seq, run_figure, run_figure_seq, PolicyKind, SEEDS,
};
use pdpa_qs::Workload;

#[test]
fn parallel_cell_matches_sequential() {
    let par = run_cell(Workload::W1, true, PolicyKind::Pdpa, 0.6, &SEEDS);
    let seq = run_cell_seq(Workload::W1, true, PolicyKind::Pdpa, 0.6, &SEEDS);
    assert_eq!(par, seq);
}

#[test]
fn parallel_figure_renders_byte_identical_to_sequential() {
    // The full Fig. 4 grid: 4 policies × 3 loads × 3 seeds = 36 engine
    // runs, fanned out over worker threads versus strictly in order.
    let par = run_figure(Workload::W1, true);
    let seq = run_figure_seq(Workload::W1, true);
    let par_text = experiments::render_figure(&par, Workload::W1, "Fig. 4 — workload 1");
    let seq_text = experiments::render_figure(&seq, Workload::W1, "Fig. 4 — workload 1");
    assert!(!par_text.is_empty());
    assert_eq!(par_text, seq_text, "parallel output must be byte-identical");
}
