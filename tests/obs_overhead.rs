//! Guard: observability and profiling must be zero-cost when disabled.
//!
//! `Engine::run` is the production path (it hands a `NullObserver` to
//! `run_observed`); this pins the contract that calling `run_observed`
//! with a disabled observer costs the same as `run` — i.e. nobody later
//! adds per-run setup (event buffers, allocation, clock reads) that taxes
//! unobserved runs. The same ≤2% bound covers the sharded engine and the
//! disabled `pdpa-prof` instrumentation path (`Instrumentation::none()`),
//! whose touch points are one branch each. Paired, interleaved,
//! median-of-N so machine noise cancels; a small absolute slack keeps
//! sub-millisecond jitter from flaking CI.

use std::sync::Arc;
use std::time::Instant;

use pdpa_suite::core::Pdpa;
use pdpa_suite::engine::{Engine, EngineConfig, Instrumentation};
use pdpa_suite::obs::{NullObserver, RecordingObserver};
use pdpa_suite::qs::Workload;
use pdpa_suite::watch::{LiveTap, RunMeta, StatusServer, TapObserver};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

#[test]
fn disabled_observer_costs_within_two_percent_of_plain_run() {
    let engine = Engine::new(EngineConfig::default().with_seed(42));
    let jobs = || Workload::W2.build(1.0, 42);
    let policy = || Box::new(Pdpa::paper_default());

    // Warm up allocators and caches before timing anything.
    let warm = engine.run(jobs(), policy());
    assert!(warm.completed_all);

    let rounds = 15;
    let mut plain = Vec::with_capacity(rounds);
    let mut nulled = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        let r = engine.run(jobs(), policy());
        plain.push(t.elapsed().as_secs_f64());
        assert!(r.completed_all);

        let t = Instant::now();
        let r = engine.run_observed(jobs(), policy(), &mut NullObserver);
        nulled.push(t.elapsed().as_secs_f64());
        assert!(r.completed_all);
    }

    let (p, n) = (median(plain), median(nulled));
    assert!(
        n <= p * 1.02 + 2e-3,
        "disabled-observer run regressed: plain {p:.6}s vs NullObserver {n:.6}s"
    );
}

#[test]
fn disabled_instrumentation_costs_within_two_percent_of_plain_run() {
    let engine = Engine::new(EngineConfig::default().with_seed(42));
    let jobs = || Workload::W2.build(1.0, 42);
    let policy = || Box::new(Pdpa::paper_default());

    let warm = engine.run(jobs(), policy());
    assert!(warm.completed_all);

    let rounds = 15;
    let mut plain = Vec::with_capacity(rounds);
    let mut instrumented = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        let r = engine.run(jobs(), policy());
        plain.push(t.elapsed().as_secs_f64());
        assert!(r.completed_all);

        let t = Instant::now();
        let r =
            engine.run_instrumented(jobs(), policy(), &mut NullObserver, Instrumentation::none());
        instrumented.push(t.elapsed().as_secs_f64());
        assert!(r.completed_all && r.profile.is_none() && r.watchdog.is_none());
    }

    let (p, n) = (median(plain), median(instrumented));
    assert!(
        n <= p * 1.02 + 2e-3,
        "disabled-instrumentation run regressed: plain {p:.6}s vs Instrumentation::none() {n:.6}s"
    );
}

#[test]
fn sharded_disabled_observer_and_profiler_cost_within_two_percent() {
    let engine = Engine::new(EngineConfig::default().with_seed(42));
    let jobs = || Workload::W2.build(1.0, 42);
    let policy = || Box::new(Pdpa::paper_default());
    let shards = 2;
    let epoch = pdpa_suite::engine::shard::DEFAULT_EPOCH_SECS;

    let warm = engine.run_sharded(jobs(), policy(), shards);
    assert!(warm.completed_all);

    let rounds = 15;
    let mut plain = Vec::with_capacity(rounds);
    let mut instrumented = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        let r = engine.run_sharded(jobs(), policy(), shards);
        plain.push(t.elapsed().as_secs_f64());
        assert!(r.completed_all);

        let t = Instant::now();
        let r = engine.run_sharded_instrumented(
            jobs(),
            policy(),
            shards,
            epoch,
            &mut NullObserver,
            Instrumentation::none(),
        );
        instrumented.push(t.elapsed().as_secs_f64());
        assert!(r.completed_all && r.profile.is_none() && r.watchdog.is_none());
    }

    let (p, n) = (median(plain), median(instrumented));
    assert!(
        n <= p * 1.02 + 2e-3,
        "sharded disabled-instrumentation run regressed: \
         plain {p:.6}s vs Instrumentation::none() {n:.6}s"
    );
}

/// The `--serve` bound: a recording run with the full live-observability
/// stack attached (tap mirror, observer tee, bound TCP server with no
/// clients) must stay within 2% of a plain recording run. This is the
/// realistic serving configuration — the tap's atomics and try-lock ring
/// are the only per-event cost, and the server threads idle in accept().
#[test]
fn live_tap_and_idle_server_cost_within_two_percent_of_recording_run() {
    let engine = Engine::new(EngineConfig::default().with_seed(42));
    let jobs = || Workload::W2.build(1.0, 42);
    let policy = || Box::new(Pdpa::paper_default());

    let mut warm_rec = RecordingObserver::new();
    let warm = engine.run_observed(jobs(), policy(), &mut warm_rec);
    assert!(warm.completed_all);

    let rounds = 15;
    let mut plain = Vec::with_capacity(rounds);
    let mut tapped = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut recorder = RecordingObserver::new();
        let t = Instant::now();
        let r = engine.run_observed(jobs(), policy(), &mut recorder);
        plain.push(t.elapsed().as_secs_f64());
        assert!(r.completed_all);

        let tap = LiveTap::new(RunMeta {
            policy: "PDPA".into(),
            trace: "w2".into(),
            shards: 1,
            jobs_total: jobs().len() as u64,
        });
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
        let mut recorder = RecordingObserver::new();
        let t = Instant::now();
        let r = {
            let mut observer = TapObserver::new(&mut recorder, Arc::clone(&tap));
            engine.run_instrumented(
                jobs(),
                policy(),
                &mut observer,
                Instrumentation::none().with_tap(Arc::clone(&tap) as _),
            )
        };
        tapped.push(t.elapsed().as_secs_f64());
        assert!(r.completed_all);
        tap.mark_done();
        server.shutdown();
    }

    let (p, n) = (median(plain), median(tapped));
    assert!(
        n <= p * 1.02 + 2e-3,
        "--serve stack regressed the run: plain recording {p:.6}s vs tap+server {n:.6}s"
    );
}
