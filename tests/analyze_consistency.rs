//! The analyzer's migration accounting must agree with the engine.
//!
//! `pdpa-analyze` recomputes Table-2 migration counts by replaying the
//! recorded `cpu` event stream; the engine keeps its own counters while
//! scheduling ([`RunResult::total_migrations`] plus the gang-rotation
//! churn counter [`RunResult::quantum_rotations`]). The two sides are
//! produced by completely different code paths — the engine counts as it
//! moves jobs, the analyzer reconstructs placements from `CpuAssigned`
//! transitions — so equality per workload/policy cell is a strong check
//! that the event stream carries full allocation information and that the
//! analyzer's batch/handoff rules match the engine's semantics. The rule
//! is uniform across every sharing model:
//!
//! ```text
//! replayed == total_migrations() + quantum_rotations
//! ```
//!
//! Space-shared runs have zero rotations; gang runs have zero Table-2
//! migrations (rotation reclaims the same footprint every slot) but heavy
//! rotation churn, which the engine now counts with exactly the replay's
//! hand-off rule.

use pdpa_analyze::stability::migration_stats;
use pdpa_suite::obs::RecordingObserver;
use pdpa_suite::policies::GangScheduler;
use pdpa_suite::prelude::*;

/// Runs one Table-2 cell with a recorder attached and returns the engine's
/// own count (migrations + rotations) next to the analyzer's replayed one.
fn replay_cell(
    workload: Workload,
    load: f64,
    seed: u64,
    policy: Box<dyn SchedulingPolicy>,
) -> (String, u64, u64) {
    let jobs = workload.build(load, seed);
    let mut recorder = RecordingObserver::new();
    // The quantum clock that drives time-shared placement only runs under
    // the trace collector, so Table-2 cells are always traced runs.
    let config = EngineConfig::default()
        .with_seed(seed ^ 0xA5A5)
        .with_trace();
    let result = Engine::new(config).run_observed(jobs, policy, &mut recorder);
    assert!(
        result.completed_all,
        "{} on {workload} did not drain",
        result.policy
    );
    let replayed = migration_stats(recorder.events()).migrations();
    (
        result.policy.to_string(),
        result.total_migrations() + result.quantum_rotations,
        replayed,
    )
}

/// Every Table-2 cell: the analyzer's replay equals the engine counters
/// for every sharing model — space-shared (batch-growth rule),
/// time-shared (handoff rule), and gang (rotation-churn rule) alike, the
/// tournament entrants included.
#[test]
fn replayed_migrations_match_the_engine_per_cell() {
    let policies: &[fn() -> Box<dyn SchedulingPolicy>] = &[
        || Box::new(IrixLike::paper_default()),
        || Box::new(Pdpa::paper_default()),
        || Box::new(Equipartition::default()),
        || Box::new(EqualEfficiency::paper_default()),
        || Box::new(GangScheduler::paper_comparable()),
        || Box::new(HeSrpt::default()),
        || Box::new(OptSplit::default()),
        || Box::new(LearnedAlloc::default()),
    ];
    for workload in [Workload::W1, Workload::W3] {
        for make in policies {
            let (policy, engine, replayed) = replay_cell(workload, 1.0, 42, make());
            assert_eq!(
                replayed, engine,
                "{policy} on {workload}: analyzer replayed {replayed} \
                 migrations but the engine counted {engine}"
            );
        }
    }
}

/// The agreement survives a different seed and partial load — the replay
/// rule is structural, not tuned to one trajectory.
#[test]
fn replayed_migrations_match_across_seeds_and_loads() {
    for seed in [7, 1234] {
        let (policy, engine, replayed) =
            replay_cell(Workload::W2, 0.6, seed, Box::new(Pdpa::paper_default()));
        assert_eq!(
            replayed, engine,
            "{policy} on w2 seed {seed}: {replayed} != {engine}"
        );
    }
}

/// IRIX actually migrates in these cells (Table 2's headline row), so the
/// equality above is not vacuously comparing zeros.
#[test]
fn the_cross_check_is_not_vacuous() {
    let (_, engine, replayed) =
        replay_cell(Workload::W1, 1.0, 42, Box::new(IrixLike::paper_default()));
    assert!(engine > 100, "IRIX should migrate heavily, got {engine}");
    assert_eq!(replayed, engine);
}

/// Gang rotation is occupant churn, not Table-2 migration: the Table-2
/// counter stays at zero (each gang reclaims the same processor footprint
/// every slot) while the rotation counter records the per-quantum
/// hand-offs the stream shows — and matches the analyzer's replay exactly.
#[test]
fn gang_rotation_is_counted_as_churn_not_migration() {
    let jobs = Workload::W1.build(1.0, 42);
    let mut recorder = RecordingObserver::new();
    let config = EngineConfig::default().with_seed(42 ^ 0xA5A5).with_trace();
    let result = Engine::new(config).run_observed(
        jobs,
        Box::new(GangScheduler::paper_comparable()),
        &mut recorder,
    );
    assert!(result.completed_all);
    assert_eq!(
        result.total_migrations(),
        0,
        "gang rotation is not a Table-2 migration"
    );
    assert!(
        result.quantum_rotations > 1_000,
        "rotation churn should be heavy, got {}",
        result.quantum_rotations
    );
    let replayed = migration_stats(recorder.events()).migrations();
    assert_eq!(replayed, result.quantum_rotations);
}
