//! The analyzer's migration accounting must agree with the engine.
//!
//! `pdpa-analyze` recomputes Table-2 migration counts by replaying the
//! recorded `cpu` event stream; the engine keeps its own counter while
//! scheduling ([`RunResult::total_migrations`]). The two are produced by
//! completely different code paths — the engine counts as it moves jobs,
//! the analyzer reconstructs placements from `CpuAssigned` transitions —
//! so equality per workload/policy cell is a strong check that the event
//! stream carries full allocation information and that the analyzer's
//! batch/handoff rules match the engine's semantics.

use pdpa_analyze::stability::migration_stats;
use pdpa_suite::obs::RecordingObserver;
use pdpa_suite::policies::GangScheduler;
use pdpa_suite::prelude::*;

/// Runs one Table-2 cell with a recorder attached and returns the engine's
/// own migration count next to the analyzer's replayed one.
fn replay_cell(
    workload: Workload,
    load: f64,
    seed: u64,
    policy: Box<dyn SchedulingPolicy>,
) -> (String, u64, u64) {
    let jobs = workload.build(load, seed);
    let mut recorder = RecordingObserver::new();
    // The quantum clock that drives time-shared placement only runs under
    // the trace collector, so Table-2 cells are always traced runs.
    let config = EngineConfig::default()
        .with_seed(seed ^ 0xA5A5)
        .with_trace();
    let result = Engine::new(config).run_observed(jobs, policy, &mut recorder);
    assert!(
        result.completed_all,
        "{} on {workload} did not drain",
        result.policy
    );
    let replayed = migration_stats(recorder.events()).migrations();
    (
        result.policy.to_string(),
        result.total_migrations(),
        replayed,
    )
}

/// Every Table-2 cell: the analyzer's replay equals the engine counter for
/// the space-sharing policies (batch-growth rule) and the time-sharing
/// policies (handoff rule) alike.
#[test]
fn replayed_migrations_match_the_engine_per_cell() {
    let policies: &[fn() -> Box<dyn SchedulingPolicy>] = &[
        || Box::new(IrixLike::paper_default()),
        || Box::new(Pdpa::paper_default()),
        || Box::new(Equipartition::default()),
        || Box::new(EqualEfficiency::paper_default()),
    ];
    for workload in [Workload::W1, Workload::W3] {
        for make in policies {
            let (policy, engine, replayed) = replay_cell(workload, 1.0, 42, make());
            assert_eq!(
                replayed, engine,
                "{policy} on {workload}: analyzer replayed {replayed} \
                 migrations but the engine counted {engine}"
            );
        }
    }
}

/// The agreement survives a different seed and partial load — the replay
/// rule is structural, not tuned to one trajectory.
#[test]
fn replayed_migrations_match_across_seeds_and_loads() {
    for seed in [7, 1234] {
        let (policy, engine, replayed) =
            replay_cell(Workload::W2, 0.6, seed, Box::new(Pdpa::paper_default()));
        assert_eq!(
            replayed, engine,
            "{policy} on w2 seed {seed}: {replayed} != {engine}"
        );
    }
}

/// IRIX actually migrates in these cells (Table 2's headline row), so the
/// equality above is not vacuously comparing zeros.
#[test]
fn the_cross_check_is_not_vacuous() {
    let (_, engine, replayed) =
        replay_cell(Workload::W1, 1.0, 42, Box::new(IrixLike::paper_default()));
    assert!(engine > 100, "IRIX should migrate heavily, got {engine}");
    assert_eq!(replayed, engine);
}

/// Gang scheduling is the deliberate exception: the engine's Table-2
/// counter treats quantum rotation as context switching (zero migrations
/// — each gang reclaims the same processor footprint every slot), while
/// the analyzer's handoff rule sees every occupant change. The replay must
/// therefore report heavy rotation where the engine reports none; if the
/// two ever agree on a traced gang run, one of the counters broke.
#[test]
fn gang_rotation_is_handoffs_not_migrations() {
    let (_, engine, replayed) = replay_cell(
        Workload::W1,
        1.0,
        42,
        Box::new(GangScheduler::paper_comparable()),
    );
    assert_eq!(engine, 0, "gang rotation is not an engine migration");
    assert!(
        replayed > 1_000,
        "the stream should show per-quantum occupant churn, got {replayed}"
    );
}
