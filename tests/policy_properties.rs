//! Property-based tests of the scheduling policies through the engine:
//! random workloads, every policy, structural invariants.

use proptest::prelude::*;

use pdpa_suite::prelude::*;
use pdpa_suite::qs::GeneratorConfig;

fn arb_mix() -> impl Strategy<Value = Vec<(AppClass, f64)>> {
    prop_oneof![
        Just(vec![(AppClass::Swim, 0.5), (AppClass::BtA, 0.5)]),
        Just(vec![(AppClass::BtA, 0.5), (AppClass::Hydro2d, 0.5)]),
        Just(vec![(AppClass::BtA, 0.5), (AppClass::Apsi, 0.5)]),
        Just(vec![
            (AppClass::Swim, 0.25),
            (AppClass::BtA, 0.25),
            (AppClass::Hydro2d, 0.25),
            (AppClass::Apsi, 0.25),
        ]),
    ]
}

fn build_policy(which: usize) -> Box<dyn SchedulingPolicy> {
    match which % 4 {
        0 => Box::new(IrixLike::paper_default()),
        1 => Box::new(Equipartition::default()),
        2 => Box::new(EqualEfficiency::paper_default()),
        _ => Box::new(Pdpa::paper_default()),
    }
}

proptest! {
    // Full simulations are fast (~ms) but cap cases to keep the suite snappy.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random workload drains completely under every policy, with
    /// consistent per-job timestamps — no starvation, no stuck jobs, no
    /// time travel.
    #[test]
    fn all_policies_drain_all_workloads(
        mix in arb_mix(),
        load in 0.3f64..1.2,
        seed in 0u64..10_000,
        which in 0usize..4,
    ) {
        let config = GeneratorConfig {
            composition: mix,
            load,
            cpus: 60,
            duration_secs: 150.0,
            tuned: true,
        };
        let jobs = pdpa_suite::qs::generate(&config, seed);
        let n = jobs.len();
        let result = Engine::new(EngineConfig::default().with_seed(seed))
            .run(jobs, build_policy(which));
        prop_assert!(result.completed_all, "jobs stuck under policy {}", which % 4);
        prop_assert_eq!(result.summary.jobs(), n);
        for o in result.summary.outcomes() {
            prop_assert!(o.submit <= o.start && o.start <= o.end);
        }
    }

    /// PDPA never lets a job's average allocation exceed its request.
    #[test]
    fn pdpa_respects_requests(
        load in 0.3f64..1.0,
        seed in 0u64..10_000,
    ) {
        let jobs = Workload::W4.build(load, seed);
        let requests: Vec<(AppClass, usize)> =
            jobs.iter().map(|j| (j.app.class, j.app.request)).collect();
        let result = Engine::new(EngineConfig::default().with_seed(seed))
            .run(jobs, Box::new(Pdpa::paper_default()));
        prop_assert!(result.completed_all);
        for (class, avg) in &result.avg_alloc_by_class {
            let max_request = requests
                .iter()
                .filter(|(c, _)| c == class)
                .map(|&(_, r)| r)
                .max()
                .unwrap_or(0);
            prop_assert!(
                *avg <= max_request as f64 + 1e-9,
                "{class}: avg {avg} exceeds request {max_request}"
            );
        }
    }

    /// Untuned apsi always ends up small under PDPA, whatever the seed —
    /// the search is robust, not luck.
    #[test]
    fn pdpa_always_shrinks_untuned_apsi(seed in 0u64..10_000) {
        let jobs = Workload::W3.build_with_tuning(0.6, seed, false);
        prop_assume!(jobs.iter().any(|j| j.app.class == AppClass::Apsi));
        let result = Engine::new(EngineConfig::default().with_seed(seed))
            .run(jobs, Box::new(Pdpa::paper_default()));
        prop_assert!(result.completed_all);
        let apsi = result.avg_alloc_by_class[&AppClass::Apsi];
        prop_assert!(apsi < 10.0, "apsi averaged {apsi:.1} processors");
    }
}
