//! Live-observability contracts, end to end through the facade.
//!
//! Two guarantees the `pdpa replay --serve` stack rests on:
//!
//! 1. **Determinism**: attaching a [`TapObserver`] (the `--serve` tee)
//!    must not change the recorded decision-event stream by a single
//!    byte — the tap is a mirror, nothing feeds back into the engine.
//! 2. **Liveness**: a status server over a real engine run answers the
//!    protocol queries, and its terminal `status` totals agree with the
//!    engine's own `RunResult`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pdpa_suite::core::Pdpa;
use pdpa_suite::engine::{Engine, EngineConfig, Instrumentation};
use pdpa_suite::obs::{write_text_stream, RecordingObserver};
use pdpa_suite::qs::Workload;
use pdpa_suite::watch::{
    LiveTap, Request, RequestKind, Response, ResponseBody, RunMeta, RunState, StatusServer,
    TapObserver,
};

#[test]
fn decision_stream_is_bit_identical_with_and_without_the_tap() {
    let engine = Engine::new(EngineConfig::default().with_seed(42));
    let jobs = || Workload::W2.build(1.0, 42);
    let policy = || Box::new(Pdpa::paper_default());

    let mut plain_rec = RecordingObserver::new();
    let plain = engine.run_observed(jobs(), policy(), &mut plain_rec);
    assert!(plain.completed_all);

    let tap = LiveTap::new(RunMeta {
        policy: "PDPA".into(),
        trace: "w2".into(),
        shards: 1,
        jobs_total: jobs().len() as u64,
    });
    let mut tapped_rec = RecordingObserver::new();
    let tapped = {
        let mut observer = TapObserver::new(&mut tapped_rec, Arc::clone(&tap));
        engine.run_instrumented(
            jobs(),
            policy(),
            &mut observer,
            Instrumentation::none().with_tap(Arc::clone(&tap) as _),
        )
    };
    assert!(tapped.completed_all);

    let plain_stream = write_text_stream(&plain_rec.take_events());
    let tapped_stream = write_text_stream(&tapped_rec.take_events());
    assert_eq!(
        plain_stream, tapped_stream,
        "the live tap perturbed the decision-event stream"
    );

    // And the tap's mirror agrees with the run it watched.
    let status = tap.status_body();
    assert_eq!(status.jobs_total, jobs().len() as u64);
    assert_eq!(status.jobs_submitted, jobs().len() as u64);
    assert_eq!(
        status.jobs_finished as usize,
        tapped.summary.outcomes().len()
    );
    assert_eq!(
        status.events_published as usize,
        plain_stream.lines().count()
    );
}

fn query(addr: std::net::SocketAddr, requests: &[Request]) -> Vec<Response> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    let mut out = Vec::new();
    for request in requests {
        writer
            .write_all(format!("{}\n", request.to_line()).as_bytes())
            .expect("writes");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        out.push(Response::parse_line(line.trim_end()).expect("parses"));
    }
    out
}

#[test]
fn status_server_over_a_real_run_reports_the_engine_totals() {
    let jobs = Workload::W2.build(1.0, 42);
    let n_jobs = jobs.len() as u64;
    let tap = LiveTap::new(RunMeta {
        policy: "PDPA".into(),
        trace: "w2".into(),
        shards: 1,
        jobs_total: n_jobs,
    });
    let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&tap)).expect("binds");
    let addr = server.local_addr();

    // Drive the engine on another thread, exactly as the CLI wires it.
    let run_tap = Arc::clone(&tap);
    let run = std::thread::spawn(move || {
        let engine = Engine::new(EngineConfig::default().with_seed(42));
        let mut recorder = RecordingObserver::new();
        let result = {
            let mut observer = TapObserver::new(&mut recorder, Arc::clone(&run_tap));
            engine.run_instrumented(
                jobs,
                Box::new(Pdpa::paper_default()),
                &mut observer,
                Instrumentation::none().with_tap(Arc::clone(&run_tap) as _),
            )
        };
        run_tap.mark_done();
        result
    });

    // Poll like `pdpa watch --follow` until the terminal state shows up.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last = None;
    while Instant::now() < deadline {
        let responses = query(
            addr,
            &[
                Request {
                    id: 1,
                    kind: RequestKind::Status,
                },
                Request {
                    id: 2,
                    kind: RequestKind::Progress,
                },
                Request {
                    id: 3,
                    kind: RequestKind::Tail { n: 8 },
                },
            ],
        );
        assert_eq!(responses.len(), 3);
        let ResponseBody::Status(status) = &responses[0].body else {
            panic!("expected status, got {:?}", responses[0].body);
        };
        let done = status.state == RunState::Done;
        last = Some(responses);
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let result = run.join().expect("engine thread");
    assert!(result.completed_all);

    let responses = last.expect("polled at least once");
    let ResponseBody::Status(status) = &responses[0].body else {
        unreachable!()
    };
    assert_eq!(status.state, RunState::Done, "run never reached done");
    assert_eq!(status.jobs_total, n_jobs);
    assert_eq!(status.jobs_submitted, n_jobs);
    assert_eq!(
        status.jobs_finished as usize,
        result.summary.outcomes().len()
    );
    assert!(status.watchdog.is_none());
    let ResponseBody::Tail(tail) = &responses[2].body else {
        panic!("expected tail, got {:?}", responses[2].body);
    };
    assert!(!tail.events.is_empty(), "tail of a finished run is empty");

    server.wait_for_final_query(Duration::from_secs(10));
    server.shutdown();
}
