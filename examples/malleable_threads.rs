//! PDPA driving real threads: the NthLib loop on live wall-clock time.
//!
//! A crew of worker threads executes an iterative parallel region whose
//! emulated speedup saturates; the SelfAnalyzer times every iteration and
//! PDPA resizes the crew between iterations. Watch the allocation walk from
//! the full request down to the efficiency knee.
//!
//! ```sh
//! cargo run --release --example malleable_threads
//! ```

use std::sync::Arc;
use std::time::Duration;

use pdpa_suite::nthlib::{Crew, CurveKernel, IterativeRegion, LocalRm};
use pdpa_suite::prelude::*;

/// A hydro2d-like shape scaled to an 8-worker crew: the 0.7-efficiency knee
/// sits near 4 workers.
fn saturating_curve(n: usize) -> f64 {
    match n {
        0 => 0.0,
        1 => 1.0,
        2 => 1.9,
        3 => 2.75,
        4 => 3.2,
        5 => 3.45,
        6 => 3.6,
        7 => 3.7,
        _ => 3.75,
    }
}

fn main() {
    let workers = 8;
    let crew = Crew::new(workers);
    let mut rm = LocalRm::new(Box::new(Pdpa::paper_default()), workers);
    let analyzer = SelfAnalyzer::new(SelfAnalyzerConfig::default());
    let mut region = IterativeRegion::register(&mut rm, workers, analyzer);

    println!("crew of {workers} real threads, kernel emulating a saturating speedup curve\n");
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>8}",
        "iter", "workers", "wall (ms)", "speedup", "eff"
    );

    let task = Arc::new(CurveKernel::new(
        Duration::from_millis(120),
        saturating_curve,
    ));
    let outcomes = region.run(&crew, &mut rm, task, 16);

    for o in &outcomes {
        match o.estimate {
            Some(e) => println!(
                "{:<6} {:>8} {:>10.1} {:>10.2} {:>8.2}",
                o.index,
                o.workers,
                o.wall.as_secs_f64() * 1e3,
                e.speedup,
                e.efficiency
            ),
            None => println!(
                "{:<6} {:>8} {:>10.1} {:>10} {:>8}",
                o.index,
                o.workers,
                o.wall.as_secs_f64() * 1e3,
                "baseline",
                "-"
            ),
        }
    }

    let last = outcomes.last().expect("iterations ran");
    println!(
        "\nPDPA settled on {} of {workers} workers — the largest crew that keeps\n\
         measured efficiency above the 0.7 target for this curve.",
        last.workers
    );
}
