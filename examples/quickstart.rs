//! Quickstart: run one paper workload under PDPA and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pdpa_suite::prelude::*;

fn main() {
    // Workload 3 (Table 1): half the load is scalable bt.A, half is apsi,
    // which does not scale at all. Loads and seeds are reproducible.
    let jobs = Workload::W3.build(0.8, 42);
    println!(
        "workload 3 at 80 % load: {} jobs submitted over 300 s\n",
        jobs.len()
    );

    // Run it under PDPA with the paper's parameters (target efficiency 0.7,
    // high efficiency 0.9, step 4, default multiprogramming level 4).
    let result = Engine::new(EngineConfig::default()).run(jobs, Box::new(Pdpa::paper_default()));
    assert!(result.completed_all);

    println!("policy: {}", result.policy);
    println!("makespan: {:.0} s", result.summary.makespan_secs());
    println!("peak multiprogramming level: {}", result.max_ml);
    println!();
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>10}",
        "class", "jobs", "response(s)", "execution(s)", "avg procs"
    );
    for class in [AppClass::BtA, AppClass::Apsi] {
        let avgs = result.summary.class_averages(class).expect("class ran");
        println!(
            "{:<10} {:>6} {:>12.1} {:>12.1} {:>10.1}",
            class.name(),
            avgs.count,
            avgs.avg_response_secs,
            avgs.avg_execution_secs,
            result.avg_alloc_by_class[&class],
        );
    }

    // The headline mechanism: PDPA measured that apsi cannot use more than
    // two processors and raised the multiprogramming level instead of
    // letting the queue rot behind a fixed level of four.
    println!(
        "\nPDPA held apsi at {:.1} processors on average and ran up to {} jobs at once.",
        result.avg_alloc_by_class[&AppClass::Apsi],
        result.max_ml
    );
}
