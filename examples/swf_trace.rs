//! Standard Workload Format round trip: export a generated workload, read
//! it back, and replay it under two policies.
//!
//! The paper's workloads are distributed as SWF trace files (Feitelson's
//! standard) so that every policy sees the identical submission sequence —
//! that repeatability is the whole point of the NANOS QS.
//!
//! ```sh
//! cargo run --release --example swf_trace
//! ```

use pdpa_suite::prelude::*;
use pdpa_suite::qs::swf;

fn main() {
    // Generate workload 2 at 80 % load and serialize it to SWF.
    let original = Workload::W2.build(0.8, 7);
    let text = swf::write_swf(&original);
    println!("--- first lines of the SWF trace ---");
    for line in text.lines().take(8) {
        println!("{line}");
    }
    println!("--- ({} jobs total) ---\n", original.len());

    // Read it back: the replayed workload is identical.
    let replayed = swf::parse_swf(&text).expect("own output parses");
    assert_eq!(replayed.len(), original.len());
    for (a, b) in original.iter().zip(&replayed) {
        assert_eq!(a.app.class, b.app.class);
        assert_eq!(a.app.request, b.app.request);
    }

    // Replay the very same submission sequence under two policies — the
    // repeatable comparison the queuing system exists for.
    for policy in [
        Box::new(Equipartition::default()) as Box<dyn SchedulingPolicy>,
        Box::new(Pdpa::paper_default()),
    ] {
        let name = policy.name();
        let result =
            Engine::new(EngineConfig::default()).run(swf::parse_swf(&text).unwrap(), policy);
        println!(
            "{:<16} makespan {:>5.0} s, mean response {:>5.0} s, peak ML {}",
            name,
            result.summary.makespan_secs(),
            result.summary.overall_avg_response_secs(),
            result.max_ml
        );
    }
}
