//! Two applications, real threads, one PDPA resource manager.
//!
//! The complete Fig. 1 loop with *two* concurrent applications: each runs
//! its iterative region on its own worker crew in its own OS thread; both
//! report wall-clock measurements to one shared resource manager running
//! PDPA, which splits the machine's workers between them by measured
//! efficiency — the scalable application keeps its workers, the saturating
//! one is trimmed to its knee.
//!
//! ```sh
//! cargo run --release --example multi_region_threads
//! ```

use std::sync::{Arc, Mutex};
use std::time::Duration;

use pdpa_suite::nthlib::{Crew, CurveKernel, LocalRm, Task};
use pdpa_suite::prelude::*;

fn drive(
    name: &'static str,
    rm: Arc<Mutex<LocalRm>>,
    task: Arc<dyn Task>,
    request: usize,
    iterations: u32,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let crew = Crew::new(8);
        let job = rm.lock().unwrap().register(request);
        let mut analyzer = SelfAnalyzer::new(SelfAnalyzerConfig::default());
        for i in 0..iterations {
            let granted = rm.lock().unwrap().allocation(job).max(1);
            let workers = analyzer
                .effective_procs(granted)
                .clamp(1, crew.max_workers());
            let wall = crew.run(task.clone(), workers);
            let sample =
                analyzer.record_iteration(workers, SimDuration::from_secs(wall.as_secs_f64()));
            if let Some(s) = sample {
                rm.lock().unwrap().report(job, s);
                println!(
                    "{name}: iter {i:>2} on {workers} workers  {:>6.1} ms  eff {:.2}",
                    wall.as_secs_f64() * 1e3,
                    s.efficiency
                );
            } else {
                println!(
                    "{name}: iter {i:>2} on {workers} workers  {:>6.1} ms  (baseline)",
                    wall.as_secs_f64() * 1e3
                );
            }
        }
        rm.lock().unwrap().complete(job);
    })
}

fn main() {
    println!("8 shared workers, two concurrent applications under one PDPA manager\n");
    let rm = Arc::new(Mutex::new(LocalRm::new(Box::new(Pdpa::paper_default()), 8)));

    let scalable = Arc::new(CurveKernel::new(Duration::from_millis(120), |n| n as f64));
    let saturating = Arc::new(CurveKernel::new(Duration::from_millis(120), |n| match n {
        0 => 0.0,
        1 => 1.0,
        2 => 1.8,
        _ => 2.0,
    }));

    let a = drive("scalable  ", Arc::clone(&rm), scalable, 6, 12);
    let b = drive("saturating", Arc::clone(&rm), saturating, 6, 12);
    a.join().expect("scalable region");
    b.join().expect("saturating region");

    println!(
        "\nPDPA measured both applications live and split the workers by\n\
         efficiency: the saturating region ends near its 2-worker knee, the\n\
         scalable region keeps the rest."
    );
}
