//! MPI+OpenMP hybrid applications under PDPA — the paper's §6 future work.
//!
//! A rigid 8-rank MPI application with a 2:1 load imbalance becomes
//! malleable once each rank runs OpenMP threads; PDPA then schedules it
//! like any other iterative application, and the per-rank processor
//! control (`RankStrategy::Balanced`) converts the imbalance into speedup
//! instead of barrier wait.
//!
//! ```sh
//! cargo run --release --example hybrid_mpi
//! ```

use std::sync::Arc;

use pdpa_suite::apps::Amdahl;
use pdpa_suite::hybrid::{distribute, iteration_time, HybridSpec, HybridSpeedup, RankStrategy};
use pdpa_suite::prelude::*;

fn main() {
    // Eight ranks; rank 0 carries twice the load.
    let mut loads = vec![SimDuration::from_secs(2.0)];
    loads.extend(std::iter::repeat_n(SimDuration::from_secs(1.0), 7));
    let spec = HybridSpec::new(
        loads,
        Arc::new(Amdahl::new(0.02)),
        SimDuration::from_millis(20.0),
    );

    println!("8-rank MPI application, rank loads 2:1:1:1:1:1:1:1 (seconds)\n");
    for procs in [4usize, 8, 12, 16, 24] {
        let alloc = distribute(&spec, procs, RankStrategy::Balanced);
        let t_even = iteration_time(&spec, procs, RankStrategy::Even);
        let t_bal = iteration_time(&spec, procs, RankStrategy::Balanced);
        println!(
            "{procs:>3} procs: balanced split {alloc:?}  iter even {:.2}s / balanced {:.2}s",
            t_even.as_secs(),
            t_bal.as_secs()
        );
    }

    // Run it through the full stack: the hybrid model becomes an ordinary
    // malleable application via its effective speedup curve.
    let t1 = spec.total_seq() + SimDuration::from_millis(20.0);
    let app = ApplicationSpec::new(
        AppClass::BtA,
        40,
        t1,
        24,
        Arc::new(HybridSpeedup::new(spec, RankStrategy::Balanced)),
        0.01,
    );
    let jobs = vec![
        JobSpec::new(SimTime::ZERO, app.clone()),
        JobSpec::new(SimTime::from_secs(8.0), app),
    ];
    let result = Engine::new(EngineConfig::default()).run(jobs, Box::new(Pdpa::paper_default()));
    println!(
        "\ntwo hybrid jobs under PDPA: makespan {:.1}s, avg allocation {:.1} procs, done: {}",
        result.summary.makespan_secs(),
        result.avg_alloc_by_class[&AppClass::BtA],
        result.completed_all
    );
    println!(
        "(a rigid MPI run would be pinned at 8 processors — with 4 procs/rank of\n\
         OpenMP headroom, PDPA's search finds the efficient 20-24 range by itself)"
    );
}
