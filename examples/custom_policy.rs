//! Writing your own scheduling policy against the public API.
//!
//! Implements a naive "greedy first-come" space-sharing policy — every job
//! gets its full request if it fits, otherwise whatever is left — and races
//! it against PDPA on workload 4. The point is the trait surface: a policy
//! is ~40 lines, and the whole engine, workload generator, and metrics
//! pipeline work with it unchanged.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use pdpa_suite::policies::{Decisions, PolicyCtx};
use pdpa_suite::prelude::*;

/// First-come-first-served greedy allocation with a fixed level of 4.
struct GreedyFcfs;

impl SchedulingPolicy for GreedyFcfs {
    fn name(&self) -> &'static str {
        "GreedyFCFS"
    }

    fn on_job_arrival(&mut self, ctx: &PolicyCtx, job: JobId) -> Decisions {
        // The newcomer takes min(request, free); nobody else moves.
        match ctx.job(job) {
            Some(view) => Decisions::one(job, view.request.min(ctx.free_cpus).max(1)),
            None => Decisions::none(),
        }
    }

    fn on_job_completion(&mut self, ctx: &PolicyCtx, _job: JobId) -> Decisions {
        // Freed processors go to the earliest under-allocated job.
        let mut free = ctx.free_cpus;
        let mut decisions = Decisions::none();
        for view in ctx.jobs {
            if free == 0 {
                break;
            }
            if view.allocated < view.request {
                let grant = (view.request - view.allocated).min(free);
                decisions.set(view.id, view.allocated + grant);
                free -= grant;
            }
        }
        decisions
    }

    fn on_performance_report(
        &mut self,
        _ctx: &PolicyCtx,
        _job: JobId,
        _sample: PerfSample,
    ) -> Decisions {
        // Greedy ignores performance — that is its downfall.
        Decisions::none()
    }

    fn may_start_new_job(&self, ctx: &PolicyCtx) -> bool {
        ctx.running() < 4
    }
}

fn main() {
    println!("custom GreedyFCFS vs PDPA — workload 4 at 100 % load\n");
    for policy in [
        Box::new(GreedyFcfs) as Box<dyn SchedulingPolicy>,
        Box::new(Pdpa::paper_default()),
    ] {
        let name = policy.name();
        let jobs = Workload::W4.build(1.0, 42);
        let result = Engine::new(EngineConfig::default()).run(jobs, policy);
        print!(
            "{:<12} makespan {:>5.0}s maxML {:>2}  ",
            name,
            result.summary.makespan_secs(),
            result.max_ml
        );
        for class in [
            AppClass::Swim,
            AppClass::BtA,
            AppClass::Hydro2d,
            AppClass::Apsi,
        ] {
            if let Some(avgs) = result.summary.class_averages(class) {
                print!("{} r={:.0}s ", class.name(), avgs.avg_response_secs);
            }
        }
        println!();
    }
    println!(
        "\nGreedy hands apsi 30 processors it cannot use; PDPA measures, shrinks,\n\
         and admits more jobs — the paper's Table 4 in miniature."
    );
}
