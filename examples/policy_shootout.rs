//! Policy shoot-out: the paper's §5 evaluation in one binary.
//!
//! Runs one workload under all four scheduling policies and prints the
//! per-class response/execution comparison — the quick way to see the
//! crossovers the paper reports (PDPA ≈ Equipartition on all-scalable
//! workloads, PDPA dominant once non-scalable applications appear).
//!
//! ```sh
//! cargo run --release --example policy_shootout -- w4 1.0
//! ```

use pdpa_suite::prelude::*;

fn parse_args() -> (Workload, f64) {
    let mut args = std::env::args().skip(1);
    let wl = match args.next().as_deref() {
        Some("w1") => Workload::W1,
        Some("w2") => Workload::W2,
        Some("w3") | None => Workload::W3,
        Some("w4") => Workload::W4,
        Some(other) => {
            eprintln!("unknown workload {other:?}; expected w1..w4");
            std::process::exit(2);
        }
    };
    let load = args
        .next()
        .map(|s| s.parse::<f64>().expect("load must be a number"))
        .unwrap_or(1.0);
    (wl, load)
}

fn main() {
    let (workload, load) = parse_args();
    println!("{workload} at {:.0} % load, seed 42\n", load * 100.0);

    let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(IrixLike::paper_default()),
        Box::new(Equipartition::default()),
        Box::new(EqualEfficiency::paper_default()),
        Box::new(Pdpa::paper_default()),
    ];

    println!(
        "{:<12} {:>9} {:>7}  per-class response/execution (s)",
        "policy", "makespan", "maxML"
    );
    for policy in policies {
        let name = policy.name();
        let jobs = workload.build(load, 42);
        let result = Engine::new(EngineConfig::default()).run(jobs, policy);
        print!(
            "{:<12} {:>8.0}s {:>7}  ",
            name,
            result.summary.makespan_secs(),
            result.max_ml
        );
        for class in workload.classes() {
            if let Some(avgs) = result.summary.class_averages(class) {
                print!(
                    "{}: {:.0}/{:.0}  ",
                    class.name(),
                    avgs.avg_response_secs,
                    avgs.avg_execution_secs
                );
            }
        }
        println!();
    }

    println!(
        "\nReading: response includes queue wait; execution is start-to-finish.\n\
         With non-scalable load (w3/w4) the fixed-ML policies strand the machine\n\
         while jobs queue; PDPA shrinks the unscalable jobs and admits more."
    );
}
