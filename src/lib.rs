//! # pdpa-suite — Performance-Driven Processor Allocation
//!
//! A full reproduction of *Performance-Driven Processor Allocation*
//! (Corbalan, Martorell & Labarta — OSDI 2000 / IEEE TPDS 2005): the PDPA
//! coordinated scheduling policy, the NANOS execution environment it lives
//! in, the baseline policies it was evaluated against, and the experiment
//! harness that regenerates every table and figure of the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports the workspace's public API under
//! one roof and hosts the runnable examples and cross-crate integration
//! tests. The pieces are:
//!
//! - [`core`] (`pdpa-core`) — **the paper's contribution**: the PDPA state
//!   machine and coordinated multiprogramming-level policy;
//! - [`sim`] (`pdpa-sim`) — discrete-event substrate and CC-NUMA machine
//!   model;
//! - [`apps`] (`pdpa-apps`) — malleable iterative application models with
//!   the four calibrated paper applications;
//! - [`perf`] (`pdpa-perf`) — the SelfAnalyzer runtime measurement layer;
//! - [`policies`] (`pdpa-policies`) — the scheduling-policy interface plus
//!   Equipartition, Equal_efficiency, and the IRIX time-sharing model;
//! - [`qs`] (`pdpa-qs`) — queuing system, SWF traces, workload generator;
//! - [`engine`] (`pdpa-engine`) — the workload execution engine;
//! - [`faults`] (`pdpa-faults`) — deterministic fault-injection plans
//!   (CPU failures, job crashes, retry policies) for chaos runs;
//! - [`trace`] (`pdpa-trace`) — Paraver-style tracing and Table-2 stats;
//! - [`obs`] (`pdpa-obs`) — structured observability: the decision-event
//!   bus, the metrics registry, the binary/text observer stream codecs, and
//!   the Chrome-trace/CSV/JSON exporters;
//! - [`prof`] (`pdpa-prof`) — engine self-profiling: hierarchical
//!   wall-clock spans per shard lane, hot-path reports, heartbeat
//!   snapshots, and the zero-progress watchdog;
//! - [`watch`] (`pdpa-watch`) — live run observability: the `LiveTap`
//!   shared-state mirror, the line-delimited status/metrics query protocol
//!   and TCP server behind `pdpa replay --serve` / `pdpa watch`, and the
//!   Prometheus text exporter for the metrics registry;
//! - [`analyze`] (`pdpa-analyze`) — trace analytics over recorded event
//!   streams: per-job timelines, PDPA time-in-state, migration accounting,
//!   CPU/MPL series, and run diffs;
//! - [`metrics`] (`pdpa-metrics`) — response/execution aggregation;
//! - [`nthlib`] (`pdpa-nthlib`) — a malleable runtime on real threads;
//! - [`hybrid`] (`pdpa-hybrid`) — MPI+OpenMP hybrid applications (§6
//!   future work, built out);
//! - [`cluster`] (`pdpa-cluster`) — clusters of SMPs with cooperating
//!   per-node schedulers (§6 future work, built out).
//!
//! # Quickstart
//!
//! ```
//! use pdpa_suite::prelude::*;
//!
//! // Generate the paper's workload 3 at 60 % load and run it under PDPA.
//! let jobs = Workload::W3.build(0.6, 42);
//! let result = Engine::new(EngineConfig::default())
//!     .run(jobs, Box::new(Pdpa::paper_default()));
//!
//! assert!(result.completed_all);
//! println!(
//!     "bt.A mean response: {:.0} s, peak multiprogramming level: {}",
//!     result.summary.class_averages(AppClass::BtA).unwrap().avg_response_secs,
//!     result.max_ml,
//! );
//! ```

pub use pdpa_analyze as analyze;
pub use pdpa_apps as apps;
pub use pdpa_cluster as cluster;
pub use pdpa_core as core;
pub use pdpa_engine as engine;
pub use pdpa_faults as faults;
pub use pdpa_hybrid as hybrid;
pub use pdpa_metrics as metrics;
pub use pdpa_nthlib as nthlib;
pub use pdpa_obs as obs;
pub use pdpa_perf as perf;
pub use pdpa_policies as policies;
pub use pdpa_prof as prof;
pub use pdpa_qs as qs;
pub use pdpa_sim as sim;
pub use pdpa_trace as trace;
pub use pdpa_watch as watch;

/// The names most programs need, importable in one line.
pub mod prelude {
    pub use pdpa_apps::{paper_app, AppClass, ApplicationSpec, SpeedupModel};
    pub use pdpa_core::{Pdpa, PdpaParams};
    pub use pdpa_engine::{Engine, EngineConfig, RunResult};
    pub use pdpa_faults::{FaultPlan, RetryPolicy};
    pub use pdpa_metrics::Summary;
    pub use pdpa_perf::{PerfSample, SelfAnalyzer, SelfAnalyzerConfig};
    pub use pdpa_policies::{
        EqualEfficiency, Equipartition, GangScheduler, HeSrpt, IrixLike, LearnedAlloc, OptSplit,
        RigidFirstFit, SchedulingPolicy, SharingModel,
    };
    pub use pdpa_qs::{JobSpec, QueueSystem, Workload};
    pub use pdpa_sim::{CostModel, JobId, Machine, SimDuration, SimTime};
    pub use pdpa_trace::{BurstStats, Trace};
}
